//! # sigil — platform-independent function-level communication analysis
//!
//! A from-scratch Rust reproduction of *"Platform-independent analysis of
//! function-level communication in workloads"* (Nilakantan & Hempstead,
//! IISWC 2013), including every substrate the paper's tool depends on.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`trace`] | `sigil-trace` | execution-event model + tracing engine (Valgrind-primitive layer) |
//! | [`mem`] | `sigil-mem` | shadow memory (two-level table, reuse extension, FIFO limiter, line mode) |
//! | [`vm`] | `sigil-vm` | guest bytecode VM: the dynamic-binary-instrumentation stand-in |
//! | [`callgrind`] | `sigil-callgrind` | calltree, cost vectors, cache & branch simulation, cycle estimation |
//! | [`core`] | `sigil-core` | the Sigil profiler: communication classification, aggregates, event files |
//! | [`analysis`] | `sigil-analysis` | CDFGs, partitioning, breakeven speedup, critical path, reuse histograms |
//! | [`workloads`] | `sigil-workloads` | synthetic PARSEC-2.1-like workload suite + libquantum |
//! | [`serve`] | `sigil-serve` | concurrent trace-ingestion daemon: wire protocol, server, client |
//! | [`obs`] | `sigil-obs` | in-tree observability: spans + Chrome trace export, metrics, leveled logging |
//!
//! # Quickstart
//!
//! ```
//! use sigil::core::{SigilConfig, SigilProfiler};
//! use sigil::trace::{Engine, OpClass};
//!
//! // Trace a tiny "program": producer writes a buffer, consumer reads it.
//! let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
//! let main = engine.symbols_mut().intern("main");
//! let produce = engine.symbols_mut().intern("produce");
//! let consume = engine.symbols_mut().intern("consume");
//!
//! engine.call(main);
//! engine.scoped(produce, |e| {
//!     for i in 0..16 {
//!         e.write(0x1000 + i * 8, 8);
//!         e.op(OpClass::IntArith, 2);
//!     }
//! });
//! engine.scoped(consume, |e| {
//!     for i in 0..16 {
//!         e.read(0x1000 + i * 8, 8);
//!         e.op(OpClass::FloatArith, 4);
//!     }
//! });
//! engine.ret();
//!
//! let (profiler, symbols) = engine.finish_with_symbols();
//! let profile = profiler.into_profile(symbols);
//!
//! // `consume` read 128 unique bytes, all produced by `produce`.
//! let consume_fn = profile.function_by_name("consume").unwrap();
//! assert_eq!(consume_fn.comm.input_unique_bytes, 128);
//! ```

#![forbid(unsafe_code)]

pub use sigil_analysis as analysis;
pub use sigil_callgrind as callgrind;
pub use sigil_core as core;
pub use sigil_mem as mem;
pub use sigil_obs as obs;
pub use sigil_serve as serve;
pub use sigil_trace as trace;
pub use sigil_vm as vm;
pub use sigil_workloads as workloads;
