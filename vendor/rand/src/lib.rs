//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic [`rngs::SmallRng`] (xoshiro256** seeded via
//! splitmix64, like the real crate's 64-bit `SmallRng`) plus the
//! [`Rng`]/[`SeedableRng`] subset this workspace uses: `gen`,
//! `gen_range` over half-open integer ranges, and `seed_from_u64`.
//!
//! The exact stream differs from upstream `rand`; workloads only rely on
//! determinism and reasonable uniformity, not on specific values.

use std::ops::Range;

/// Types that can be sampled uniformly from the full value range.
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value from `rng` within the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(uniform_below(rng, span) as i64)) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Draws uniformly from `[0, span)` (`span == 0` means the full 2^64
/// range), using multiply-shift rejection-free mapping.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let raw = rng.next_u64();
    if span == 0 {
        raw
    } else {
        ((u128::from(raw) * u128::from(span)) >> 64) as u64
    }
}

/// The user-facing random-sampling interface.
pub trait Rng {
    /// The core generator step.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from its full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Draws a bool that is `true` with probability `numerator /
    /// denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be non-zero");
        assert!(
            numerator <= denominator,
            "gen_ratio needs numerator <= denominator"
        );
        self.gen_range(0u32..denominator) < numerator
    }
}

/// Deterministic seeding support.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (va, vb, vc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        for &count in &buckets {
            assert!((700..1300).contains(&count), "{buckets:?}");
        }
    }
}
