//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde stand-in.
//!
//! Implemented directly over `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline). Supports the shapes this workspace uses:
//!
//! * structs with named fields, honouring `#[serde(skip)]`
//! * tuple structs (newtype structs serialize transparently)
//! * unit structs
//! * enums with unit, tuple, and struct variants (externally tagged)
//!
//! Generics are intentionally unsupported — no type in the workspace
//! derives serde with generic parameters.

use std::fmt::Write as _;
use std::iter::Peekable;

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracket group.
                tokens.next();
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "struct" => {
                return parse_struct(&mut tokens);
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "enum" => {
                return parse_enum(&mut tokens);
            }
            Some(_) => {}
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    }
}

fn parse_struct(tokens: &mut Tokens) -> Item {
    let name = expect_ident(tokens);
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
            name,
            fields: Fields::Named(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
            name,
            fields: Fields::Tuple(count_tuple_fields(g.stream())),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic type `{name}` is not supported")
        }
        other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
    }
}

fn parse_enum(tokens: &mut Tokens) -> Item {
    let name = expect_ident(tokens);
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive: generic enum `{name}` is not supported")
        }
        other => panic!("serde_derive: expected enum body, got {other:?}"),
    };
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(ident) = tt else {
            panic!("serde_derive: expected variant name, got {tt:?}");
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                tokens.next();
                Fields::Tuple(count_tuple_fields(stream))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        for tt in tokens.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant {
            name: ident.to_string(),
            fields,
        });
    }
    Item::Enum { name, variants }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let skip = skip_attributes(&mut tokens);
        match tokens.peek() {
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => {}
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(ident) = tt else {
            panic!("serde_derive: expected field name, got {tt:?}");
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type: everything up to the next comma at angle-depth 0.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field {
            name: ident.to_string(),
            skip,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for tt in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                }
                _ => {}
            }
        }
    }
    count + usize::from(saw_tokens)
}

/// Consumes leading attributes; returns whether `#[serde(skip)]` was seen.
fn skip_attributes(tokens: &mut Tokens) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        let Some(TokenTree::Group(group)) = tokens.next() else {
            panic!("serde_derive: `#` not followed by an attribute group");
        };
        if attribute_is_serde_skip(group.stream()) {
            skip = true;
        }
    }
    skip
}

fn attribute_is_serde_skip(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|tt| matches!(&tt, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn expect_ident(tokens: &mut Tokens) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected identifier, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let mut pushes = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                let fname = &field.name;
                let _ = write!(
                    pushes,
                    "entries.push((::serde::Content::Str(\"{fname}\".to_owned()), \
                     ::serde::Serialize::to_content(&self.{fname})));"
                );
            }
            format!(
                "let mut entries: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Content::Map(entries)"
            )
        }
        Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_owned(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Content::Unit".to_owned(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_content(&self) -> ::serde::Content {{ {body} }} \
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let mut inits = String::new();
            for field in fields {
                let fname = &field.name;
                if field.skip {
                    let _ = write!(inits, "{fname}: ::std::default::Default::default(),");
                } else {
                    let _ = write!(
                        inits,
                        "{fname}: ::serde::Deserialize::from_content(\
                           ::serde::map_get(entries, \"{fname}\").ok_or_else(|| \
                           ::serde::DeError::missing_field(\"{name}\", \"{fname}\"))?)?,"
                    );
                }
            }
            format!(
                "let entries = content.as_map().ok_or_else(|| \
                   ::serde::DeError::unexpected(\"map for struct {name}\", content))?; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Fields::Tuple(1) => {
            format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))"
            )
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "let items = content.as_seq().ok_or_else(|| \
                   ::serde::DeError::unexpected(\"sequence for struct {name}\", content))?; \
                 if items.len() != {n} {{ return ::std::result::Result::Err(\
                   ::serde::DeError::custom(\"wrong tuple arity for {name}\")); }} \
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Fields::Unit => format!("let _ = content; ::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_content(content: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {
                let _ = write!(
                    arms,
                    "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_owned()),"
                );
            }
            Fields::Tuple(1) => {
                let _ = write!(
                    arms,
                    "{name}::{vname}(f0) => ::serde::Content::Map(vec![(\
                       ::serde::Content::Str(\"{vname}\".to_owned()), \
                       ::serde::Serialize::to_content(f0))]),"
                );
            }
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                let _ = write!(
                    arms,
                    "{name}::{vname}({binders}) => ::serde::Content::Map(vec![(\
                       ::serde::Content::Str(\"{vname}\".to_owned()), \
                       ::serde::Content::Seq(vec![{items}]))]),",
                    binders = binders.join(", "),
                    items = items.join(", ")
                );
            }
            Fields::Named(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let entries: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        format!(
                            "(::serde::Content::Str(\"{0}\".to_owned()), \
                             ::serde::Serialize::to_content({0}))",
                            f.name
                        )
                    })
                    .collect();
                let _ = write!(
                    arms,
                    "{name}::{vname} {{ {binders} }} => ::serde::Content::Map(vec![(\
                       ::serde::Content::Str(\"{vname}\".to_owned()), \
                       ::serde::Content::Map(vec![{entries}]))]),",
                    binders = binders.join(", "),
                    entries = entries.join(", ")
                );
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_content(&self) -> ::serde::Content {{ match self {{ {arms} }} }} \
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    for variant in variants {
        if matches!(variant.fields, Fields::Unit) {
            let vname = &variant.name;
            let _ = write!(
                unit_arms,
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
            );
        }
    }
    let mut tagged_arms = String::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => {}
            Fields::Tuple(1) => {
                let _ = write!(
                    tagged_arms,
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                       ::serde::Deserialize::from_content(value)?)),"
                );
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                    .collect();
                let _ = write!(
                    tagged_arms,
                    "\"{vname}\" => {{ \
                       let items = value.as_seq().ok_or_else(|| \
                         ::serde::DeError::unexpected(\"sequence for {name}::{vname}\", value))?; \
                       if items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(\"wrong arity for {name}::{vname}\")); }} \
                       ::std::result::Result::Ok({name}::{vname}({items})) }},",
                    items = items.join(", ")
                );
            }
            Fields::Named(fields) => {
                let mut inits = String::new();
                for field in fields {
                    let fname = &field.name;
                    if field.skip {
                        let _ = write!(inits, "{fname}: ::std::default::Default::default(),");
                    } else {
                        let _ = write!(
                            inits,
                            "{fname}: ::serde::Deserialize::from_content(\
                               ::serde::map_get(entries, \"{fname}\").ok_or_else(|| \
                               ::serde::DeError::missing_field(\"{name}::{vname}\", \
                               \"{fname}\"))?)?,"
                        );
                    }
                }
                let _ = write!(
                    tagged_arms,
                    "\"{vname}\" => {{ \
                       let entries = value.as_map().ok_or_else(|| \
                         ::serde::DeError::unexpected(\"map for {name}::{vname}\", value))?; \
                       ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }},"
                );
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_content(content: &::serde::Content) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ \
             match content {{ \
               ::serde::Content::Str(tag) => match tag.as_str() {{ \
                 {unit_arms} \
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                   format!(\"unknown {name} variant `{{other}}`\"))), \
               }}, \
               ::serde::Content::Map(entries) if entries.len() == 1 => {{ \
                 let (tag, value) = &entries[0]; \
                 let ::serde::Content::Str(tag) = tag else {{ \
                   return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"enum tag must be a string\")); }}; \
                 match tag.as_str() {{ \
                   {tagged_arms} \
                   other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{other}}`\"))), \
                 }} \
               }}, \
               other => ::std::result::Result::Err(::serde::DeError::unexpected(\
                 \"string or single-entry map for enum {name}\", other)), \
             }} \
           }} \
         }}"
    )
}
