//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`],
//! integer-range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], `prop_oneof!`, the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream: failing cases are reported but not
//! shrunk, and the value stream is driven by a fixed deterministic
//! seed per case index (no persistence files). That keeps failures
//! reproducible run-to-run without any filesystem side effects.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion in the property body failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(message) => write!(f, "{message}"),
            }
        }
    }

    /// Deterministic value source handed to strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Executes `property` against `cases` freshly generated values.
    pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut property: F)
    where
        S: crate::strategy::Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            // Per-case seed keyed on the property name so sibling
            // properties in one file see independent streams.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed = (seed ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng::from_seed(seed ^ (u64::from(case) << 1));
            let value = strategy.generate(&mut rng);
            if let Err(error) = property(value) {
                panic!(
                    "property `{name}` failed at case {case}/{}: {error}",
                    config.cases
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    let offset = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    self.start.wrapping_add(offset as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_signed {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    let offset = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    (self.start as i64).wrapping_add(offset as i64) as $t
                }
            }
        )*};
    }

    impl_range_strategy_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Object-safe strategy used by [`Union`] to mix arm types.
    pub trait DynStrategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
        /// Clones behind the box.
        fn clone_box(&self) -> Box<dyn DynStrategy<Value = Self::Value>>;
    }

    impl<S> DynStrategy for S
    where
        S: Strategy + Clone + 'static,
    {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
        fn clone_box(&self) -> Box<dyn DynStrategy<Value = S::Value>> {
            Box::new(self.clone())
        }
    }

    /// Boxes a strategy for use as a [`Union`] arm (`prop_oneof!`).
    pub fn into_dyn<S>(strategy: S) -> Box<dyn DynStrategy<Value = S::Value>>
    where
        S: Strategy + Clone + 'static,
    {
        Box::new(strategy)
    }

    /// Picks one of several same-valued strategies uniformly.
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`; must be non-empty.
        pub fn new(arms: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.iter().map(|arm| arm.clone_box()).collect(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let index = rng.below(self.arms.len() as u64) as usize;
            self.arms[index].dyn_generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws a value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with `size` in the given range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly picks among strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::into_dyn($arm)),+
        ])
    };
}

/// Declares property-test functions; supports an optional
/// `#![proptest_config(..)]` header applying to every property.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn name(pat in strategy, ..) { body }` into a
/// plain test fn driving the runner. Split from `proptest!` so the
/// optional config head never nests inside the per-fn repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ( $($strategy,)+ );
            $crate::test_runner::run_property(
                stringify!($name),
                &config,
                &strategy,
                |( $($arg,)+ )| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?} == {:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?} == {:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op_strategy() -> crate::strategy::Union<Op> {
        prop_oneof![(0u8..10).prop_map(Op::Push), Just(Op::Pop),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_bounds(ops in prop::collection::vec(op_strategy(), 1..20)) {
            prop_assert!(!ops.is_empty());
            prop_assert!(ops.len() < 20);
        }

        #[test]
        fn tuples_and_ranges(value in 5u64..9, flag in any::<bool>()) {
            prop_assert!((5..9).contains(&value), "value {} flag {}", value, flag);
            prop_assert_eq!(value, value);
            prop_assert_ne!(value, value + 1);
        }
    }

    #[test]
    fn union_is_cloneable_and_deterministic() {
        let strategy = op_strategy();
        let cloned = strategy.clone();
        let mut a = crate::test_runner::TestRng::from_seed(3);
        let mut b = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..32 {
            assert_eq!(strategy.generate(&mut a), cloned.generate(&mut b));
        }
    }
}
