//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this build environment (no network,
//! no registry cache), so this crate provides the small API surface the
//! workspace actually uses: `Serialize`/`Deserialize` traits, derive
//! macros for plain structs and enums (including `#[serde(skip)]`), and
//! impls for the std types that appear in profiles.
//!
//! Instead of serde's visitor-based data model, values round-trip through
//! an owned [`Content`] tree which `serde_json` (the sibling stand-in)
//! renders to and parses from JSON text. Representation choices mirror
//! serde's defaults: structs are maps, newtype structs are transparent,
//! enums are externally tagged, `Option` maps to `null`/value.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Unit / null.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (used for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, `Vec`).
    Seq(Vec<Content>),
    /// Key-value map (structs, `HashMap`, enum payloads).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short description of the content kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Unit => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) => "unsigned integer",
            Content::I64(_) => "signed integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Looks up a string key in struct-shaped map content.
pub fn map_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find_map(|(k, v)| match k {
        Content::Str(s) if s == key => Some(v),
        _ => None,
    })
}

/// Error produced when [`Content`] cannot be decoded into a value.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// Error for a struct field absent from the serialized map.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError::custom(format!("missing field `{field}` for `{ty}`"))
    }

    /// Error for content of an unexpected shape.
    pub fn unexpected(expected: &str, got: &Content) -> Self {
        DeError::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value that can be rendered into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into content.
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Decodes content into a value.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the content shape does not match.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match *content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    ref other => return Err(DeError::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let raw = u64::from_content(content)?;
        usize::try_from(raw).map_err(|_| DeError::custom(format!("{raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::custom(format!("{v} out of range for i64")))?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    ref other => return Err(DeError::unexpected("signed integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        (*self as i64).to_content()
    }
}

impl Deserialize for isize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let raw = i64::from_content(content)?;
        isize::try_from(raw).map_err(|_| DeError::custom(format!("{raw} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            ref other => Err(DeError::unexpected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::Bool(v) => Ok(v),
            ref other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::unexpected("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Unit
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Unit => Ok(()),
            other => Err(DeError::unexpected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(value) => value.to_content(),
            None => Content::Unit,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Unit => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content
            .as_seq()
            .ok_or_else(|| DeError::unexpected("sequence", content))?;
        let decoded: Vec<T> = items
            .iter()
            .map(T::from_content)
            .collect::<Result<_, _>>()?;
        decoded
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N} elements")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = content
                    .as_seq()
                    .ok_or_else(|| DeError::unexpected("tuple sequence", content))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected a {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Decodes a map key that JSON forced into a string back into typed
/// content (JSON object keys are always strings, so integer-keyed maps
/// round-trip through quoted decimals, as with real `serde_json`).
fn decode_key<K: Deserialize>(key: &Content) -> Result<K, DeError> {
    match K::from_content(key) {
        Ok(k) => Ok(k),
        Err(original) => {
            if let Content::Str(s) = key {
                if let Ok(unsigned) = s.parse::<u64>() {
                    return K::from_content(&Content::U64(unsigned));
                }
                if let Ok(signed) = s.parse::<i64>() {
                    return K::from_content(&Content::I64(signed));
                }
            }
            Err(original)
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| DeError::unexpected("map", content))?;
        entries
            .iter()
            .map(|(k, v)| Ok((decode_key::<K>(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| DeError::unexpected("map", content))?;
        entries
            .iter()
            .map(|(k, v)| Ok((decode_key::<K>(k)?, V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
    }

    #[test]
    fn option_uses_unit_for_none() {
        assert_eq!(Option::<u8>::None.to_content(), Content::Unit);
        assert_eq!(Option::<u8>::from_content(&Content::Unit).unwrap(), None);
        assert_eq!(
            Option::<u8>::from_content(&Content::U64(3)).unwrap(),
            Some(3)
        );
    }

    #[test]
    fn integer_keyed_maps_round_trip_through_string_keys() {
        let mut map = HashMap::new();
        map.insert(7u32, "seven".to_owned());
        let content = map.to_content();
        // Simulate the JSON round trip: keys become strings.
        let Content::Map(entries) = content else {
            panic!("map content")
        };
        let stringified = Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| {
                    let Content::U64(raw) = k else {
                        panic!("u64 key")
                    };
                    (Content::Str(raw.to_string()), v)
                })
                .collect(),
        );
        let back: HashMap<u32, String> = HashMap::from_content(&stringified).unwrap();
        assert_eq!(back, map);
    }
}
