//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset this workspace's benches use: benchmark groups,
//! `sample_size`, `bench_with_input` with a [`BenchmarkId`], the
//! [`Bencher::iter`] timing loop, and the `criterion_group!` /
//! `criterion_main!` macros (benches here set `harness = false`).
//!
//! Instead of upstream's statistical analysis it runs a short warmup,
//! times `sample_size` batches, and prints the per-iteration mean and
//! min to stdout — enough to compare configurations side by side.
//!
//! Like upstream, `--test` (as in `cargo bench -- --test`) switches to
//! smoke mode: every routine runs exactly one untimed iteration, so CI
//! can assert benches compile and execute without paying for sampling.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level handle passed to each bench target function.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 50,
            test_mode: self.test_mode,
        }
    }
}

/// Identifies one benchmark as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample size must be at least 1");
        self.sample_size = samples;
        self
    }

    /// Benchmarks `routine` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.test_mode,
            mean_ns: 0.0,
            min_ns: 0.0,
        };
        routine(&mut bencher, input);
        if self.test_mode {
            println!(
                "Testing {}/{}/{}: Success",
                self.name, id.function, id.parameter
            );
        } else {
            println!(
                "{}/{}/{}: mean {:.1} ns/iter, min {:.1} ns/iter ({} samples)",
                self.name,
                id.function,
                id.parameter,
                bencher.mean_ns,
                bencher.min_ns,
                bencher.samples
            );
        }
        self
    }

    /// Benchmarks `routine` with no input.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(BenchmarkId::new(name, "-"), &(), |b, ()| routine(b))
    }

    /// Ends the group (upstream flushes reports here; we print a rule).
    pub fn finish(self) {
        println!("== end group {} ==", self.name);
    }
}

/// Timing loop handle handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    mean_ns: f64,
    min_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing mean/min per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Smoke mode: prove the routine runs, skip the sampling loop.
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warmup, and calibrate how many iterations fill ~2ms so that
        // fast routines are not dominated by timer resolution.
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed().as_nanos().max(1);
        let iters_per_sample = ((2_000_000 / once) as usize).clamp(1, 10_000);

        let mut total_ns = 0.0f64;
        let mut min_ns = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let sample_ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total_ns += sample_ns;
            min_ns = min_ns.min(sample_ns);
        }
        self.mean_ns = total_ns / self.samples as f64;
        self.min_ns = min_ns;
    }
}

/// Bundles bench target functions into one named runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main()` invoking each group (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_exactly_one_iteration() {
        let mut group = BenchmarkGroup {
            name: "smoke".to_string(),
            sample_size: 5,
            test_mode: true,
        };
        let mut runs = 0u32;
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1, "--test mode must run the routine exactly once");
    }

    #[test]
    fn bench_group_runs_routine() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1u32), &5u64, |b, &input| {
            b.iter(|| {
                runs += 1;
                input * 2
            });
        });
        group.finish();
        assert!(runs > 0);
    }
}
