//! Offline stand-in for `serde_json`: renders the serde stand-in's
//! [`Content`] tree to JSON text and parses JSON back into it.
//!
//! Mirrors real `serde_json` behaviour where it matters to this
//! workspace: structs/maps are objects, integer map keys are written as
//! quoted decimal strings, `to_string_pretty` indents with two spaces,
//! and floats are printed in shortest round-trip form.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when a map key cannot be represented as a JSON
/// object key (only strings, integers, and bools are supported).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_content(&content).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(
    content: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match content {
        Content::Unit => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Content::I64(v) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_key(key, out)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_key(key: &Content, out: &mut String) -> Result<(), Error> {
    match key {
        Content::Str(s) => write_escaped(s, out),
        Content::U64(v) => write_escaped(&v.to_string(), out),
        Content::I64(v) => write_escaped(&v.to_string(), out),
        Content::Bool(v) => write_escaped(if *v { "true" } else { "false" }, out),
        other => {
            return Err(Error::new(format!(
                "cannot use {} as a JSON object key",
                other.kind()
            )))
        }
    }
    Ok(())
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` gives the shortest representation that round-trips.
        let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
    } else {
        // Real serde_json writes null for non-finite floats.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Unit),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a whole run of plain characters at once:
                    // validating UTF-8 per run instead of re-validating
                    // the rest of the input per character keeps parsing
                    // linear in the document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a \"quoted\"\nline\twith \\ and unicode ↯".to_owned();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vecs_and_options_round_trip() {
        let v = vec![Some(1u32), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for v in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-10, 0.0] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "{json}");
        }
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u8], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
