//! Concurrent-session stress: eight clients hammer one `sigil-serve`
//! daemon simultaneously, each streaming a *different* workload with a
//! *different* wire chunk size, and every session's finished result must
//! be byte-identical to that workload's solo batch run — session
//! isolation under real interleaving, not just one-at-a-time replay.
//!
//! The per-session `serve.session.<id>.*` counters must also come out
//! exact: concurrent sessions share the process-global metrics registry,
//! so any cross-session bleed (a chunk attributed to the wrong session)
//! shows up as a wrong per-session record count.
//!
//! This file is its own test process, so the `sigil-obs` globals are not
//! shared with any other test binary.

use std::collections::HashMap;
use std::thread;

use sigil::obs::metrics::{self, MetricValue};
use sigil::serve::{Client, Listen, ServeConfig, Server, SessionResult, SessionSpec};
use sigil_oracle::harness::{record_benchmark, record_program, TraceBundle};
use sigil_oracle::serve_axis::{batch_outcome, serve_config, BatchOutcome};
use sigil_vm::GenProgram;
use sigil_workloads::{Benchmark, InputSize};

/// One stress participant: a named workload bundle plus the wire chunk
/// size its client streams with.
struct Participant {
    name: String,
    bundle: TraceBundle,
    chunk_records: usize,
}

fn participants() -> Vec<Participant> {
    // Four real golden workloads and four seeded generated programs, so
    // the mix spans both trace shapes; chunk sizes range from "symbol
    // defs split across frames" to "whole trace in one frame".
    let benches = [
        Benchmark::Blackscholes,
        Benchmark::Fluidanimate,
        Benchmark::Canneal,
        Benchmark::Streamcluster,
    ];
    let chunks = [3usize, 32, 256, 1024, 7, 64, 512, 4096];
    let mut out = Vec::new();
    for (i, bench) in benches.into_iter().enumerate() {
        out.push(Participant {
            name: format!("{bench}"),
            bundle: record_benchmark(bench, InputSize::SimSmall),
            chunk_records: chunks[i],
        });
    }
    for (i, seed) in (100u64..104).enumerate() {
        out.push(Participant {
            name: format!("gen-{seed}"),
            bundle: record_program(&GenProgram::generate(seed)),
            chunk_records: chunks[4 + i],
        });
    }
    out
}

fn counter(snapshot: &std::collections::BTreeMap<String, MetricValue>, name: &str) -> u64 {
    match snapshot.get(name) {
        Some(MetricValue::Counter(n)) => *n,
        // Counters register lazily on first increment; absent means the
        // event never happened.
        None => 0,
        other => panic!("metric {name} is not a counter: {other:?}"),
    }
}

fn result_json(result: &SessionResult) -> (String, String, String) {
    let profile = result
        .profile
        .as_ref()
        .expect("finished trace session carries a profile");
    let profile = serde_json::to_string(profile).expect("profile serializes");
    let phases = serde_json::to_string(&result.phases).expect("phases serialize");
    let critpath = serde_json::to_string(&result.critpath).expect("critpath serializes");
    (profile, phases, critpath)
}

fn batch_json(batch: &BatchOutcome) -> (String, String, String) {
    let profile = serde_json::to_string(&batch.profile).expect("profile serializes");
    let phases = serde_json::to_string(&batch.phases).expect("phases serialize");
    let critpath = serde_json::to_string(&batch.critpath).expect("critpath serializes");
    (profile, phases, critpath)
}

/// Eight concurrent sessions, each byte-identical to its solo batch run,
/// with exact per-session metrics and zero sessions left active.
#[test]
fn eight_concurrent_sessions_match_their_solo_batch_runs() {
    metrics::clear();
    sigil::obs::set_enabled(true);

    let server = Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default())
        .expect("bind stress server");
    let address = server.address();
    let config = serve_config();

    let everyone = participants();
    let batches: Vec<BatchOutcome> = everyone
        .iter()
        .map(|p| batch_outcome(&p.bundle, config))
        .collect();

    // All eight clients stream at once; each returns its session id and
    // finished result.
    let outcomes: Vec<(u64, SessionResult)> = thread::scope(|scope| {
        let address = &address;
        let handles: Vec<_> = everyone
            .iter()
            .map(|p| {
                scope.spawn(move || {
                    let mut client = Client::connect(address, &SessionSpec::trace(&p.name, config))
                        .unwrap_or_else(|e| panic!("{}: connect failed: {e}", p.name));
                    client.set_chunk_records(p.chunk_records);
                    let session = client.session();
                    client
                        .stream_trace(&p.bundle.symbols, &p.bundle.events)
                        .unwrap_or_else(|e| panic!("{}: stream failed: {e}", p.name));
                    let result = client
                        .finish()
                        .unwrap_or_else(|e| panic!("{}: finish failed: {e}", p.name));
                    (session, result)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress client thread panicked"))
            .collect()
    });

    // The client's FINISH returns on the Result frame, a hair before the
    // server-side connection thread retires the session — poll briefly
    // for the bookkeeping to settle before freezing the snapshot.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let snapshot = loop {
        let snapshot = metrics::snapshot();
        let settled = matches!(
            snapshot.get("serve.sessions.active"),
            Some(MetricValue::Gauge(active)) if *active == 0.0
        ) && matches!(
            snapshot.get("serve.sessions.finished"),
            Some(MetricValue::Counter(n)) if *n == everyone.len() as u64
        );
        if settled || std::time::Instant::now() > deadline {
            break snapshot;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    };
    sigil::obs::set_enabled(false);

    // Session ids must be unique — eight sessions, eight identities.
    let ids: std::collections::BTreeSet<u64> = outcomes.iter().map(|(id, _)| *id).collect();
    assert_eq!(
        ids.len(),
        everyone.len(),
        "duplicate session ids handed out"
    );

    // Each concurrent result is byte-identical to its solo batch run.
    for ((participant, batch), (_, online)) in everyone.iter().zip(&batches).zip(&outcomes) {
        assert_eq!(
            online.records,
            participant.bundle.events.len() as u64,
            "{}: event count drifted under concurrency",
            participant.name
        );
        let (op, oph, oc) = result_json(online);
        let (bp, bph, bc) = batch_json(batch);
        assert_eq!(
            op, bp,
            "{}: profile diverged under concurrency",
            participant.name
        );
        assert_eq!(
            oph, bph,
            "{}: phases diverged under concurrency",
            participant.name
        );
        assert_eq!(
            oc, bc,
            "{}: critical path diverged under concurrency",
            participant.name
        );
    }

    // Per-session counters are exact — no bleed between sessions.
    let mut expected: HashMap<u64, u64> = HashMap::new();
    for ((id, _), participant) in outcomes.iter().zip(&everyone) {
        expected.insert(*id, participant.bundle.events.len() as u64);
    }
    let mut total = 0u64;
    for (id, records) in &expected {
        let metric = format!("serve.session.{id}.records");
        assert_eq!(
            counter(&snapshot, &metric),
            *records,
            "session {id}: per-session record counter bled"
        );
        assert!(
            counter(&snapshot, &format!("serve.session.{id}.chunks")) > 0,
            "session {id}: no chunks counted"
        );
        total += records;
    }
    assert_eq!(
        counter(&snapshot, "serve.records"),
        total,
        "global record counter disagrees with the per-session sum"
    );
    assert_eq!(
        counter(&snapshot, "serve.sessions.opened"),
        everyone.len() as u64,
        "opened-session counter wrong"
    );
    assert_eq!(
        counter(&snapshot, "serve.sessions.finished"),
        everyone.len() as u64,
        "finished-session counter wrong"
    );
    assert_eq!(
        counter(&snapshot, "serve.sessions.failed"),
        0,
        "sessions failed"
    );
    match snapshot.get("serve.sessions.active") {
        Some(MetricValue::Gauge(active)) => {
            assert_eq!(*active, 0.0, "sessions leaked after all clients finished")
        }
        other => panic!("serve.sessions.active missing or non-gauge: {other:?}"),
    }

    drop(server);
}
