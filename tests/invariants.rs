//! Property-based integration tests: invariants of the whole stack under
//! randomly generated (but well-formed) traces.

use proptest::prelude::*;
use sigil::analysis::critical_path::CriticalPath;
use sigil::analysis::inclusive::inclusive_table;
use sigil::analysis::Cdfg;
use sigil::core::{Profile, SigilConfig, SigilProfiler};
use sigil::trace::{Engine, OpClass};

/// A random but structurally valid traced program.
#[derive(Debug, Clone)]
enum Step {
    Call(u8),
    Return,
    Read(u16, u8),
    Write(u16, u8),
    Ops(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..6).prop_map(Step::Call),
        Just(Step::Return),
        (any::<u16>(), 1u8..16).prop_map(|(a, s)| Step::Read(a, s)),
        (any::<u16>(), 1u8..16).prop_map(|(a, s)| Step::Write(a, s)),
        (1u8..50).prop_map(Step::Ops),
    ]
}

fn run_steps(steps: &[Step], config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    let fns: Vec<_> = (0..6)
        .map(|i| engine.symbols_mut().intern(&format!("f{i}")))
        .collect();
    let main = engine.symbols_mut().intern("main");
    engine.call(main);
    let mut depth = 0usize;
    for step in steps {
        match step {
            Step::Call(f) => {
                if depth < 40 {
                    engine.call(fns[*f as usize % fns.len()]);
                    depth += 1;
                }
            }
            Step::Return => {
                if depth > 0 {
                    engine.ret();
                    depth -= 1;
                }
            }
            Step::Read(addr, size) => engine.read(u64::from(*addr), u32::from(*size)),
            Step::Write(addr, size) => engine.write(u64::from(*addr), u32::from(*size)),
            Step::Ops(n) => engine.op(OpClass::IntArith, u32::from(*n)),
        }
    }
    while depth > 0 {
        engine.ret();
        depth -= 1;
    }
    engine.ret();
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn read_classification_partitions_total_reads(steps in prop::collection::vec(step_strategy(), 0..300)) {
        let profile = run_steps(&steps, SigilConfig::default());
        let mut classified = 0u64;
        let mut total = 0u64;
        for ctx in &profile.contexts {
            classified += ctx.comm.input_unique_bytes
                + ctx.comm.input_nonunique_bytes
                + ctx.comm.local_unique_bytes
                + ctx.comm.local_nonunique_bytes;
            total += ctx.comm.bytes_read;
        }
        prop_assert_eq!(classified, total);
    }

    #[test]
    fn outputs_match_cross_function_inputs(steps in prop::collection::vec(step_strategy(), 0..300)) {
        let profile = run_steps(&steps, SigilConfig::default());
        // Every byte counted as someone's output was counted as someone
        // else's input — except bytes never written (root-attributed).
        let outputs: u64 = profile.contexts.iter()
            .map(|c| c.comm.output_unique_bytes + c.comm.output_nonunique_bytes)
            .sum();
        let inputs: u64 = profile.contexts.iter()
            .map(|c| c.comm.input_unique_bytes + c.comm.input_nonunique_bytes)
            .sum();
        prop_assert_eq!(outputs, inputs);
    }

    #[test]
    fn edge_weights_sum_to_input_totals(steps in prop::collection::vec(step_strategy(), 0..300)) {
        let profile = run_steps(&steps, SigilConfig::default());
        let edge_unique: u64 = profile.edges.iter().map(|e| e.unique_bytes).sum();
        let input_unique: u64 = profile.contexts.iter()
            .map(|c| c.comm.input_unique_bytes)
            .sum();
        prop_assert_eq!(edge_unique, input_unique);
    }

    #[test]
    fn inclusive_costs_dominate_exclusive(steps in prop::collection::vec(step_strategy(), 0..300)) {
        let profile = run_steps(&steps, SigilConfig::default());
        let cdfg = Cdfg::from_profile(&profile);
        let table = inclusive_table(&cdfg);
        for node in cdfg.nodes() {
            let inc = &table[node.ctx.index()];
            prop_assert!(inc.costs.ir >= node.costs.ir);
            prop_assert!(inc.costs.ops_total() >= node.costs.ops_total());
        }
        // Root-inclusive equals whole-program totals.
        let total = profile.callgrind.total_costs();
        prop_assert_eq!(table[0].costs, total);
    }

    #[test]
    fn critical_path_bounded_by_serial_length(steps in prop::collection::vec(step_strategy(), 1..300)) {
        let profile = run_steps(&steps, SigilConfig::default().with_events());
        if let Ok(cp) = CriticalPath::from_profile(&profile) {
            prop_assert!(cp.length_ops <= cp.serial_ops);
            prop_assert!(cp.max_parallelism() >= 1.0 - 1e-9);
            // The path's fragment finish times are non-decreasing.
            for pair in cp.path.windows(2) {
                prop_assert!(pair[0].finish <= pair[1].finish);
            }
        }
    }

    #[test]
    fn reuse_mode_counts_match_baseline_comm(steps in prop::collection::vec(step_strategy(), 0..200)) {
        // Turning on reuse mode must not change communication counts.
        let base = run_steps(&steps, SigilConfig::default());
        let reuse = run_steps(&steps, SigilConfig::default().with_reuse_mode());
        prop_assert_eq!(&base.edges, &reuse.edges);
        prop_assert_eq!(base.total_unique_bytes(), reuse.total_unique_bytes());
        // And the reuse records exist.
        let (zero, low, high) = reuse.reuse_breakdown().expect("reuse on");
        let nonunique: u64 = reuse.contexts.iter()
            .map(|c| c.comm.nonunique_bytes())
            .sum();
        // Total reuse events across records equal non-unique reads.
        let total_reuse: u64 = reuse.reuse.as_ref().expect("reuse on")
            .iter().map(|r| r.total_reuse_count).sum();
        prop_assert_eq!(total_reuse, nonunique);
        let _ = (zero, low, high);
    }

    #[test]
    fn shadow_limit_never_undercounts_uniqueness(steps in prop::collection::vec(step_strategy(), 0..200)) {
        let unlimited = run_steps(&steps, SigilConfig::default());
        let limited = run_steps(&steps, SigilConfig::default().with_shadow_limit(2));
        // Evicted shadow state re-reads as "unique input": uniqueness can
        // only grow, total reads stay identical.
        prop_assert!(limited.total_unique_bytes() >= unlimited.total_unique_bytes());
        prop_assert_eq!(limited.total_bytes_read(), unlimited.total_bytes_read());
    }
}
