//! End-to-end observability: profiling a real workload under `sigil-obs`
//! must produce the nested phase spans and shadow metrics the CLI
//! exports, and a disabled run must leave no trace at all (the tier-1
//! guard against instrumentation creep in the hot path).
//!
//! This file is its own process, so the `sigil-obs` globals are shared
//! only between the tests below — they serialize on `OBS_LOCK`.

use sigil::core::{SigilConfig, SigilProfiler};
use sigil::obs::metrics::MetricValue;
use sigil::obs::{json, metrics, span};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Profiles one small benchmark the same way `sigil profile` does,
/// including the phase spans the CLI opens around the run.
fn profile_with_spans(bench: Benchmark) -> sigil::core::Profile {
    let _profile_span = sigil::obs::span_with(|| format!("profile:{}", bench.name()));
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    {
        let _trace_span = span::span("trace");
        bench.run(InputSize::SimSmall, &mut engine);
    }
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

#[test]
fn disabled_observability_records_nothing() {
    let _lock = obs_lock();
    sigil::obs::set_enabled(false);
    span::clear();
    metrics::clear();

    let profile = profile_with_spans(Benchmark::Blackscholes);
    assert!(profile.memory.accesses > 0, "the workload touched memory");

    assert_eq!(span::count(), 0, "no spans while disabled");
    assert!(metrics::snapshot().is_empty(), "no metrics while disabled");
}

#[test]
fn enabled_observability_captures_phases_and_shadow_counters() {
    let _lock = obs_lock();
    span::clear();
    metrics::clear();
    sigil::obs::set_enabled(true);
    let profile = profile_with_spans(Benchmark::Blackscholes);
    sigil::obs::set_enabled(false);

    // Phase spans: trace, shadow, and postprocess all nest (depth 1)
    // inside the profile:<bench> root on the same thread.
    let spans = span::snapshot();
    let root = spans
        .iter()
        .find(|s| s.name == "profile:blackscholes")
        .expect("profile root span");
    assert_eq!(root.depth, 0);
    for phase in ["trace", "shadow", "postprocess"] {
        let child = spans
            .iter()
            .find(|s| s.name == phase)
            .unwrap_or_else(|| panic!("`{phase}` span recorded"));
        assert_eq!(child.depth, 1, "`{phase}` nests inside the root");
        assert_eq!(child.tid, root.tid);
        assert!(root.start_us <= child.start_us);
        assert!(child.end_us() <= root.end_us());
    }

    // Shadow-table counters round-trip exactly from the profile.
    let snap = metrics::snapshot();
    assert_eq!(
        snap.get("shadow.accesses"),
        Some(&MetricValue::Counter(profile.memory.accesses))
    );
    assert_eq!(
        snap.get("shadow.mru_hits"),
        Some(&MetricValue::Counter(profile.memory.mru_hits))
    );
    assert_eq!(
        snap.get("shadow.table_probes"),
        Some(&MetricValue::Counter(profile.memory.table_probes))
    );

    // Both export formats are valid JSON.
    let trace_doc = json::parse(&sigil::obs::export_chrome_trace()).expect("trace JSON");
    let events = trace_doc
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() >= 4, "root + three phases (+ thread names)");
    let metrics_doc = json::parse(&metrics::snapshot_json()).expect("metrics JSON");
    assert!(metrics_doc
        .get("counters")
        .and_then(|c| c.get("shadow.accesses"))
        .is_some());

    span::clear();
    metrics::clear();
}

/// A sharded run under obs must export the dispatch-thread telemetry:
/// busy/resolve time, record and access counts, and the derived
/// records-per-access gauge — with coalescing on, strictly fewer
/// records than accesses-worth of runs is the whole point, so the
/// gauge must stay finite and positive.
#[test]
fn sharded_runs_export_dispatch_telemetry() {
    let _lock = obs_lock();
    span::clear();
    metrics::clear();
    sigil::obs::set_enabled(true);
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_shards(4)));
    Benchmark::Blackscholes.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);
    sigil::obs::set_enabled(false);

    let snap = metrics::snapshot();
    let counter = |name: &str| match snap.get(name) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("`{name}` should be a counter, got {other:?}"),
    };
    let accesses = counter("dispatch.accesses");
    let records = counter("dispatch.records");
    assert!(accesses > 0, "the workload dispatched accesses");
    assert!(records > 0 && records <= profile.memory.runs);
    assert!(
        counter("dispatch.busy_ns") >= counter("dispatch.resolve_ns"),
        "resolution is part of dispatch busy time"
    );
    match snap.get("dispatch.records_per_access") {
        Some(MetricValue::Gauge(v)) => {
            assert!(*v > 0.0, "records/access gauge is positive");
            assert!((v - records as f64 / accesses as f64).abs() < 1e-9);
        }
        other => panic!("dispatch.records_per_access should be a gauge, got {other:?}"),
    }

    span::clear();
    metrics::clear();
}

/// Writers on many threads hammer counters, gauges, histograms, and
/// timeseries buckets while a reader repeatedly snapshots — every JSON
/// export must stay well-formed mid-flight, and the final counter totals
/// must be exact (no lost updates).
#[test]
fn concurrent_writers_keep_snapshots_well_formed() {
    let _lock = obs_lock();
    span::clear();
    metrics::clear();
    sigil::obs::timeseries::clear();
    sigil::obs::set_enabled(true);

    const WRITERS: usize = 8;
    const ROUNDS: u64 = 500;
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    metrics::counter("stress.shared").inc();
                    metrics::counter(&format!("stress.worker.{w}")).add(i);
                    metrics::set_gauge(&format!("stress.depth.{w}"), i as f64);
                    metrics::histogram("stress.lat", &[1, 10, 100]).observe(i);
                    sigil::obs::timeseries::record_counter_at("stress.ops", i, 1);
                }
            })
        })
        .collect();

    // Read concurrently with the writers: partial counts are fine, but
    // the exports must always parse and keys must stay sorted.
    for _ in 0..50 {
        let doc = json::parse(&metrics::snapshot_json()).expect("metrics JSON mid-write");
        assert!(doc.get("counters").is_some());
        json::parse(&sigil::obs::timeseries::snapshot_json()).expect("timeseries JSON mid-write");
        let snap = metrics::snapshot();
        let keys: Vec<_> = snap.keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "snapshot keys stay sorted");
        std::thread::yield_now();
    }
    for writer in writers {
        writer.join().expect("writer thread panicked");
    }

    let snap = metrics::snapshot();
    assert_eq!(
        snap.get("stress.shared"),
        Some(&MetricValue::Counter(WRITERS as u64 * ROUNDS)),
        "shared counter lost updates under contention"
    );
    let per_worker = ROUNDS * (ROUNDS - 1) / 2;
    for w in 0..WRITERS {
        assert_eq!(
            snap.get(&format!("stress.worker.{w}")),
            Some(&MetricValue::Counter(per_worker))
        );
    }
    match snap.get("stress.lat") {
        Some(MetricValue::Histogram { total, .. }) => {
            assert_eq!(*total, WRITERS as u64 * ROUNDS, "histogram lost samples");
        }
        other => panic!("stress.lat should be a histogram, got {other:?}"),
    }
    let (_, series) = sigil::obs::timeseries::snapshot();
    match series.get("stress.ops") {
        Some(sigil::obs::timeseries::SeriesSnapshot::Counter(points)) => {
            let total: u64 = points.iter().map(|&(_, v)| v).sum();
            assert_eq!(total, WRITERS as u64 * ROUNDS, "timeseries lost updates");
        }
        other => panic!("stress.ops should be a counter series, got {other:?}"),
    }

    sigil::obs::set_enabled(false);
    metrics::clear();
    sigil::obs::timeseries::clear();
}

#[test]
fn sweep_entries_surface_memory_stats() {
    // No obs globals involved: SweepEntry.memory is plain data.
    let names = vec![
        ("blackscholes".to_string(), "simsmall".to_string()),
        ("streamcluster".to_string(), "simsmall".to_string()),
    ];
    let entries = sigil::core::sweep::sweep(2, &names, |name| {
        let bench: Benchmark = name.parse().expect("known benchmark");
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        bench.run(InputSize::SimSmall, &mut engine);
        let (profiler, symbols) = engine.finish_with_symbols();
        profiler.into_profile(symbols)
    });
    assert_eq!(entries.len(), 2);
    for entry in &entries {
        assert_eq!(entry.memory, entry.profile.memory);
        assert!(entry.memory.accesses > 0);
    }
    let json_text = serde_json::to_string(&entries).expect("serializes");
    assert!(json_text.contains("\"accesses\""));
    assert!(json_text.contains("\"mru_hits\""));
}
