//! Integration test: the full pipeline (profile → partition → reuse →
//! critical path) over the entire synthetic benchmark suite.

use sigil::analysis::critical_path::CriticalPath;
use sigil::analysis::partition::{trim_calltree, PartitionConfig};
use sigil::analysis::reuse_analysis::reuse_breakdown_percent;
use sigil::core::{Profile, SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn profile(bench: Benchmark, config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

#[test]
fn every_benchmark_profiles_cleanly() {
    for bench in Benchmark::ALL {
        let p = profile(bench, SigilConfig::default());
        assert!(p.callgrind.total_ops > 0, "{bench}");
        assert!(p.total_bytes_read() > 0, "{bench}");
        assert!(
            p.total_unique_bytes() <= p.total_bytes_read(),
            "{bench}: unique cannot exceed total"
        );
        assert!(!p.edges.is_empty(), "{bench} must communicate");
    }
}

#[test]
fn partitioning_yields_candidates_for_every_benchmark() {
    let config = PartitionConfig::default();
    for bench in Benchmark::ALL {
        let p = profile(bench, SigilConfig::default());
        let trimmed = trim_calltree(&p, &config);
        assert!(!trimmed.leaves.is_empty(), "{bench} has no candidates");
        assert!(
            trimmed.coverage > 0.0 && trimmed.coverage <= 1.0 + 1e-9,
            "{bench} coverage {}",
            trimmed.coverage
        );
        for leaf in &trimmed.leaves {
            assert!(leaf.breakeven >= 1.0, "{bench}:{}", leaf.name);
            assert!(leaf.breakeven.is_finite(), "{bench}:{}", leaf.name);
            assert_ne!(leaf.name, "main", "{bench}: entry is not a candidate");
        }
    }
}

#[test]
fn paper_shape_low_coverage_exceptions() {
    // Figure 7: canneal, ferret and swaptions are the low-coverage
    // exceptions; compute-dense benchmarks sit above 55%.
    let config = PartitionConfig::default();
    let coverage =
        |b: Benchmark| trim_calltree(&profile(b, SigilConfig::default()), &config).coverage;
    let low = [Benchmark::Canneal, Benchmark::Ferret, Benchmark::Swaptions];
    let high = [
        Benchmark::Blackscholes,
        Benchmark::Fluidanimate,
        Benchmark::Vips,
        Benchmark::Dedup,
    ];
    for b in low {
        assert!(coverage(b) < 0.55, "{b} should be a low-coverage exception");
    }
    for b in high {
        assert!(coverage(b) > 0.55, "{b} should be >55% covered");
    }
}

#[test]
fn paper_shape_reuse_breakdown() {
    // Figure 8: zero-reuse dominates for blackscholes and streamcluster.
    for bench in [Benchmark::Blackscholes, Benchmark::Streamcluster] {
        let p = profile(bench, SigilConfig::default().with_reuse_mode());
        let pct = reuse_breakdown_percent(&p).expect("reuse mode");
        assert!(
            pct[0] > 50.0,
            "{bench}: zero-reuse should dominate, got {pct:?}"
        );
        assert!(
            pct[2] < 25.0,
            "{bench}: >9 reuse should be small, got {pct:?}"
        );
    }
}

#[test]
fn paper_shape_parallelism_extremes() {
    // Figure 13: fluidanimate ≈ 1 (serial ComputeForces chain);
    // streamcluster and libquantum are high.
    let parallelism = |b: Benchmark| {
        let p = profile(b, SigilConfig::default().with_events());
        CriticalPath::from_profile(&p)
            .expect("events recorded")
            .max_parallelism()
    };
    let fluid = parallelism(Benchmark::Fluidanimate);
    assert!(fluid < 1.5, "fluidanimate should be serial, got {fluid:.2}");
    let sc = parallelism(Benchmark::Streamcluster);
    assert!(
        sc > 8.0,
        "streamcluster should be highly parallel, got {sc:.2}"
    );
    let lq = parallelism(Benchmark::Libquantum);
    assert!(
        lq > 5.0,
        "libquantum should be highly parallel, got {lq:.2}"
    );
    assert!(sc > 3.0 * fluid && lq > 3.0 * fluid);
}

#[test]
fn paper_shape_vips_lifetimes() {
    // Figure 9: conv_gen's average reuse lifetime far exceeds
    // imb_XYZ2Lab's.
    let p = profile(Benchmark::Vips, SigilConfig::default().with_reuse_mode());
    let conv = p
        .context_reuse_by_name("conv_gen")
        .expect("conv_gen reuses");
    let lab = p
        .context_reuse_by_name("imb_XYZ2Lab")
        .expect("imb_XYZ2Lab reuses");
    assert!(
        conv.avg_reused_lifetime() > 10.0 * lab.avg_reused_lifetime(),
        "conv_gen {} vs imb_XYZ2Lab {}",
        conv.avg_reused_lifetime(),
        lab.avg_reused_lifetime()
    );
    // Figure 11: imb_XYZ2Lab peaks at lifetime bin 0.
    let (first_bin, first_count) = lab.histogram.iter().next().expect("nonempty");
    assert_eq!(first_bin, 0);
    assert!(first_count * 2 > lab.histogram.total(), "peak at bin 0");
    // Figure 10: conv_gen has a long tail.
    assert!(
        conv.histogram.max_lifetime_bin().expect("nonempty")
            > lab.histogram.max_lifetime_bin().expect("nonempty")
    );
}

#[test]
fn dedup_under_memory_limit_stays_close_to_unlimited() {
    // §III-A: the FIFO limiter's accuracy loss on dedup is negligible.
    let unlimited = profile(Benchmark::Dedup, SigilConfig::default());
    let limited = profile(
        Benchmark::Dedup,
        SigilConfig::default().with_shadow_limit(32),
    );
    assert!(limited.memory.evicted_chunks > 0, "limit must bite");
    assert!(
        limited.memory.resident_chunks <= 128,
        "residency respects the cap"
    );
    let u = unlimited.total_unique_bytes() as f64;
    let l = limited.total_unique_bytes() as f64;
    // Eviction can only *increase* apparent uniqueness, and only mildly.
    assert!(l >= u);
    assert!(l <= u * 1.10, "accuracy loss should be small: {u} -> {l}");
}

#[test]
fn profiles_are_deterministic_across_runs() {
    for bench in [Benchmark::Canneal, Benchmark::Freqmine, Benchmark::Vips] {
        let a = profile(bench, SigilConfig::default().with_reuse_mode());
        let b = profile(bench, SigilConfig::default().with_reuse_mode());
        assert_eq!(a.edges, b.edges, "{bench}");
        assert_eq!(a.total_unique_bytes(), b.total_unique_bytes(), "{bench}");
        assert_eq!(a.reuse_breakdown(), b.reuse_breakdown(), "{bench}");
    }
}
