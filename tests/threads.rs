//! Integration tests for multi-threaded traces.
//!
//! The paper defines software-level communication as "messages between
//! software entities such as functions, **threads**, basic blocks, or
//! even instructions" (§I) and §II-A names threads among the entities
//! Sigil can attribute. These tests drive interleaved two-thread traces
//! through the full stack: the shadow memory attributes cross-thread
//! producer→consumer traffic exactly like cross-function traffic, and
//! each thread gets its own call-stack cursor in the calltree.

use sigil::core::{Profile, SigilConfig, SigilProfiler};
use sigil::trace::{Engine, OpClass, ThreadId};

fn two_thread_profile() -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
    let main_fn = engine.symbols_mut().intern("main");
    let producer = engine.symbols_mut().intern("producer_loop");
    let consumer = engine.symbols_mut().intern("consumer_loop");
    let worker = ThreadId::from_raw(1);

    // Main thread enters main and spawns the worker conceptually.
    engine.call(main_fn);
    engine.op(OpClass::IntArith, 10);

    // Worker thread starts producing.
    engine.switch_thread(worker);
    engine.call(producer);
    for i in 0..16u64 {
        engine.write(0x9000 + i * 8, 8);
        engine.op(OpClass::IntArith, 4);
    }

    // Interleave: main thread consumes what the worker produced so far.
    engine.switch_thread(ThreadId::MAIN);
    engine.call(consumer);
    for i in 0..8u64 {
        engine.read(0x9000 + i * 8, 8);
        engine.op(OpClass::FloatArith, 2);
    }

    // Back to the worker to finish, then both unwind.
    engine.switch_thread(worker);
    engine.write(0x9100, 8);
    engine.ret(); // producer_loop

    engine.switch_thread(ThreadId::MAIN);
    engine.read(0x9100, 8);
    engine.ret(); // consumer_loop
    engine.ret(); // main

    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

#[test]
fn cross_thread_communication_is_inter_thread_input() {
    let profile = two_thread_profile();
    let consumer = profile.function_by_name("consumer_loop").expect("consumer");
    // 8*8 bytes of early data + 8 bytes of late data, all produced on the
    // other thread: unique inter-thread inputs, disjoint from the
    // same-thread input class.
    assert_eq!(consumer.comm.inter_thread_unique_bytes, 72);
    assert_eq!(consumer.comm.input_unique_bytes, 0);
    assert_eq!(consumer.comm.local_unique_bytes, 0);
    let producer = profile.function_by_name("producer_loop").expect("producer");
    assert_eq!(producer.comm.output_unique_bytes, 72);
    assert_eq!(producer.comm.bytes_written, 16 * 8 + 8);
}

#[test]
fn threads_keep_independent_call_stacks() {
    let profile = two_thread_profile();
    let tree = &profile.callgrind.tree;
    let symbols = profile.symbols();
    // consumer_loop is a child of main (main thread); producer_loop
    // hangs off the root (worker thread started with an empty stack).
    let (consumer_ctx, _) = tree
        .iter()
        .find(|(_, n)| {
            n.func
                .is_some_and(|f| symbols.get_name(f) == Some("consumer_loop"))
        })
        .expect("consumer context");
    assert_eq!(
        tree.path_label(consumer_ctx, symbols),
        "main->consumer_loop"
    );
    let (producer_ctx, _) = tree
        .iter()
        .find(|(_, n)| {
            n.func
                .is_some_and(|f| symbols.get_name(f) == Some("producer_loop"))
        })
        .expect("producer context");
    assert_eq!(tree.path_label(producer_ctx, symbols), "producer_loop");
}

#[test]
fn interleaving_does_not_corrupt_cost_attribution() {
    let profile = two_thread_profile();
    let producer = profile.function_by_name("producer_loop").expect("producer");
    let consumer = profile.function_by_name("consumer_loop").expect("consumer");
    let main_fn = profile.function_by_name("main").expect("main");
    assert_eq!(producer.costs.ops_total(), 64, "4 ops x 16 iterations");
    assert_eq!(consumer.costs.ops_total(), 16, "2 ops x 8 reads");
    assert_eq!(main_fn.costs.ops_total(), 10);
}

#[test]
fn event_file_and_critical_path_survive_threads() {
    use sigil::analysis::critical_path::CriticalPath;
    let profile = two_thread_profile();
    let cp = CriticalPath::from_profile(&profile).expect("events recorded");
    assert!(cp.length_ops <= cp.serial_ops);
    assert!(cp.max_parallelism() >= 1.0);
    // The consumer depends on producer data, so both appear in the graph
    // and the path ends no earlier than the dependency allows.
    let names = cp.function_names(&profile);
    assert!(!names.is_empty());
}

#[test]
fn trace_io_round_trips_thread_switches() {
    use sigil::trace::observer::RecordingObserver;
    let mut engine = Engine::new(RecordingObserver::new());
    let f = engine.symbols_mut().intern("f");
    engine.call(f);
    engine.switch_thread(ThreadId::from_raw(3));
    let g = engine.symbols_mut().intern("g");
    engine.call(g);
    engine.ret();
    engine.switch_thread(ThreadId::MAIN);
    engine.ret();
    let (rec, symbols) = engine.finish_with_symbols();
    let events = rec.into_events();

    let mut buf = Vec::new();
    sigil::trace::io::write_trace(&mut buf, &symbols, &events).expect("write");
    let (_, loaded) = sigil::trace::io::read_trace(&mut buf.as_slice()).expect("read");
    assert_eq!(events, loaded);
}

/// A sharing-heavy interleaving touching several shadow chunks from
/// both threads, with re-reads, overwrites, and cross-thread traffic in
/// both directions — the scenario every multithreaded equivalence test
/// below replays.
fn sharing_scenario(engine: &mut Engine<SigilProfiler>) {
    let main_fn = engine.symbols_mut().intern("main");
    let stage_a = engine.symbols_mut().intern("stage_a");
    let stage_b = engine.symbols_mut().intern("stage_b");
    let worker = ThreadId::from_raw(1);

    engine.call(main_fn);
    engine.write(0x1000, 64); // main seeds a buffer
    engine.write(0x3FF8, 16); // straddles a chunk boundary

    engine.switch_thread(worker);
    engine.call(stage_a);
    engine.read(0x1000, 64); // inter-thread input
    engine.read(0x3FF8, 16); // straddling inter-thread input
    engine.write(0x2000, 32); // worker produces
    engine.write(0x1000, 16); // overwrites part of main's buffer
    engine.op(OpClass::IntArith, 7);

    engine.switch_thread(ThreadId::MAIN);
    engine.call(stage_b);
    engine.read(0x2000, 32); // inter-thread input from the worker
    engine.read(0x2000, 32); // non-unique re-read
    engine.read(0x1000, 64); // mixed: 16 inter (worker wrote), 48 local-ish
    engine.write(0x8000, 8);

    engine.switch_thread(worker);
    engine.read(0x8000, 8); // inter-thread input back the other way
    engine.ret(); // stage_a

    engine.switch_thread(ThreadId::MAIN);
    engine.ret(); // stage_b
    engine.ret(); // main
}

fn run_sharing(config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    sharing_scenario(&mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

#[test]
fn multithreaded_sharded_matches_serial_byte_for_byte() {
    // Inter-thread classification must survive the sharded replay path
    // identically: same owner threads, same coalescing legality.
    let base = SigilConfig::default()
        .with_reuse_mode()
        .with_line_mode(64)
        .with_events()
        .with_phases(5);
    let serial = run_sharing(base);
    assert!(
        serial
            .contexts
            .iter()
            .any(|c| c.comm.inter_thread_unique_bytes > 0),
        "scenario produces inter-thread traffic"
    );
    for shards in [2, 4, 8] {
        let sharded = run_sharing(base.with_shards(shards));
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&sharded).unwrap(),
            "shards={shards}"
        );
    }
}

#[test]
fn multithreaded_eviction_matches_serial() {
    use sigil::mem::EvictionPolicy;
    // Chunk eviction interleaved with thread switches: the residency
    // oracle replays the same victim sequence, so sharded == serial even
    // when evicted bytes re-classify as root input mid-scenario.
    for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
        for limit in [1, 2, 3] {
            let base = SigilConfig::default()
                .with_reuse_mode()
                .with_events()
                .with_shadow_limit(limit)
                .with_eviction(policy);
            let serial = run_sharing(base);
            let sharded = run_sharing(base.with_shards(4));
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&sharded).unwrap(),
                "policy={policy:?} limit={limit}"
            );
            assert!(
                serial.memory.evicted_chunks >= 1,
                "limit {limit} must actually evict"
            );
        }
    }
}

#[test]
fn eviction_never_undercounts_inter_thread_bytes_as_local() {
    // An evicted byte loses its last-writer tag and re-reads as root
    // input — the degradation direction is inter→input, never
    // inter→local (which would hide a cross-thread dependency entirely).
    let bounded = run_sharing(SigilConfig::default().with_shadow_limit(1));
    for ctx in &bounded.contexts {
        // stage_b's 48 main-written bytes are "input" (ROOT differs from
        // stage_b), so local stays zero everywhere in this scenario.
        assert_eq!(ctx.comm.local_unique_bytes, 0, "ctx {:?}", ctx.ctx);
    }
}

#[test]
#[should_panic(expected = "unclosed call frames")]
fn unbalanced_thread_stacks_are_caught() {
    let mut engine: Engine<sigil::trace::observer::NullObserver> = Engine::new(Default::default());
    let f = engine.symbols_mut().intern("f");
    engine.switch_thread(ThreadId::from_raw(7));
    engine.call(f);
    engine.switch_thread(ThreadId::MAIN);
    // Thread 7 still has an open frame: finish must panic in strict mode.
    let _ = engine.finish();
}
