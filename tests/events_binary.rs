//! Integration test: the chunk-indexed binary event format and the
//! streaming analysis folds, checked against the whole workload suite.
//!
//! For every built-in benchmark (serial and sharded event recording):
//!
//! * text → binary → text and binary → decode → binary are lossless
//!   (byte-identical re-encodings),
//! * the trailer index agrees with a full decode,
//! * the streaming critical-path fold over binary chunks reproduces the
//!   in-memory [`CriticalPath`] numbers exactly, and
//! * the streaming CDFG fold reproduces the in-memory event CDFG —
//!   nodes, edges and inclusive costs — exactly.

use sigil::analysis::critical_path::{CommModel, CriticalPath};
use sigil::analysis::streaming::{critical_path_from_bin, event_cdfg_from_bin, EventCdfg};
use sigil::core::events_bin::{decode_events, encode_events_chunked, BinReader};
use sigil::core::{EventFile, Profile, SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn events_profile(bench: Benchmark, config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config.with_events()));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

fn event_file(bench: Benchmark, config: SigilConfig) -> EventFile {
    events_profile(bench, config)
        .events
        .expect("events recording was enabled")
}

/// Chunk sizes stressing the framing: single-record chunks, a size
/// smaller than most files, and one larger than every file (one chunk).
const CHUNK_SIZES: [usize; 3] = [1, 257, 1 << 20];

#[test]
fn binary_round_trip_is_lossless_for_every_benchmark() {
    for bench in Benchmark::ALL {
        let events = event_file(bench, SigilConfig::default());
        let text = events.to_text();
        for chunk in CHUNK_SIZES {
            let bytes = encode_events_chunked(&events, chunk);
            let decoded =
                decode_events(&bytes).unwrap_or_else(|e| panic!("{bench} chunk={chunk}: {e}"));
            assert_eq!(
                decoded, events,
                "{bench} chunk={chunk}: decode lost records"
            );
            assert_eq!(
                decoded.to_text(),
                text,
                "{bench} chunk={chunk}: text differs after binary round trip"
            );
            assert_eq!(
                encode_events_chunked(&decoded, chunk),
                bytes,
                "{bench} chunk={chunk}: re-encode not byte-identical"
            );
        }
    }
}

#[test]
fn trailer_index_matches_decode_for_every_benchmark() {
    for bench in Benchmark::ALL {
        let events = event_file(bench, SigilConfig::default());
        let bytes = encode_events_chunked(&events, 509);
        let reader = BinReader::parse(&bytes).unwrap_or_else(|e| panic!("{bench}: {e}"));
        let totals = reader.totals();
        assert_eq!(totals.records, events.len() as u64, "{bench}");
        let verified = reader.verify().unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert_eq!(
            verified, totals,
            "{bench}: full scan disagrees with trailer"
        );
    }
}

#[test]
fn streaming_critical_path_matches_in_memory_for_every_benchmark() {
    for bench in Benchmark::ALL {
        let profile = events_profile(bench, SigilConfig::default());
        let in_memory =
            CriticalPath::from_profile(&profile).unwrap_or_else(|e| panic!("{bench}: {e}"));
        let events = profile.events.as_ref().expect("events recorded");
        for chunk in CHUNK_SIZES {
            let bytes = encode_events_chunked(events, chunk);
            let streamed = critical_path_from_bin(&bytes[..], &CommModel::free())
                .unwrap_or_else(|e| panic!("{bench} chunk={chunk}: {e}"));
            assert_eq!(
                streamed.serial_ops, in_memory.serial_ops,
                "{bench} chunk={chunk}"
            );
            assert_eq!(
                streamed.length_ops, in_memory.length_ops,
                "{bench} chunk={chunk}"
            );
        }
    }
}

#[test]
fn streaming_cdfg_matches_in_memory_for_every_benchmark() {
    for bench in Benchmark::ALL {
        let events = event_file(bench, SigilConfig::default());
        let in_memory = EventCdfg::from_records(events.records());
        let bytes = encode_events_chunked(&events, 313);
        let streamed = event_cdfg_from_bin(&bytes[..]).unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert_eq!(streamed, in_memory, "{bench}: streamed CDFG differs");
        assert_eq!(
            streamed.inclusive(),
            in_memory.inclusive(),
            "{bench}: inclusive costs differ"
        );
    }
}

#[test]
fn sharded_event_recording_round_trips_and_matches() {
    for bench in Benchmark::ALL {
        let profile = events_profile(bench, SigilConfig::default().with_shards(4));
        let in_memory =
            CriticalPath::from_profile(&profile).unwrap_or_else(|e| panic!("{bench}: {e}"));
        let events = profile.events.as_ref().expect("events recorded");
        let bytes = encode_events_chunked(events, 127);
        let decoded = decode_events(&bytes).unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert_eq!(&decoded, events, "{bench}: sharded events decode differs");
        let streamed = critical_path_from_bin(&bytes[..], &CommModel::free())
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert_eq!(streamed.serial_ops, in_memory.serial_ops, "{bench}");
        assert_eq!(streamed.length_ops, in_memory.length_ops, "{bench}");
    }
}
