//! Integration test: the paper's Figures 1–3 toy-program walkthrough,
//! end to end through the public API.

use sigil::analysis::critical_path::CriticalPath;
use sigil::analysis::inclusive::inclusive_table;
use sigil::analysis::Cdfg;
use sigil::core::{Profile, SigilConfig, SigilProfiler};
use sigil::trace::{Engine, OpClass};

/// Builds the toy of Figures 1/2: main → {A → {C, D1}, B → D2}, with
/// edges C→D2 (16 B), C→D1 (8 B), main→A (4 B), A-local data.
fn toy_profile(config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    engine.scoped_named("main", |e| {
        e.write(0x400, 4); // main → A edge
        e.scoped_named("A", |e| {
            e.read(0x400, 4);
            e.op(OpClass::IntArith, 100);
            e.scoped_named("C", |e| {
                e.op(OpClass::IntArith, 500);
                e.write(0x100, 16); // → D2
                e.write(0x200, 8); // → D1
            });
            e.scoped_named("D", |e| {
                e.read(0x200, 8);
                e.op(OpClass::IntArith, 200);
            });
        });
        e.scoped_named("B", |e| {
            e.op(OpClass::IntArith, 50);
            e.scoped_named("D", |e| {
                e.read(0x100, 16);
                e.op(OpClass::IntArith, 200);
            });
        });
    });
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

fn ctx_of(cdfg: &Cdfg, name: &str, nth: usize) -> sigil::callgrind::ContextId {
    cdfg.nodes()
        .iter()
        .filter(|n| n.name == name)
        .nth(nth)
        .unwrap_or_else(|| panic!("node {name}[{nth}]"))
        .ctx
}

#[test]
fn figure1_edges_have_expected_weights() {
    let profile = toy_profile(SigilConfig::default());
    let cdfg = Cdfg::from_profile(&profile);

    // D appears in two contexts (the paper's D1 and D2).
    let d_count = cdfg.nodes().iter().filter(|n| n.name == "D").count();
    assert_eq!(d_count, 2);

    let c = ctx_of(&cdfg, "C", 0);
    let d1 = ctx_of(&cdfg, "D", 0);
    let d2 = ctx_of(&cdfg, "D", 1);
    let a = ctx_of(&cdfg, "A", 0);
    let main = ctx_of(&cdfg, "main", 0);

    let weight = |p, q| {
        cdfg.data_edges()
            .iter()
            .find(|e| e.producer == p && e.consumer == q)
            .map(|e| e.unique_bytes)
    };
    assert_eq!(weight(c, d1), Some(8));
    assert_eq!(weight(c, d2), Some(16));
    assert_eq!(weight(main, a), Some(4));
}

#[test]
fn figure2_merging_a_discards_internal_edges() {
    let profile = toy_profile(SigilConfig::default());
    let cdfg = Cdfg::from_profile(&profile);
    let table = inclusive_table(&cdfg);
    let a = ctx_of(&cdfg, "A", 0);

    let inc = &table[a.index()];
    // Inside A's box: C→D1 (8 B) discarded. Crossing: C→D2 out (16 B),
    // main→A in (4 B).
    assert_eq!(inc.comm_out_unique, 16);
    assert_eq!(inc.comm_in_unique, 4);
    // Computation accumulates over the sub-tree.
    assert_eq!(inc.costs.ops_total(), 100 + 500 + 200);
}

#[test]
fn figure3_critical_path_runs_through_c_and_d() {
    let profile = toy_profile(SigilConfig::default().with_events());
    let cp = CriticalPath::from_profile(&profile).expect("events recorded");
    let names = cp.function_names(&profile);
    assert!(names.contains(&"C".to_owned()), "path {names:?}");
    assert!(names.contains(&"D".to_owned()), "path {names:?}");
    assert!(cp.length_ops <= cp.serial_ops);
    assert!(cp.max_parallelism() >= 1.0);
    // B's 50-op fragment and D2 can overlap with A's sub-tree only up to
    // the C→D2 data dependency: the path must be longer than C alone.
    assert!(cp.length_ops > 500);
}

#[test]
fn profile_is_deterministic() {
    let a = toy_profile(SigilConfig::default());
    let b = toy_profile(SigilConfig::default());
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.contexts, b.contexts);
    assert_eq!(a.callgrind.total_ops, b.callgrind.total_ops);
}

#[test]
fn unique_totals_are_consistent() {
    let profile = toy_profile(SigilConfig::default());
    for row in profile.function_rows() {
        let comm = row.comm;
        assert_eq!(
            comm.input_unique_bytes
                + comm.input_nonunique_bytes
                + comm.local_unique_bytes
                + comm.local_nonunique_bytes,
            comm.bytes_read,
            "{}: read classification must partition total reads",
            row.name
        );
    }
}
