//! Server conformance: online == batch over a real socket.
//!
//! Every golden workload and a seeded sweep of generated programs are
//! profiled twice — once through the in-process batch pipeline and once
//! by streaming the identical recorded trace into a live `sigil-serve`
//! daemon over TCP — and the finished Profile, phase profile, and
//! critical-path summary must be **byte-identical** as JSON, under both
//! serial and 4-way sharded server-side replay, regardless of where the
//! wire chunk boundaries fall.
//!
//! The seed sweep is env-tunable so CI can widen it without recompiling:
//!
//! - `SIGIL_SERVE_SEEDS`     — number of seeds (default 30 debug / 100 release)
//! - `SIGIL_SERVE_SEED_BASE` — first seed (default 0)
//!
//! On any divergence the failing program is delta-debugged down to a
//! minimal repro *through the socket* before the assert fires, mirroring
//! `tests/differential.rs`.

use sigil_oracle::harness::{record_benchmark, record_program, shrink_with};
use sigil_oracle::serve_axis::{
    batch_outcome, diff_online, diff_outcomes, online_outcome, serve_config, shrink_online,
};
use sigil_serve::{Listen, ServeConfig, Server};
use sigil_vm::GenProgram;
use sigil_workloads::{Benchmark, InputSize};

/// Wire chunk sizes the sweeps rotate through: a tiny chunk that splits
/// symbol definitions from events, two mid sizes, and one large enough
/// that small traces arrive in a single frame.
const CHUNK_AXIS: [usize; 4] = [3, 64, 1024, 4096];

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v:?}")))
        .unwrap_or(default)
}

fn start_server() -> Server {
    Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default())
        .expect("bind conformance server")
}

/// All 14 golden workloads, each replayed online under serial and 4-way
/// sharded server-side replay with a per-workload chunk size: the
/// session result must be byte-identical to the batch pipeline.
#[test]
fn golden_workloads_conform_online() {
    let server = start_server();
    let address = server.address();
    for (i, bench) in Benchmark::ALL.into_iter().enumerate() {
        let recorded_at = std::time::Instant::now();
        let bundle = record_benchmark(bench, InputSize::SimSmall);
        eprintln!(
            "[golden] {bench}: {} events recorded in {:.1?}",
            bundle.events.len(),
            recorded_at.elapsed()
        );
        let chunk = CHUNK_AXIS[i % CHUNK_AXIS.len()];
        for shards in [1usize, 4] {
            let started = std::time::Instant::now();
            let config = if shards == 1 {
                serve_config()
            } else {
                serve_config().with_shards(shards)
            };
            let name = format!("{bench}-s{shards}");
            let divergences = diff_online(&address, &name, &bundle, config, chunk)
                .unwrap_or_else(|e| panic!("{bench} (shards {shards}): session failed: {e}"));
            assert!(
                divergences.is_empty(),
                "{bench} (shards {shards}, chunk {chunk}): online diverged from batch:\n{:#?}",
                divergences
            );
            eprintln!(
                "[golden] {bench} shards={shards} chunk={chunk}: conformed in {:.1?}",
                started.elapsed()
            );
        }
    }
    drop(server);
}

/// Seeded random programs conform online == batch, alternating serial
/// and 4-way sharded replay and rotating the wire chunk size per seed.
/// Divergences shrink through the socket before the panic fires.
#[test]
fn random_seeds_conform_online() {
    let default_seeds = if cfg!(debug_assertions) { 30 } else { 100 };
    let seeds = env_u64("SIGIL_SERVE_SEEDS", default_seeds);
    let base = env_u64("SIGIL_SERVE_SEED_BASE", 0);
    let server = start_server();
    let address = server.address();
    for seed in base..base + seeds {
        let program = GenProgram::generate(seed);
        let bundle = record_program(&program);
        let chunk = CHUNK_AXIS[(seed % CHUNK_AXIS.len() as u64) as usize];
        let config = if seed % 2 == 0 {
            serve_config()
        } else {
            serve_config().with_shards(4)
        };
        let divergences = diff_online(&address, &format!("seed-{seed}"), &bundle, config, chunk)
            .unwrap_or_else(|e| panic!("seed {seed}: session failed: {e}"));
        if !divergences.is_empty() {
            let minimized = shrink_online(&address, &program, config);
            panic!(
                "seed {seed} (shards {}, chunk {chunk}): online diverged from batch:\n{:#?}\n\
                 minimized repro: {} instructions (from {})",
                config.shards,
                divergences.iter().take(8).collect::<Vec<_>>(),
                minimized.inst_count(),
                program.inst_count()
            );
        }
    }
    drop(server);
}

/// The serve axis has teeth: a deliberately mismatched configuration on
/// the online side (line granularity 32 vs the batch side's 64) is
/// detected as a divergence, and the socket-predicate ddmin loop
/// shrinks the repro while preserving the failure.
#[test]
fn mismatched_online_config_is_caught_and_shrinks() {
    let server = start_server();
    let address = server.address();
    let wrong = serve_config().with_line_mode(32);
    let diverges = |program: &GenProgram| {
        let bundle = record_program(program);
        let batch = batch_outcome(&bundle, serve_config());
        match online_outcome(&address, "teeth", &bundle, wrong, 64) {
            Ok(online) => !diff_outcomes(&batch, &online).is_empty(),
            Err(_) => false,
        }
    };
    let seed = (0..50)
        .find(|&s| diverges(&GenProgram::generate(s)))
        .expect("line-granularity mismatch never manifested in 50 seeds");
    let minimized = shrink_with(&GenProgram::generate(seed), diverges);
    assert!(
        diverges(&minimized),
        "shrink lost the online divergence (seed {seed})"
    );
    assert!(
        minimized.inst_count() <= 40,
        "minimized online repro has {} instructions (> 40)",
        minimized.inst_count()
    );
    drop(server);
}

/// Tampered session results are reported with named locations — the
/// field-level differ never waves a mutilated result through.
#[test]
fn tampered_results_are_named() {
    let server = start_server();
    let address = server.address();
    let bundle = record_program(&GenProgram::generate(1));
    let config = serve_config();
    let batch = batch_outcome(&bundle, config);
    let mut online =
        online_outcome(&address, "tamper", &bundle, config, 64).expect("tamper session streams");
    assert!(
        diff_outcomes(&batch, &online).is_empty(),
        "baseline must conform"
    );

    let mut missing = online.clone();
    missing.profile = None;
    let locations: Vec<_> = diff_outcomes(&batch, &missing)
        .into_iter()
        .map(|d| d.location)
        .collect();
    assert!(
        locations.iter().any(|l| l == "profile"),
        "missing profile not named: {locations:?}"
    );

    online.phases = None;
    assert!(
        diff_outcomes(&batch, &online)
            .iter()
            .any(|d| d.location == "phases/json-bytes"),
        "dropped phases not named"
    );
    drop(server);
}
