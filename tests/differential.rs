//! Differential conformance: the production `SigilProfiler` against the
//! deliberately naive `sigil-oracle` reference, on seeded random programs
//! and on the committed golden corpus.
//!
//! The seed sweep is env-tunable so CI can shard it into a seed × limit
//! matrix without recompiling:
//!
//! - `SIGIL_DIFF_SEEDS`     — number of seeds (default 40 debug / 200 release)
//! - `SIGIL_DIFF_SEED_BASE` — first seed (default 0)
//! - `SIGIL_DIFF_LIMIT`     — pin the constrained shadow-chunk limit
//! - `SIGIL_DIFF_SHARDS`    — pin the shard count (default: the full
//!   `SHARD_AXIS`, i.e. serial plus 2/4/8-way sharded replay)
//!
//! On any divergence the failing program is delta-debugged down to a
//! minimal repro before the assert fires, so the panic message alone is
//! enough to reproduce and debug the mismatch by hand.

use sigil_oracle::harness::{self, diff_seed, golden_config, record_benchmark, shrink};
use sigil_oracle::{diff_reports, InjectedBug, OracleReport};
use sigil_vm::GenProgram;
use sigil_workloads::{Benchmark, InputSize};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v:?}")))
        .unwrap_or(default)
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v:?}")))
}

/// Seeded random programs produce identical reports from the production
/// profiler and the oracle, under both the unbounded and the
/// seed-constrained shadow-table configurations, each replayed serially
/// and through 2/4/8-way sharding.
#[test]
fn random_programs_conform() {
    let default_seeds = if cfg!(debug_assertions) { 40 } else { 200 };
    let seeds = env_u64("SIGIL_DIFF_SEEDS", default_seeds);
    let base = env_u64("SIGIL_DIFF_SEED_BASE", 0);
    let limit = env_usize("SIGIL_DIFF_LIMIT");
    let shards = env_usize("SIGIL_DIFF_SHARDS");
    for seed in base..base + seeds {
        let failures = diff_seed(seed, limit, shards);
        if let Some(failure) = failures.first() {
            let minimized = shrink(&GenProgram::generate(seed), failure.config, None);
            panic!(
                "seed {seed} diverged under `{}`:\n{}",
                failure.label,
                harness::render_repro(&minimized, failure.config, None)
            );
        }
    }
}

/// An intentionally injected classification bug is caught by the harness
/// and shrinks to a small repro — validates that the differential setup
/// actually has teeth, not just that both sides agree. Runs once against
/// the serial production profiler and once against the 4-way sharded
/// one, so the shrinker and divergence locator are proven to work on
/// sharded divergences too.
#[test]
fn injected_bugs_are_caught_and_shrink() {
    for config in [golden_config(), golden_config().with_shards(4)] {
        for bug in [
            InjectedBug::RepeatIgnoresCall,
            InjectedBug::WriteKeepsReader,
        ] {
            let seed = (0..50)
                .find(|&s| harness::diverges(&GenProgram::generate(s), config, Some(bug)))
                .unwrap_or_else(|| panic!("{bug:?} never manifested in 50 seeds"));
            let minimized = shrink(&GenProgram::generate(seed), config, Some(bug));
            assert!(
                harness::diverges(&minimized, config, Some(bug)),
                "{bug:?} (shards={}): shrink lost the divergence",
                config.shards
            );
            assert!(
                minimized.inst_count() <= 20,
                "{bug:?} (shards={}): minimized repro has {} instructions (> 20)",
                config.shards,
                minimized.inst_count()
            );
            let bundle = harness::record_program(&minimized);
            assert!(
                harness::first_divergent_access(&bundle, config, Some(bug)).is_some(),
                "{bug:?} (shards={}): no first divergent access located",
                config.shards
            );
        }
    }
}

/// Every committed golden profile matches a fresh oracle replay of its
/// workload, and the production profiler matches the oracle on the same
/// trace. Regenerate intentionally changed profiles with
/// `sigil diff bless`.
#[test]
fn golden_corpus_conforms() {
    let config = golden_config();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for bench in Benchmark::ALL {
        let path = dir.join(format!("{bench}.json"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {}: {e} (run `sigil diff bless`)",
                path.display()
            )
        });
        let golden: OracleReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bad golden {}: {e}", path.display()));
        let bundle = record_benchmark(bench, InputSize::SimSmall);
        let oracle = harness::oracle_report(&bundle, config, None);
        let drift = diff_reports(&golden, &oracle);
        assert!(
            drift.is_empty(),
            "golden profile for `{bench}` drifted from the oracle ({} field(s)), first: {}\n\
             re-bless only if intentional: sigil diff bless",
            drift.len(),
            drift[0]
        );
        for shards in [1, 4] {
            let production = harness::production_report(&bundle, config.with_shards(shards));
            let conformance = diff_reports(&production, &oracle);
            assert!(
                conformance.is_empty(),
                "production (shards={shards}) diverged from oracle on `{bench}` \
                 ({} field(s)), first: {}",
                conformance.len(),
                conformance[0]
            );
        }
    }
}
