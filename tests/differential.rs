//! Differential conformance: the production `SigilProfiler` against the
//! deliberately naive `sigil-oracle` reference, on seeded random programs
//! and on the committed golden corpus.
//!
//! The seed sweep is env-tunable so CI can shard it into a seed × limit
//! matrix without recompiling:
//!
//! - `SIGIL_DIFF_SEEDS`     — number of seeds (default 40 debug / 200 release)
//! - `SIGIL_DIFF_SEED_BASE` — first seed (default 0)
//! - `SIGIL_DIFF_LIMIT`     — pin the constrained shadow-chunk limit
//! - `SIGIL_DIFF_SHARDS`    — pin the shard count (default: the full
//!   `SHARD_AXIS`, i.e. serial plus 2/4/8-way sharded replay)
//! - `SIGIL_DIFF_UNBOUNDED` — set to `1` to restrict the matrix to the
//!   no-limit axis (oracle-elided and pinned legacy dispatch)
//! - `SIGIL_DIFF_THREADS`   — pin the guest-thread count for
//!   `random_programs_conform` (default 1; CI's thread-axis job sets 2
//!   and 4). `multithreaded_programs_conform` always sweeps {2, 4}.
//!
//! On any divergence the failing program is delta-debugged down to a
//! minimal repro before the assert fires, so the panic message alone is
//! enough to reproduce and debug the mismatch by hand.

use sigil_core::{PhaseBuilder, PhaseProfile, SigilConfig, SigilProfiler};
use sigil_oracle::harness::{
    self, golden_config, record_benchmark, record_program, shrink, TraceBundle, SHARD_AXIS,
};
use sigil_oracle::{diff_reports, InjectedBug, OracleReport};
use sigil_trace::io::replay;
use sigil_vm::GenProgram;
use sigil_workloads::{Benchmark, InputSize};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v:?}")))
        .unwrap_or(default)
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v:?}")))
}

/// Seeded random programs produce identical reports from the production
/// profiler and the oracle, under both the unbounded and the
/// seed-constrained shadow-table configurations, each replayed serially
/// and through 2/4/8-way sharding.
#[test]
fn random_programs_conform() {
    let default_seeds = if cfg!(debug_assertions) { 40 } else { 200 };
    let seeds = env_u64("SIGIL_DIFF_SEEDS", default_seeds);
    let base = env_u64("SIGIL_DIFF_SEED_BASE", 0);
    let limit = env_usize("SIGIL_DIFF_LIMIT");
    let shards = env_usize("SIGIL_DIFF_SHARDS");
    let unbounded = env_u64("SIGIL_DIFF_UNBOUNDED", 0) != 0;
    let threads = u32::try_from(env_u64("SIGIL_DIFF_THREADS", 1)).expect("sane thread count");
    for seed in base..base + seeds {
        let failures = harness::diff_seed_mt(seed, threads, limit, shards, unbounded);
        if let Some(failure) = failures.first() {
            let minimized = shrink(
                &GenProgram::generate_mt(seed, threads),
                failure.config,
                None,
            );
            panic!(
                "seed {seed} threads {threads} diverged under `{}`:\n{}",
                failure.label,
                harness::render_repro(&minimized, failure.config, None)
            );
        }
    }
}

/// Multithreaded seeded programs — whose entry spawns and joins guest
/// threads sharing every buffer — produce identical reports from the
/// production profiler and the oracle across the full configuration
/// matrix (serial, 2/4/8-way sharded, constrained shadow memory). This
/// is the differential proof behind the inter-thread classification
/// axis: both sides attribute every cross-thread byte independently.
#[test]
fn multithreaded_programs_conform() {
    let default_seeds = if cfg!(debug_assertions) { 20 } else { 100 };
    let seeds = env_u64("SIGIL_DIFF_MT_SEEDS", default_seeds);
    let base = env_u64("SIGIL_DIFF_SEED_BASE", 0);
    let limit = env_usize("SIGIL_DIFF_LIMIT");
    let shards = env_usize("SIGIL_DIFF_SHARDS");
    for seed in base..base + seeds {
        for threads in [2u32, 4] {
            let failures = harness::diff_seed_mt(seed, threads, limit, shards, false);
            if let Some(failure) = failures.first() {
                let minimized = shrink(
                    &GenProgram::generate_mt(seed, threads),
                    failure.config,
                    None,
                );
                panic!(
                    "seed {seed} threads {threads} diverged under `{}`:\n{}",
                    failure.label,
                    harness::render_repro(&minimized, failure.config, None)
                );
            }
        }
    }
}

/// An intentionally injected classification bug is caught by the harness
/// and shrinks to a small repro — validates that the differential setup
/// actually has teeth, not just that both sides agree. Runs once against
/// the serial production profiler and once against the 4-way sharded
/// one, so the shrinker and divergence locator are proven to work on
/// sharded divergences too.
#[test]
fn injected_bugs_are_caught_and_shrink() {
    for config in [golden_config(), golden_config().with_shards(4)] {
        for bug in [
            InjectedBug::RepeatIgnoresCall,
            InjectedBug::WriteKeepsReader,
        ] {
            let seed = (0..50)
                .find(|&s| harness::diverges(&GenProgram::generate(s), config, Some(bug)))
                .unwrap_or_else(|| panic!("{bug:?} never manifested in 50 seeds"));
            let minimized = shrink(&GenProgram::generate(seed), config, Some(bug));
            assert!(
                harness::diverges(&minimized, config, Some(bug)),
                "{bug:?} (shards={}): shrink lost the divergence",
                config.shards
            );
            assert!(
                minimized.inst_count() <= 20,
                "{bug:?} (shards={}): minimized repro has {} instructions (> 20)",
                config.shards,
                minimized.inst_count()
            );
            let bundle = harness::record_program(&minimized);
            assert!(
                harness::first_divergent_access(&bundle, config, Some(bug)).is_some(),
                "{bug:?} (shards={}): no first divergent access located",
                config.shards
            );
        }
    }
}

/// A mutant oracle that misclassifies inter-thread reads as ordinary
/// same-thread input is caught by the multithreaded differential axis —
/// and only there: single-threaded traces have no inter-thread bytes, so
/// the bug is invisible to them. This proves the thread axis adds real
/// discriminating power rather than re-testing what single-threaded
/// seeds already cover.
#[test]
fn inter_thread_misclassification_is_caught_only_by_mt_seeds() {
    let bug = InjectedBug::InterThreadAsInput;
    let config = golden_config();
    for seed in 0..10 {
        assert!(
            !harness::diverges(&GenProgram::generate(seed), config, Some(bug)),
            "seed {seed}: InterThreadAsInput manifested on a single-threaded trace"
        );
    }
    let seed = (0..50)
        .find(|&s| harness::diverges(&GenProgram::generate_mt(s, 4), config, Some(bug)))
        .expect("InterThreadAsInput never manifested in 50 multithreaded seeds");
    let minimized = shrink(&GenProgram::generate_mt(seed, 4), config, Some(bug));
    assert!(
        harness::diverges(&minimized, config, Some(bug)),
        "shrink lost the inter-thread divergence"
    );
    assert!(
        minimized.inst_count() <= 30,
        "minimized inter-thread repro has {} instructions (> 30)",
        minimized.inst_count()
    );
    let bundle = harness::record_program(&minimized);
    assert!(
        harness::first_divergent_access(&bundle, config, Some(bug)).is_some(),
        "no first divergent access located for the inter-thread bug"
    );
}

/// Replays `bundle` through the production profiler and returns the full
/// profile (the phase tests need `Profile.phases` and `Profile.events`,
/// which the projected [`OracleReport`] deliberately omits).
fn production_profile(bundle: &TraceBundle, config: SigilConfig) -> sigil_core::Profile {
    let mut profiler = SigilProfiler::new(config);
    replay(&bundle.events, &mut profiler);
    profiler.into_profile(bundle.symbols.clone())
}

/// The naive phase oracle: folds a recorded event file into a bucketed
/// profile with nothing but the documented clock rules — an independent
/// reimplementation of what `SigilProfiler` computes incrementally
/// during replay (and what `PhaseFold` recovers when streaming).
fn naive_phase_fold(events: &sigil_core::EventFile, bucket_ops: u64) -> PhaseProfile {
    use sigil_core::EventRecord;
    let root = sigil_callgrind::ContextId::ROOT;
    let mut ctx_of = std::collections::HashMap::new();
    let mut builder = PhaseBuilder::new(bucket_ops);
    let mut clock = 0u64;
    for record in events.records() {
        match *record {
            EventRecord::Call {
                parent_call,
                call,
                ctx,
            } => {
                let from = ctx_of.get(&parent_call).copied().unwrap_or(root);
                ctx_of.insert(call, ctx);
                builder.record_call(from, ctx, clock);
                clock += 1;
            }
            EventRecord::Compute { ops, .. } => clock += ops,
            EventRecord::Transfer {
                from_call,
                to_call,
                bytes,
            } => {
                let from = ctx_of.get(&from_call).copied().unwrap_or(root);
                let to = ctx_of.get(&to_call).copied().unwrap_or(root);
                builder.record_transfer(from, to, clock, bytes);
            }
        }
    }
    builder.finish()
}

/// Seeded random programs: the production `PhaseProfile` — serial and
/// across the full shard axis — equals the naive bucketed fold of the
/// very same run's event file. Seed count is env-tunable via
/// `SIGIL_DIFF_PHASE_SEEDS`.
#[test]
fn phase_profiles_conform_to_naive_event_fold() {
    let default_seeds = if cfg!(debug_assertions) { 12 } else { 60 };
    let seeds = env_u64("SIGIL_DIFF_PHASE_SEEDS", default_seeds);
    for seed in 0..seeds {
        let bundle = record_program(&GenProgram::generate(seed));
        // Vary the bucket width per seed so boundary alignments differ.
        let width = 1 + seed % 97;
        let config = golden_config().with_events().with_phases(width);
        let serial = production_profile(&bundle, config);
        let events = serial.events.as_ref().expect("events enabled");
        let phases = serial.phases.as_ref().expect("phases enabled");
        let naive = naive_phase_fold(events, width);
        assert_eq!(
            phases, &naive,
            "seed {seed} width {width}: production phases diverged from the naive event fold"
        );
        for &shards in &SHARD_AXIS[1..] {
            let sharded = production_profile(&bundle, config.with_shards(shards));
            assert_eq!(
                sharded.phases.as_ref(),
                Some(&naive),
                "seed {seed} width {width} shards {shards}: sharded phases diverged"
            );
        }
    }
}

/// The tentpole three-way equivalence on every golden workload: the
/// phase profile is byte-identical (serde) across serial replay, 2/4/8-
/// way sharded replay, and the bounded-memory `PhaseFold` streaming off
/// the chunked binary event file.
#[test]
fn phase_profiles_identical_across_paths_on_golden_workloads() {
    use sigil_core::events_bin::encode_events_chunked;
    let width = 500;
    let config = golden_config().with_events().with_phases(width);
    for bench in Benchmark::ALL {
        let bundle = record_benchmark(bench, InputSize::SimSmall);
        let serial = production_profile(&bundle, config);
        let events = serial.events.as_ref().expect("events enabled");
        let phases = serial.phases.as_ref().expect("phases enabled");
        let serial_json = serde_json::to_string(phases).expect("phases serialize");
        assert!(
            !phases.pairs.is_empty(),
            "{bench}: golden workload produced no phase activity"
        );

        let bytes = encode_events_chunked(events, 256);
        let streamed = sigil_analysis::phase_profile_from_bin(bytes.as_slice(), width)
            .expect("clean event file");
        assert_eq!(
            serde_json::to_string(&streamed).expect("phases serialize"),
            serial_json,
            "{bench}: streaming PhaseFold diverged from serial replay"
        );

        for &shards in &SHARD_AXIS[1..] {
            let sharded = production_profile(&bundle, config.with_shards(shards));
            let sharded_json = serde_json::to_string(sharded.phases.as_ref().expect("phases on"))
                .expect("phases serialize");
            assert_eq!(
                sharded_json, serial_json,
                "{bench} shards={shards}: sharded phases diverged from serial"
            );
        }
    }
}

/// Every committed golden profile matches a fresh oracle replay of its
/// workload, and the production profiler matches the oracle on the same
/// trace. Regenerate intentionally changed profiles with
/// `sigil diff bless`.
#[test]
fn golden_corpus_conforms() {
    let config = golden_config();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for bench in Benchmark::ALL {
        let path = dir.join(format!("{bench}.json"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {}: {e} (run `sigil diff bless`)",
                path.display()
            )
        });
        let golden: OracleReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bad golden {}: {e}", path.display()));
        let bundle = record_benchmark(bench, InputSize::SimSmall);
        let oracle = harness::oracle_report(&bundle, config, None);
        let drift = diff_reports(&golden, &oracle);
        assert!(
            drift.is_empty(),
            "golden profile for `{bench}` drifted from the oracle ({} field(s)), first: {}\n\
             re-bless only if intentional: sigil diff bless",
            drift.len(),
            drift[0]
        );
        for shards in [1, 4] {
            let production = harness::production_report(&bundle, config.with_shards(shards));
            let conformance = diff_reports(&production, &oracle);
            assert!(
                conformance.is_empty(),
                "production (shards={shards}) diverged from oracle on `{bench}` \
                 ({} field(s)), first: {}",
                conformance.len(),
                conformance[0]
            );
        }
    }
}
