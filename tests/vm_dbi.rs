//! Integration test: the VM-executed (DBI) path produces profiles
//! equivalent to directly traced executions of the same logical program.

use sigil::core::{SigilConfig, SigilProfiler};
use sigil::trace::{Engine, OpClass};
use sigil::vm::{Interpreter, ProgramBuilder};
use sigil::workloads::vm_kernels;

#[test]
fn vm_producer_consumer_matches_direct_trace() {
    // Guest: fill writes n u64s; sum reads them back.
    let n = 64u64;
    let mut pb = ProgramBuilder::new();
    let fill = pb.declare("fill");
    let sum = pb.declare("sum");
    let mut main = pb.function("main", 3);
    main.alloc_imm(0, n * 8);
    main.call(fill, &[0], None);
    main.call(sum, &[0], Some(1));
    main.ret_reg(1);
    main.finish();
    let mut f = pb.define(fill, 5);
    f.loop_range(1, 2, 0, n, |f| {
        f.imm(3, 8);
        f.mul(3, 1, 3);
        f.add(3, 0, 3);
        f.store(1, 3, 0, 8);
    });
    f.ret();
    f.finish();
    let mut s = pb.define(sum, 6);
    s.imm(4, 0);
    s.loop_range(1, 2, 0, n, |f| {
        f.imm(3, 8);
        f.mul(3, 1, 3);
        f.add(3, 0, 3);
        f.load(3, 3, 0, 8);
        f.add(4, 4, 3);
    });
    s.ret_reg(4);
    s.finish();
    let program = pb.build().expect("verifies");

    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    let result = Interpreter::new(&program)
        .run(&mut engine)
        .expect("no trap");
    assert_eq!(result, Some((0..n).sum()));
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    // Classification sees through the interpreter: `sum` consumed
    // exactly the n*8 unique bytes `fill` produced.
    let sum_fn = profile.function_by_name("sum").expect("sum ran");
    assert_eq!(sum_fn.comm.input_unique_bytes, n * 8);
    assert_eq!(sum_fn.comm.input_nonunique_bytes, 0);
    let fill_fn = profile.function_by_name("fill").expect("fill ran");
    assert_eq!(fill_fn.comm.output_unique_bytes, n * 8);

    // The fill→sum data edge exists with the right weight.
    let edge_bytes: u64 = profile
        .edges
        .iter()
        .filter(|e| {
            let tree = &profile.callgrind.tree;
            let name = |ctx| {
                tree.node(ctx)
                    .func
                    .and_then(|f| profile.symbols().get_name(f))
                    .unwrap_or("")
                    .to_owned()
            };
            name(e.producer) == "fill" && name(e.consumer) == "sum"
        })
        .map(|e| e.unique_bytes)
        .sum();
    assert_eq!(edge_bytes, n * 8);
}

#[test]
fn recursive_guest_builds_folded_contexts() {
    let program = vm_kernels::fibonacci(12);
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    let result = Interpreter::new(&program)
        .run(&mut engine)
        .expect("no trap");
    assert_eq!(result, Some(144));
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);
    let fib = profile.function_by_name("fib").expect("fib ran");
    // fib(12) makes 465 calls in total.
    assert_eq!(fib.calls, 465);
    // Self-recursion folds: the calltree stays tiny despite 465 calls.
    assert!(profile.callgrind.tree.len() < 10);
}

#[test]
fn vm_kernels_profile_under_all_modes() {
    for program in [
        vm_kernels::vector_add(256),
        vm_kernels::dot_product(256),
        vm_kernels::fibonacci(10),
    ] {
        let config = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_events();
        let mut engine = Engine::new(SigilProfiler::new(config));
        Interpreter::new(&program)
            .run(&mut engine)
            .expect("kernel runs clean");
        let (profiler, symbols) = engine.finish_with_symbols();
        let profile = profiler.into_profile(symbols);
        assert!(profile.reuse.is_some());
        assert!(profile.lines.is_some());
        assert!(profile.events.is_some());
        assert!(profile.callgrind.total_ops > 0);
    }
}

#[test]
fn vm_and_direct_trace_agree_on_event_counts() {
    // The same logical work described two ways must present identical
    // memory traffic to the profiler.
    let n = 32u64;
    let program = {
        let mut pb = ProgramBuilder::new();
        let mut main = pb.function("main", 4);
        main.alloc_imm(0, n * 8);
        main.loop_range(1, 2, 0, n, |f| {
            f.imm(3, 8);
            f.mul(3, 1, 3);
            f.add(3, 0, 3);
            f.store(1, 3, 0, 8);
        });
        main.ret();
        main.finish();
        pb.build().expect("verifies")
    };
    let mut vm_engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    Interpreter::new(&program)
        .run(&mut vm_engine)
        .expect("no trap");
    let (p, s) = vm_engine.finish_with_symbols();
    let vm_profile = p.into_profile(s);

    let mut direct = Engine::new(SigilProfiler::new(SigilConfig::default()));
    direct.scoped_named("main", |e| {
        for i in 0..n {
            e.write(0x1000_0000 + i * 8, 8);
            e.op(OpClass::IntArith, 1);
        }
    });
    let (p, s) = direct.finish_with_symbols();
    let direct_profile = p.into_profile(s);

    let vm_main = vm_profile.function_by_name("main").expect("main");
    let direct_main = direct_profile.function_by_name("main").expect("main");
    assert_eq!(vm_main.comm.bytes_written, direct_main.comm.bytes_written);
}
