//! Integration tests for the data-release workflow: profiles serialize
//! to JSON and traces round-trip through the binary container — "as
//! these profiles are platform independent, researchers can use the data
//! without running Sigil" (paper §VI).

use sigil::core::{Profile, SigilConfig, SigilProfiler};
use sigil::trace::observer::RecordingObserver;
use sigil::trace::{io as trace_io, Engine};
use sigil::workloads::{Benchmark, InputSize};

fn profile_of(bench: Benchmark, config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

#[test]
fn profile_round_trips_through_json() {
    let config = SigilConfig::default()
        .with_reuse_mode()
        .with_line_mode(64)
        .with_events();
    let original = profile_of(Benchmark::Streamcluster, config);
    let json = serde_json::to_string(&original).expect("serializes");
    let loaded: Profile = serde_json::from_str(&json).expect("deserializes");

    assert_eq!(original.edges, loaded.edges);
    assert_eq!(original.contexts, loaded.contexts);
    assert_eq!(original.memory, loaded.memory);
    assert_eq!(original.lines, loaded.lines);
    assert_eq!(original.events, loaded.events);
    assert_eq!(original.callgrind.total_ops, loaded.callgrind.total_ops);
    assert_eq!(
        original.reuse_breakdown(),
        loaded.reuse_breakdown(),
        "reuse aggregates survive"
    );
    // Queries work identically on the loaded profile.
    let a = original.function_by_name("pkmedian").expect("pkmedian");
    let b = loaded.function_by_name("pkmedian").expect("pkmedian");
    assert_eq!(a, b);
}

#[test]
fn recorded_trace_replays_into_identical_profile() {
    // Record the raw event stream of a run…
    let mut engine = Engine::new(RecordingObserver::new());
    Benchmark::Canneal.run(InputSize::SimSmall, &mut engine);
    let (recorder, symbols) = engine.finish_with_symbols();
    let events = recorder.into_events();

    // …serialize + deserialize it…
    let mut buf = Vec::new();
    trace_io::write_trace(&mut buf, &symbols, &events).expect("write");
    let (symbols2, events2) = trace_io::read_trace(&mut buf.as_slice()).expect("read");

    // …and profile both the live and the loaded copies.
    let config = SigilConfig::default().with_reuse_mode();
    let mut live = SigilProfiler::new(config);
    trace_io::replay(&events, &mut live);
    let live_profile = live.into_profile(symbols);

    let mut loaded = SigilProfiler::new(config);
    trace_io::replay(&events2, &mut loaded);
    let loaded_profile = loaded.into_profile(symbols2);

    assert_eq!(live_profile.edges, loaded_profile.edges);
    assert_eq!(live_profile.contexts, loaded_profile.contexts);
    assert_eq!(
        live_profile.reuse_breakdown(),
        loaded_profile.reuse_breakdown()
    );
    assert_eq!(
        live_profile.callgrind.total_ops,
        loaded_profile.callgrind.total_ops
    );
}

#[test]
fn replayed_profile_matches_direct_profiling() {
    // Profiling a recorded trace must equal profiling the live run: the
    // profiler is a pure function of the event stream.
    let direct = profile_of(Benchmark::Freqmine, SigilConfig::default());

    let mut engine = Engine::new(RecordingObserver::new());
    Benchmark::Freqmine.run(InputSize::SimSmall, &mut engine);
    let (recorder, symbols) = engine.finish_with_symbols();
    let mut profiler = SigilProfiler::new(SigilConfig::default());
    trace_io::replay(recorder.events(), &mut profiler);
    let replayed = profiler.into_profile(symbols);

    assert_eq!(direct.edges, replayed.edges);
    assert_eq!(direct.contexts, replayed.contexts);
    assert_eq!(direct.callgrind.total_ops, replayed.callgrind.total_ops);
}
