//! Integration test: the parallel suite sweep must be a pure wall-clock
//! optimization — per-workload profiles byte-identical to a serial run,
//! with per-workload wall time recorded alongside.

use sigil::core::sweep::{run_parallel, sweep};
use sigil::core::{Profile, SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

const SWEEP: [Benchmark; 5] = [
    Benchmark::Vips,
    Benchmark::Dedup,
    Benchmark::Canneal,
    Benchmark::Streamcluster,
    Benchmark::Blackscholes,
];

fn produce(name: &str) -> Profile {
    let bench: Benchmark = name.parse().expect("known benchmark");
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

fn sweep_with_jobs(jobs: usize) -> Vec<(String, String)> {
    let names: Vec<(String, String)> = SWEEP
        .iter()
        .map(|b| (b.name().to_string(), InputSize::SimSmall.to_string()))
        .collect();
    sweep(jobs, &names, produce)
        .into_iter()
        .map(|entry| {
            assert!(
                entry.wall_ms > 0.0,
                "{}: per-workload wall time must be recorded",
                entry.name
            );
            let json = serde_json::to_string(&entry.profile).expect("profile serializes");
            (entry.name, json)
        })
        .collect()
}

#[test]
fn parallel_sweep_profiles_are_byte_identical_to_serial() {
    let serial = sweep_with_jobs(1);
    let parallel = sweep_with_jobs(4);
    assert_eq!(serial.len(), parallel.len());
    for ((serial_name, serial_json), (parallel_name, parallel_json)) in
        serial.iter().zip(parallel.iter())
    {
        assert_eq!(serial_name, parallel_name, "sweep order must be stable");
        assert_eq!(
            serial_json, parallel_json,
            "{serial_name}: parallel profile differs from serial"
        );
    }
}

#[test]
fn sweep_entries_expose_hot_path_counters() {
    let names = vec![(
        Benchmark::Vips.name().to_string(),
        InputSize::SimSmall.to_string(),
    )];
    let entries = sweep(2, &names, produce);
    assert_eq!(entries.len(), 1);
    let memory = &entries[0].profile.memory;
    assert!(memory.accesses > 0, "shadow accesses must be counted");
    assert!(
        memory.mru_hits > 0,
        "a streaming workload must hit the MRU cache"
    );
    assert_eq!(
        memory.accesses,
        memory.mru_hits + memory.table_probes,
        "hits and probes must partition accesses"
    );
    assert!(
        memory.mru_hit_rate() > 0.5,
        "hit rate {}",
        memory.mru_hit_rate()
    );
}

#[test]
fn run_parallel_preserves_order_under_uneven_load() {
    // Items deliberately sized so late items finish before early ones.
    let items: Vec<u64> = (0..12).rev().collect();
    let serial = run_parallel(1, items.clone(), |n| n * n);
    let parallel = run_parallel(3, items, |n| n * n);
    assert_eq!(serial, parallel);
}
