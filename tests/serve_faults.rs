//! Fault injection against a live `sigil-serve` daemon: misbehaving
//! clients — disconnects mid-chunk, half-written frames that stall, a
//! bit-flipped frame, a client that outruns its credit window — must
//! produce *located* errors, must never take a sibling session down with
//! them, and must leave the server serviceable for the next connection.
//!
//! The raw-socket helpers below speak the wire protocol by hand (via the
//! public [`Frame`] codec) precisely so they can stop mid-frame — the
//! real [`Client`] is incapable of these faults by construction.

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use sigil_oracle::harness::{record_benchmark, record_program, TraceBundle};
use sigil_oracle::serve_axis::{batch_outcome, diff_outcomes, online_outcome, serve_config};
use sigil_serve::{
    encode_trace_records, Client, Frame, FrameKind, Listen, ServeConfig, Server, SessionSpec,
    TraceRecord, WireError,
};
use sigil_trace::{OpClass, RuntimeEvent};
use sigil_vm::GenProgram;
use sigil_workloads::{Benchmark, InputSize};

fn hello_frame(spec: &SessionSpec) -> Frame {
    Frame {
        kind: FrameKind::Hello,
        aux: 0,
        payload: serde_json::to_string(spec)
            .expect("spec serializes")
            .into_bytes(),
    }
}

/// Reads frames off a raw connection until an ERROR arrives, absorbing
/// WELCOME and CREDIT frames on the way; panics on anything else.
fn read_error(stream: &TcpStream) -> WireError {
    let mut reader = stream;
    let mut offset = 0u64;
    loop {
        let frame = match Frame::read_from(&mut reader, &mut offset) {
            Ok(frame) => frame,
            Err(e) => panic!("connection died before an ERROR frame arrived: {e}"),
        };
        match frame.kind {
            FrameKind::Welcome | FrameKind::Credit => continue,
            FrameKind::Error => {
                let text = std::str::from_utf8(&frame.payload).expect("error payload is utf8");
                return serde_json::from_str(text).expect("error payload is WireError JSON");
            }
            other => panic!("unexpected frame {other:?} while waiting for ERROR"),
        }
    }
}

/// Runs one well-behaved session and asserts it is byte-identical to the
/// batch pipeline — the serviceability probe used after every fault.
fn assert_session_conforms(address: &str, name: &str, bundle: &TraceBundle) {
    let config = serve_config();
    let batch = batch_outcome(bundle, config);
    let online = online_outcome(address, name, bundle, config, 64)
        .unwrap_or_else(|e| panic!("{name}: post-fault session failed: {e}"));
    let divergences = diff_outcomes(&batch, &online);
    assert!(
        divergences.is_empty(),
        "{name}: post-fault session diverged: {divergences:#?}"
    );
}

/// A bit-flipped chunk frame is rejected with a checksum error located
/// at the frame's exact connection offset, and the server keeps serving.
#[test]
fn bit_flipped_frame_gets_located_error() {
    let server = Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default())
        .expect("bind fault server");
    let address = server.address();

    let mut stream = TcpStream::connect(&address).expect("raw connect");
    let hello = hello_frame(&SessionSpec::trace("flipper", serve_config())).encode();
    stream.write_all(&hello).expect("send hello");

    let mut chunk = Frame {
        kind: FrameKind::Chunk,
        aux: 1,
        payload: vec![0x55; 40],
    }
    .encode();
    let last = chunk.len() - 1;
    chunk[last] ^= 0x10; // corrupt the payload after the checksum was computed
    stream.write_all(&chunk).expect("send corrupted chunk");

    let error = read_error(&stream);
    assert_eq!(
        error.offset,
        hello.len() as u64,
        "error not located at the corrupted frame's start"
    );
    assert!(
        error.message.contains("checksum"),
        "unexpected error message: {}",
        error.message
    );
    drop(stream);

    assert_session_conforms(
        &address,
        "after-flip",
        &record_program(&GenProgram::generate(3)),
    );
    drop(server);
}

/// A client that dies mid-chunk fails only its own session: a sibling
/// streaming concurrently finishes byte-identical to batch, and the next
/// connection is served normally.
#[test]
fn disconnect_mid_chunk_leaves_siblings_unaffected() {
    let server = Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default())
        .expect("bind fault server");
    let address = server.address();

    let sibling_bundle = record_benchmark(Benchmark::Blackscholes, InputSize::SimSmall);
    let sibling = {
        let address = address.clone();
        let bundle = sibling_bundle.clone();
        thread::spawn(move || {
            let config = serve_config();
            let online = online_outcome(&address, "sibling", &bundle, config, 16)
                .expect("sibling session failed");
            (batch_outcome(&bundle, config), online)
        })
    };

    // While the sibling streams, a second connection sends HELLO plus
    // half of a chunk frame and vanishes.
    {
        let mut stream = TcpStream::connect(&address).expect("raw connect");
        stream
            .write_all(&hello_frame(&SessionSpec::trace("quitter", serve_config())).encode())
            .expect("send hello");
        let chunk = Frame {
            kind: FrameKind::Chunk,
            aux: 9,
            payload: vec![0xAB; 64],
        }
        .encode();
        stream
            .write_all(&chunk[..chunk.len() / 2])
            .expect("send half a chunk");
        // Dropped here: the server sees EOF mid-frame.
    }

    let (batch, online) = sibling.join().expect("sibling thread panicked");
    let divergences = diff_outcomes(&batch, &online);
    assert!(
        divergences.is_empty(),
        "sibling diverged after a neighbour's mid-chunk disconnect: {divergences:#?}"
    );

    assert_session_conforms(
        &address,
        "after-quit",
        &record_program(&GenProgram::generate(4)),
    );
    drop(server);
}

/// A connection that stalls halfway through a frame is timed out with a
/// located idle-timeout error rather than pinning a reader thread
/// forever, and the server keeps serving.
#[test]
fn half_written_frame_times_out_with_located_error() {
    let server = Server::bind(
        Listen::parse("127.0.0.1:0"),
        ServeConfig {
            idle_timeout: Duration::from_millis(250),
            ..ServeConfig::default()
        },
    )
    .expect("bind fault server");
    let address = server.address();

    let mut stream = TcpStream::connect(&address).expect("raw connect");
    stream
        .write_all(&hello_frame(&SessionSpec::trace("staller", serve_config())).encode())
        .expect("send hello");
    let chunk = Frame {
        kind: FrameKind::Chunk,
        aux: 2,
        payload: vec![1, 2, 3, 4],
    }
    .encode();
    stream
        .write_all(&chunk[..5])
        .expect("send a partial header");
    // ...and never send the rest.

    let error = read_error(&stream);
    assert!(
        error.message.contains("idle timeout"),
        "unexpected stall error: {}",
        error.message
    );
    drop(stream);

    assert_session_conforms(
        &address,
        "after-stall",
        &record_program(&GenProgram::generate(5)),
    );
    drop(server);
}

/// A client that ignores the credit window is cut off with a located
/// credit-violation error — the bounded ingest queue never grows to
/// absorb a flood.
#[test]
fn credit_violation_is_rejected() {
    let server = Server::bind(
        Listen::parse("127.0.0.1:0"),
        ServeConfig {
            credits: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind fault server");
    let address = server.address();

    let mut stream = TcpStream::connect(&address).expect("raw connect");
    stream
        .write_all(&hello_frame(&SessionSpec::trace("flooder", serve_config())).encode())
        .expect("send hello");
    // Fire far more chunks than the window without ever reading CREDIT.
    // Each chunk carries thousands of valid events so the worker lags
    // behind the reader and the outstanding count genuinely grows.
    let events: Vec<TraceRecord> = (0..5_000)
        .map(|i| {
            TraceRecord::Event(RuntimeEvent::Op {
                class: OpClass::IntArith,
                count: 1 + (i % 7),
            })
        })
        .collect();
    let chunk = Frame {
        kind: FrameKind::Chunk,
        aux: events.len() as u32,
        payload: encode_trace_records(&events),
    }
    .encode();
    for _ in 0..64 {
        if stream.write_all(&chunk).is_err() {
            break; // server already cut us off mid-flood
        }
    }
    let error = read_error(&stream);
    assert!(
        error.message.contains("credit violation"),
        "unexpected flood error: {}",
        error.message
    );
    drop(stream);

    assert_session_conforms(
        &address,
        "after-flood",
        &record_program(&GenProgram::generate(6)),
    );
    drop(server);
}

/// With a tiny credit window the real client *waits* instead of
/// violating: backpressure engages (observable as credit waits) and the
/// finished result is still byte-identical to batch.
#[test]
fn backpressure_preserves_identity_under_a_tiny_window() {
    let server = Server::bind(
        Listen::parse("127.0.0.1:0"),
        ServeConfig {
            credits: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind fault server");
    let address = server.address();

    let bundle = record_benchmark(Benchmark::Blackscholes, InputSize::SimSmall);
    let config = serve_config();
    let batch = batch_outcome(&bundle, config);

    let mut client = Client::connect(&address, &SessionSpec::trace("throttled", config))
        .expect("connect throttled client");
    client.set_chunk_records(8); // many small chunks against a window of 1
    client
        .stream_trace(&bundle.symbols, &bundle.events)
        .expect("stream under backpressure");
    let waits = client.credit_waits();
    let online = client.finish().expect("finish under backpressure");

    assert!(waits > 0, "credit window of 1 never made the client wait");
    let divergences = diff_outcomes(&batch, &online);
    assert!(
        divergences.is_empty(),
        "backpressure changed the result: {divergences:#?}"
    );
    drop(server);
}
