//! Adversarial concurrency stress for sharded replay.
//!
//! Every access in this stream is chosen to be awkward for the sharding
//! layer: runs straddle a 4 KiB chunk boundary (consecutive chunk keys
//! always land on *different* shards, so every straddle is a cross-shard
//! split), the shadow limit is tiny enough that a straddling access can
//! evict a chunk mid-access, threads interleave with frames left open
//! across switches, and the shard count (8) deliberately exceeds the
//! container's core count — the workers make progress by preemption, not
//! parallel cores, which flushes out any ordering assumption hidden in
//! the message protocol.
//!
//! The bar is the strongest one the design claims: the sharded profile
//! serializes **byte-identically** to the serial one, for every policy ×
//! limit × shard-count combination, with reuse, line and event
//! collection all enabled.

use sigil_core::{Profile, SigilConfig, SigilProfiler};
use sigil_mem::EvictionPolicy;
use sigil_trace::{Engine, OpClass, ThreadId};

/// Chunk boundaries the stream straddles (chunk key = addr >> 12).
const BOUNDARIES: u64 = 24;

/// The adversarial stream. Deterministic, so serial and sharded runs see
/// the identical event sequence.
fn stress_scenario(e: &mut Engine<SigilProfiler>) {
    e.scoped_named("main", |e| {
        // Producer writes a straddling run across *every* boundary: each
        // 16-byte write covers the last 8 bytes of chunk k-1 and the
        // first 8 of chunk k, so at `--shards N` both halves always go
        // to different workers.
        e.scoped_named("producer", |e| {
            e.op(OpClass::IntArith, 7);
            for k in 1..=BOUNDARIES {
                e.write(k * 4096 - 8, 16);
            }
        });
        // Consumer reads them back in reverse order (maximal distance
        // from the producer's insertion order, so FIFO and LRU disagree
        // about victims), then re-reads for non-unique coverage.
        e.scoped_named("consumer", |e| {
            for k in (1..=BOUNDARIES).rev() {
                e.read(k * 4096 - 8, 16);
                e.read(k * 4096 - 8, 16);
            }
            e.op(OpClass::FloatArith, 3);
        });
        // Thrash: a stride walk over far-apart chunks keeps the resident
        // set churning at limit 1–2, so straddling accesses routinely
        // evict the chunk their own first half just touched.
        e.scoped_named("thrash", |e| {
            for i in 0..64u64 {
                let k = 1 + (i * 7) % BOUNDARIES;
                e.write(k * 4096 - 4, 8);
                e.read(k * 4096 - 4, 8);
            }
        });
        // Cross-thread consumption with frames open across switches:
        // thread 2's frame stays on its stack while threads 3 and main
        // run, exercising the resume/drain sequencing at finish.
        let t2_consume = e.symbols_mut().intern("t2-consume");
        e.switch_thread(ThreadId::from_raw(2));
        e.call(t2_consume);
        for k in 1..=BOUNDARIES / 2 {
            e.read(k * 4096 - 8, 16);
        }
        e.switch_thread(ThreadId::from_raw(3));
        e.scoped_named("t3-produce", |e| {
            e.write(BOUNDARIES * 4096 + 4096 - 8, 16);
            e.op(OpClass::IntMulDiv, 2);
        });
        e.switch_thread(ThreadId::from_raw(2));
        e.ret();
        e.switch_thread(ThreadId::MAIN);
        // Overwrite + reconsume: flushes producer output segments and
        // re-attributes the bytes to the new writer.
        e.scoped_named("producer", |e| e.write(4096 - 8, 16));
        e.scoped_named("consumer", |e| e.read(4096 - 8, 16));
        // Never-written root input, far away from everything else.
        e.read(0x40_0000, 24);
    });
}

fn run(config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    stress_scenario(&mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

#[test]
fn sharded_replay_survives_adversarial_stress() {
    for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
        for limit in [1, 2] {
            let base = SigilConfig::default()
                .with_reuse_mode()
                .with_line_mode(64)
                .with_events()
                .with_shadow_limit(limit)
                .with_eviction(policy);
            let serial = serde_json::to_string(&run(base)).expect("serializes");
            for shards in [2, 8] {
                let sharded =
                    serde_json::to_string(&run(base.with_shards(shards))).expect("serializes");
                assert_eq!(
                    serial, sharded,
                    "policy={policy:?} limit={limit} shards={shards}"
                );
            }
        }
    }
}

/// Same stream, unbounded shadow memory: pins the non-eviction path and
/// checks the profile is non-trivial (the stress stream really does
/// produce communication, transfers, and reuse rows).
#[test]
fn stress_stream_is_nontrivial_and_shards_agree_unbounded() {
    let base = SigilConfig::default()
        .with_reuse_mode()
        .with_line_mode(64)
        .with_events();
    let serial = run(base);
    let sharded = run(base.with_shards(8));
    assert_eq!(
        serde_json::to_string(&serial).expect("serializes"),
        serde_json::to_string(&sharded).expect("serializes")
    );
    assert!(!serial.edges.is_empty(), "no producer→consumer edges");
    assert!(
        serial.reuse.as_ref().is_some_and(|rows| !rows.is_empty()),
        "no reuse rows"
    );
    let events = serial.events.as_ref().expect("event file");
    assert!(events.total_transfer_bytes() > 0, "no transfer records");
    assert!(serial.memory.accesses > 0 && serial.memory.runs > 0);
}
