//! Integration tests pinning each synthetic workload's communication
//! skeleton to the paper finding it reproduces. These are the "shape
//! contracts" behind the figure harness: if one breaks, some figure no
//! longer tells the paper's story.

use sigil::core::{Profile, SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn profile(bench: Benchmark, config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

#[test]
fn blackscholes_math_calls_are_compute_dense() {
    // Table II: the ieee754 math calls rank as near-breakeven-1
    // candidates, well below the utility tail.
    use sigil::analysis::partition::{rank_functions, PartitionConfig};
    let p = profile(Benchmark::Blackscholes, SigilConfig::default());
    let ranked = rank_functions(&p, &PartitionConfig::default());
    for name in [
        "_ieee754_exp",
        "_ieee754_log",
        "_ieee754_expf",
        "_ieee754_logf",
    ] {
        let row = ranked
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!(
            row.breakeven < 1.3,
            "{name}: breakeven {} should be near 1",
            row.breakeven
        );
        let worst = ranked.last().expect("non-empty ranking");
        assert!(row.breakeven < worst.breakeven);
    }
}

#[test]
fn blackscholes_utility_functions_are_communication_heavy() {
    // Table III residents: little compute relative to bytes moved.
    let p = profile(Benchmark::Blackscholes, SigilConfig::default());
    for name in ["free", "operator new", "dl_addr"] {
        let f = p
            .function_by_name(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!(
            f.costs.ops_total() < 4 * (f.comm.bytes_read + f.comm.bytes_written),
            "{name} should be communication-bound"
        );
    }
}

#[test]
fn dedup_sha1_reads_every_chunk_byte_uniquely() {
    let p = profile(Benchmark::Dedup, SigilConfig::default());
    let sha = p.function_by_name("sha1_block_data_order").expect("sha1");
    // One unique read per streamed byte per call: dominated by input.
    assert!(sha.comm.input_unique_bytes > 100_000);
    assert!(sha.comm.input_nonunique_bytes < sha.comm.input_unique_bytes / 10);
    // Integer-dominated kernel.
    assert!(sha.costs.ops[0] > sha.costs.ops[2], "int > float ops");
}

#[test]
fn bodytrack_fleximage_set_is_a_mover() {
    // The paper flags FlexImage::Set as memcpy-dominated — a candidate
    // for *communication* acceleration.
    let p = profile(Benchmark::Bodytrack, SigilConfig::default());
    let set = p
        .function_by_name("FlexImage::Set")
        .expect("FlexImage::Set");
    assert!(
        set.comm.bytes_read + set.comm.bytes_written > 4 * set.costs.ops_total(),
        "bytes {}+{} vs ops {}",
        set.comm.bytes_read,
        set.comm.bytes_written,
        set.costs.ops_total()
    );
    // It copies: bytes in ≈ bytes out.
    assert_eq!(set.comm.bytes_read, set.comm.bytes_written);
}

#[test]
fn canneal_swap_locations_swaps_vectors() {
    let p = profile(Benchmark::Canneal, SigilConfig::default());
    let swap = p.function_by_name("netlist::swap_locations").expect("swap");
    assert_eq!(
        swap.comm.bytes_read, swap.comm.bytes_written,
        "a swap moves symmetrically"
    );
    assert!(swap.calls > 100, "annealing performs many swaps");
}

#[test]
fn streamcluster_rand_chain_nests_correctly() {
    let p = profile(Benchmark::Streamcluster, SigilConfig::default());
    let tree = &p.callgrind.tree;
    let symbols = p.symbols();
    // Find drand48_iterate's context and walk its ancestry: the §IV-C
    // critical-path chain must be its call path.
    let (ctx, _) = tree
        .iter()
        .find(|(_, n)| {
            n.func
                .is_some_and(|f| symbols.get_name(f) == Some("drand48_iterate"))
        })
        .expect("drand48_iterate context");
    let path = tree.path_label(ctx, symbols);
    assert_eq!(
        path,
        "main->streamCluster->localSearch->pkmedian->lrand48->nrand48_r->drand48_iterate"
    );
}

#[test]
fn fluidanimate_forces_read_previous_frame_positions() {
    let p = profile(Benchmark::Fluidanimate, SigilConfig::default());
    let forces = p.function_by_name("ComputeForces").expect("ComputeForces");
    let advance = p
        .function_by_name("AdvanceParticles")
        .expect("AdvanceParticles");
    // AdvanceParticles produces the positions ComputeForces consumes.
    assert!(advance.comm.output_unique_bytes > 0);
    assert!(forces.comm.input_unique_bytes > 0);
    // And ComputeForces dominates compute.
    let total_ops = p.callgrind.total_costs().ops_total();
    assert!(forces.costs.ops_total() * 10 > total_ops * 8, "≥80% of ops");
}

#[test]
fn vips_conv_gen_has_two_contexts() {
    let p = profile(Benchmark::Vips, SigilConfig::default());
    let tree = &p.callgrind.tree;
    let symbols = p.symbols();
    let conv_contexts = tree
        .iter()
        .filter(|(_, n)| {
            n.func
                .is_some_and(|f| symbols.get_name(f) == Some("conv_gen"))
        })
        .count();
    assert_eq!(
        conv_contexts, 2,
        "the paper's conv_gen(1)/conv_gen(2) split"
    );
}

#[test]
fn raytrace_scene_is_read_not_written() {
    let p = profile(Benchmark::Raytrace, SigilConfig::default());
    let traverse = p.function_by_name("traverse_bvh").expect("traverse_bvh");
    assert_eq!(traverse.comm.bytes_written, 0, "traversal is read-only");
    let intersect = p.function_by_name("intersect_triangle").expect("intersect");
    assert!(intersect.comm.input_nonunique_bytes > 0, "vertex re-reads");
}

#[test]
fn x264_reconstruction_feeds_next_frame() {
    let p = profile(Benchmark::X264, SigilConfig::default());
    let recon = p.function_by_name("x264_frame_recon").expect("recon");
    let search = p.function_by_name("x264_me_search_ref").expect("me_search");
    // The reconstructed reference is consumed by the next frame's search.
    assert!(recon.comm.output_unique_bytes > 0);
    assert!(search.comm.input_unique_bytes > 0);
}

#[test]
fn libquantum_blocks_are_self_contained() {
    let p = profile(Benchmark::Libquantum, SigilConfig::default());
    // Gate kernels read and write the same amplitudes: local traffic
    // should dominate within a gate name across consecutive gates of the
    // same kind... at minimum, the state is re-read across gate kinds.
    let toffoli = p.function_by_name("quantum_toffoli").expect("toffoli");
    assert!(toffoli.comm.bytes_read >= toffoli.comm.bytes_written);
    assert!(
        toffoli.comm.input_unique_bytes > 0,
        "consumes prior gate output"
    );
}

#[test]
fn syscalls_appear_in_every_io_benchmark() {
    for bench in [Benchmark::Dedup, Benchmark::Vips, Benchmark::X264] {
        let p = profile(bench, SigilConfig::default());
        assert!(
            p.function_by_name("sys_read").is_some(),
            "{bench} must model input syscalls"
        );
    }
}

#[test]
fn simlarge_scales_every_benchmark() {
    use sigil::trace::observer::CountingObserver;
    for bench in [
        Benchmark::Blackscholes,
        Benchmark::Canneal,
        Benchmark::Libquantum,
    ] {
        let count = |size: InputSize| {
            let mut e = Engine::new(CountingObserver::new());
            bench.run(size, &mut e);
            e.finish().into_counts().ops
        };
        let small = count(InputSize::SimSmall);
        let large = count(InputSize::SimLarge);
        assert!(large > 10 * small, "{bench}: {small} -> {large}");
    }
}
