//! Strongly-typed identifiers used throughout the tracing stack.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a static function (a node in the symbol table).
///
/// A `FunctionId` names the *code* of a function; it does not distinguish
/// calling contexts or individual dynamic calls. Contexts are handled by
/// `sigil-callgrind`, dynamic calls by [`CallNumber`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FunctionId(u32);

impl FunctionId {
    /// Creates a function id from a raw index.
    pub const fn from_raw(raw: u32) -> Self {
        FunctionId(raw)
    }

    /// Returns the raw index backing this id.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, suitable for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Monotonic number identifying one dynamic call of one function.
///
/// The Sigil paper's shadow object stores the "last reader call" so that a
/// re-read *within the same call* counts as non-unique while a read by a
/// fresh call of the same function counts as unique again. The call number
/// is global — every `Call` event increments it — so comparing call numbers
/// is sufficient to distinguish dynamic calls of any function.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CallNumber(u64);

impl CallNumber {
    /// Call number reserved for "no call has happened" (the synthetic root).
    pub const ROOT: CallNumber = CallNumber(0);

    /// Creates a call number from a raw counter value.
    pub const fn from_raw(raw: u64) -> Self {
        CallNumber(raw)
    }

    /// Returns the raw counter value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Returns the next call number.
    #[must_use]
    pub const fn next(self) -> Self {
        CallNumber(self.0 + 1)
    }
}

impl fmt::Display for CallNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call#{}", self.0)
    }
}

/// Identifier of a guest thread.
///
/// The paper names threads among the "self contained fragment\[s\] of
/// code" that can act as producing and consuming entities (§II-A).
/// Traces are a single interleaved event stream; a
/// [`crate::RuntimeEvent::ThreadSwitch`] redirects subsequent events to
/// another thread's call stack.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ThreadId(u32);

impl ThreadId {
    /// The initial (main) thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Creates a thread id from a raw index.
    pub const fn from_raw(raw: u32) -> Self {
        ThreadId(raw)
    }

    /// Returns the raw index.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t#{}", self.0)
    }
}

/// A platform-independent point in time, measured in retired guest
/// operations since the start of the traced execution.
///
/// The paper uses "the number of retired instructions as a proxy for
/// execution time" so that reuse lifetimes remain architecture-agnostic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (start of execution).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from a raw op count.
    pub const fn from_raw(raw: u64) -> Self {
        Timestamp(raw)
    }

    /// Returns the raw op count.
    pub const fn as_raw(self) -> u64 {
        self.0
    }

    /// Saturating distance between two timestamps, in retired operations.
    #[must_use]
    pub const fn delta(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Advances the timestamp by `ops` retired operations.
    #[must_use]
    pub const fn advance(self, ops: u64) -> Self {
        Timestamp(self.0 + ops)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_id_round_trips() {
        let id = FunctionId::from_raw(42);
        assert_eq!(id.as_raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "fn#42");
    }

    #[test]
    fn call_number_next_is_monotonic() {
        let c = CallNumber::ROOT;
        assert!(c.next() > c);
        assert_eq!(c.next().as_raw(), 1);
        assert_eq!(c.next().to_string(), "call#1");
    }

    #[test]
    fn timestamp_delta_saturates() {
        let a = Timestamp::from_raw(10);
        let b = Timestamp::from_raw(4);
        assert_eq!(a.delta(b), 6);
        assert_eq!(b.delta(a), 0);
        assert_eq!(a.advance(5).as_raw(), 15);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(FunctionId::from_raw(1) < FunctionId::from_raw(2));
        assert!(Timestamp::from_raw(1) < Timestamp::from_raw(2));
    }
}
