//! Platform-independent time base.

use crate::event::RuntimeEvent;
use crate::ids::Timestamp;

/// A clock that advances with retired guest operations.
///
/// The Sigil paper deliberately avoids wall-clock or cycle time: "In order
/// to remain architecture independent, we use the number of retired
/// instructions as a proxy for execution time." Every component that needs
/// timestamps (reuse lifetimes, critical-path costs) feeds its observed
/// events through an `OpClock`.
///
/// # Example
///
/// ```
/// use sigil_trace::{OpClock, RuntimeEvent, OpClass};
///
/// let mut clock = OpClock::new();
/// clock.tick(RuntimeEvent::Op { class: OpClass::IntArith, count: 10 });
/// assert_eq!(clock.now().as_raw(), 10);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpClock {
    now: Timestamp,
}

impl OpClock {
    /// Creates a clock at time zero.
    pub const fn new() -> Self {
        OpClock {
            now: Timestamp::ZERO,
        }
    }

    /// Current platform-independent time.
    pub const fn now(self) -> Timestamp {
        self.now
    }

    /// Advances the clock by the retired-op weight of `event`, returning
    /// the timestamp *at which the event occurred* (i.e. before advancing).
    pub fn tick(&mut self, event: RuntimeEvent) -> Timestamp {
        let at = self.now;
        self.now = self.now.advance(event.retired_ops());
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemAccess, OpClass};

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(OpClock::new().now(), Timestamp::ZERO);
    }

    #[test]
    fn tick_returns_pre_advance_time() {
        let mut clock = OpClock::new();
        let ev = RuntimeEvent::Op {
            class: OpClass::IntArith,
            count: 5,
        };
        assert_eq!(clock.tick(ev), Timestamp::ZERO);
        assert_eq!(clock.now().as_raw(), 5);
        let ev2 = RuntimeEvent::Read {
            access: MemAccess::new(0, 4),
        };
        assert_eq!(clock.tick(ev2).as_raw(), 5);
        assert_eq!(clock.now().as_raw(), 6);
    }
}
