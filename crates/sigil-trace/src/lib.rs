//! Execution-event model and tracing engine for `sigil-rs`.
//!
//! This crate is the stand-in for the *primitive layer* that Valgrind
//! exposes to tools such as Callgrind and Sigil: a stream of dynamic
//! execution events — function calls and returns, memory reads and writes,
//! retired compute operations, and conditional branches — together with a
//! symbol table naming the functions involved.
//!
//! The original Sigil (IISWC 2013) consumed this stream from Valgrind's
//! dynamic binary instrumentation. Here, two event producers exist:
//!
//! * [`Engine`] — a direct tracing API against which synthetic workloads
//!   (see the `sigil-workloads` crate) are written, and
//! * the `sigil-vm` crate — a guest bytecode interpreter that emits the
//!   same events while executing an unmodified guest program, mirroring the
//!   DBI use-case.
//!
//! Consumers implement [`ExecutionObserver`]; the Callgrind-like profiler
//! (`sigil-callgrind`) and the Sigil profiler itself (`sigil-core`) are both
//! observers and can be stacked with [`observer::Fanout`].
//!
//! # Example
//!
//! ```
//! use sigil_trace::{Engine, observer::CountingObserver, OpClass};
//!
//! let mut engine = Engine::new(CountingObserver::default());
//! let f = engine.symbols_mut().intern("compute");
//! engine.call(f);
//! engine.write(0x1000, 8);
//! engine.op(OpClass::FloatArith, 4);
//! engine.read(0x1000, 8);
//! engine.ret();
//! let counts = engine.finish().into_counts();
//! assert_eq!(counts.reads, 1);
//! assert_eq!(counts.writes, 1);
//! assert_eq!(counts.ops, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod error;
pub mod event;
pub mod ids;
pub mod io;
pub mod observer;
pub mod symbols;

pub use clock::OpClock;
pub use engine::Engine;
pub use error::TraceError;
pub use event::{Addr, MemAccess, OpClass, RuntimeEvent};
pub use ids::{CallNumber, FunctionId, ThreadId, Timestamp};
pub use observer::ExecutionObserver;
pub use symbols::SymbolTable;
