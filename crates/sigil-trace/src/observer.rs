//! The observer interface consumed by profilers.

use crate::event::RuntimeEvent;

/// A consumer of the dynamic execution-event stream.
///
/// Both profilers in this workspace — the Callgrind-like cost profiler and
/// Sigil itself — implement this trait, mirroring how Valgrind tools plug
/// into the instrumented execution. Observers are driven strictly in
/// program order and must not assume anything about the platform: events
/// carry only platform-independent information.
pub trait ExecutionObserver {
    /// Handles one dynamic event.
    fn on_event(&mut self, event: RuntimeEvent);

    /// Called once when the traced execution ends.
    ///
    /// The default implementation does nothing.
    fn on_finish(&mut self) {}
}

/// An observer that discards every event.
///
/// Running a workload against `NullObserver` is this reproduction's
/// equivalent of a *native* (uninstrumented) run: the workload performs all
/// of its event-generating work but no profiling happens. Figure 4's
/// slowdown baselines are measured this way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl ExecutionObserver for NullObserver {
    #[inline(always)]
    fn on_event(&mut self, _event: RuntimeEvent) {}
}

/// Aggregate event counts, useful for smoke tests and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Number of `Call` events observed.
    pub calls: u64,
    /// Number of `Return` events observed.
    pub returns: u64,
    /// Number of `Read` events observed.
    pub reads: u64,
    /// Total bytes across all reads.
    pub bytes_read: u64,
    /// Number of `Write` events observed.
    pub writes: u64,
    /// Total bytes across all writes.
    pub bytes_written: u64,
    /// Total retired compute operations (sum of `Op` counts).
    pub ops: u64,
    /// Number of `Branch` events observed.
    pub branches: u64,
    /// Number of `SyscallEnter` events observed.
    pub syscalls: u64,
    /// Number of `ThreadSwitch` events observed.
    pub thread_switches: u64,
}

/// An observer that tallies event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingObserver {
    counts: EventCounts,
}

impl CountingObserver {
    /// Creates a counting observer with all counts zero.
    pub fn new() -> Self {
        CountingObserver::default()
    }

    /// Returns the counts accumulated so far.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// Consumes the observer, returning the final counts.
    pub fn into_counts(self) -> EventCounts {
        self.counts
    }
}

impl ExecutionObserver for CountingObserver {
    fn on_event(&mut self, event: RuntimeEvent) {
        match event {
            RuntimeEvent::Call { .. } => self.counts.calls += 1,
            RuntimeEvent::Return => self.counts.returns += 1,
            RuntimeEvent::Read { access } => {
                self.counts.reads += 1;
                self.counts.bytes_read += u64::from(access.size);
            }
            RuntimeEvent::Write { access } => {
                self.counts.writes += 1;
                self.counts.bytes_written += u64::from(access.size);
            }
            RuntimeEvent::Op { count, .. } => self.counts.ops += u64::from(count),
            RuntimeEvent::Branch { .. } => self.counts.branches += 1,
            RuntimeEvent::SyscallEnter { .. } => self.counts.syscalls += 1,
            RuntimeEvent::SyscallExit => {}
            RuntimeEvent::ThreadSwitch { .. } => self.counts.thread_switches += 1,
        }
    }
}

/// Fans one event stream out to two observers.
///
/// Nests for more than two: `Fanout::new(a, Fanout::new(b, c))`.
///
/// # Example
///
/// ```
/// use sigil_trace::observer::{CountingObserver, Fanout, NullObserver};
/// use sigil_trace::{ExecutionObserver, RuntimeEvent};
///
/// let mut both = Fanout::new(CountingObserver::new(), NullObserver);
/// both.on_event(RuntimeEvent::Return);
/// assert_eq!(both.first().counts().returns, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fanout<A, B> {
    a: A,
    b: B,
}

impl<A: ExecutionObserver, B: ExecutionObserver> Fanout<A, B> {
    /// Creates a fanout over observers `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        Fanout { a, b }
    }

    /// Borrows the first observer.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// Borrows the second observer.
    pub fn second(&self) -> &B {
        &self.b
    }

    /// Splits the fanout back into its parts.
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: ExecutionObserver, B: ExecutionObserver> ExecutionObserver for Fanout<A, B> {
    fn on_event(&mut self, event: RuntimeEvent) {
        self.a.on_event(event);
        self.b.on_event(event);
    }

    fn on_finish(&mut self) {
        self.a.on_finish();
        self.b.on_finish();
    }
}

/// An observer that records every event into a buffer.
///
/// Useful in tests and for replaying a trace through another observer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingObserver {
    events: Vec<RuntimeEvent>,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// The events recorded so far, in program order.
    pub fn events(&self) -> &[RuntimeEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the recorded events.
    pub fn into_events(self) -> Vec<RuntimeEvent> {
        self.events
    }

    /// Replays the recorded trace into `observer`, including the finish
    /// notification.
    pub fn replay<O: ExecutionObserver>(&self, observer: &mut O) {
        for &ev in &self.events {
            observer.on_event(ev);
        }
        observer.on_finish();
    }
}

impl ExecutionObserver for RecordingObserver {
    fn on_event(&mut self, event: RuntimeEvent) {
        self.events.push(event);
    }
}

impl<O: ExecutionObserver + ?Sized> ExecutionObserver for &mut O {
    fn on_event(&mut self, event: RuntimeEvent) {
        (**self).on_event(event);
    }

    fn on_finish(&mut self) {
        (**self).on_finish();
    }
}

impl<O: ExecutionObserver + ?Sized> ExecutionObserver for Box<O> {
    fn on_event(&mut self, event: RuntimeEvent) {
        (**self).on_event(event);
    }

    fn on_finish(&mut self) {
        (**self).on_finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemAccess, OpClass};
    use crate::ids::FunctionId;

    fn sample_events() -> Vec<RuntimeEvent> {
        vec![
            RuntimeEvent::Call {
                callee: FunctionId::from_raw(0),
            },
            RuntimeEvent::Write {
                access: MemAccess::new(0x10, 8),
            },
            RuntimeEvent::Op {
                class: OpClass::IntArith,
                count: 3,
            },
            RuntimeEvent::Read {
                access: MemAccess::new(0x10, 8),
            },
            RuntimeEvent::Branch {
                site: 1,
                taken: false,
            },
            RuntimeEvent::Return,
        ]
    }

    #[test]
    fn counting_observer_tallies_everything() {
        let mut obs = CountingObserver::new();
        for ev in sample_events() {
            obs.on_event(ev);
        }
        let c = obs.counts();
        assert_eq!(c.calls, 1);
        assert_eq!(c.returns, 1);
        assert_eq!(c.reads, 1);
        assert_eq!(c.bytes_read, 8);
        assert_eq!(c.writes, 1);
        assert_eq!(c.bytes_written, 8);
        assert_eq!(c.ops, 3);
        assert_eq!(c.branches, 1);
    }

    #[test]
    fn fanout_delivers_to_both() {
        let mut fan = Fanout::new(CountingObserver::new(), RecordingObserver::new());
        for ev in sample_events() {
            fan.on_event(ev);
        }
        fan.on_finish();
        let (count, rec) = fan.into_parts();
        assert_eq!(count.counts().calls, 1);
        assert_eq!(rec.events().len(), sample_events().len());
    }

    #[test]
    fn recorder_replay_reproduces_counts() {
        let mut rec = RecordingObserver::new();
        for ev in sample_events() {
            rec.on_event(ev);
        }
        let mut direct = CountingObserver::new();
        for ev in sample_events() {
            direct.on_event(ev);
        }
        let mut replayed = CountingObserver::new();
        rec.replay(&mut replayed);
        assert_eq!(direct.counts(), replayed.counts());
    }

    #[test]
    fn mut_ref_observer_forwards() {
        let mut obs = CountingObserver::new();
        {
            // Route through the `&mut O` blanket impl explicitly.
            let mut by_ref: &mut CountingObserver = &mut obs;
            ExecutionObserver::on_event(&mut by_ref, RuntimeEvent::Return);
        }
        assert_eq!(obs.counts().returns, 1);
    }

    #[test]
    fn boxed_observer_forwards() {
        let mut boxed: Box<CountingObserver> = Box::default();
        boxed.on_event(RuntimeEvent::Return);
        assert_eq!(boxed.counts().returns, 1);
    }
}
