//! Error type for the tracing layer.

use std::error::Error;
use std::fmt;

/// Errors produced while driving a trace through [`crate::Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A `Return` event was emitted with no active function frame.
    ReturnWithoutCall,
    /// A `SyscallExit` event was emitted with no active system call.
    SyscallExitWithoutEnter,
    /// The trace finished while `depth` frames were still open.
    UnbalancedTrace {
        /// Number of frames still open at end of trace.
        depth: usize,
    },
    /// A memory access with zero size was emitted.
    EmptyAccess,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ReturnWithoutCall => f.write_str("return event without an active call"),
            TraceError::SyscallExitWithoutEnter => {
                f.write_str("syscall exit without a matching syscall enter")
            }
            TraceError::UnbalancedTrace { depth } => {
                write!(f, "trace ended with {depth} unclosed call frames")
            }
            TraceError::EmptyAccess => f.write_str("memory access with zero size"),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            TraceError::ReturnWithoutCall,
            TraceError::SyscallExitWithoutEnter,
            TraceError::UnbalancedTrace { depth: 3 },
            TraceError::EmptyAccess,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
