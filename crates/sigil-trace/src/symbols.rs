//! Function symbol table.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::FunctionId;

/// Interning table mapping function names to dense [`FunctionId`]s.
///
/// Plays the role of the debug-symbol reader in Valgrind: Sigil's "efficacy
/// is drastically reduced when the binary does not have debugging symbols"
/// — here symbols are always available because workloads register
/// themselves.
///
/// # Example
///
/// ```
/// use sigil_trace::SymbolTable;
///
/// let mut table = SymbolTable::new();
/// let a = table.intern("main");
/// let b = table.intern("main");
/// assert_eq!(a, b);
/// assert_eq!(table.name(a), "main");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    // BTreeMap, not HashMap: serialized profiles must be byte-identical
    // across runs and threads, so map iteration order has to be stable.
    by_name: BTreeMap<String, FunctionId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns `name`, returning its id; repeated calls with the same name
    /// return the same id.
    pub fn intern(&mut self, name: &str) -> FunctionId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = FunctionId::from_raw(
            u32::try_from(self.names.len()).expect("more than u32::MAX symbols interned"),
        );
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of `name` without interning it.
    pub fn lookup(&self, name: &str) -> Option<FunctionId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: FunctionId) -> &str {
        &self.names[id.index()]
    }

    /// Returns the name of `id`, or `None` if it is unknown to this table.
    pub fn get_name(&self, id: FunctionId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| {
            (
                FunctionId::from_raw(u32::try_from(i).expect("table length fits u32")),
                n.as_str(),
            )
        })
    }
}

impl fmt::Display for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymbolTable({} symbols)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("foo");
        let b = t.intern("bar");
        assert_ne!(a, b);
        assert_eq!(t.intern("foo"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.lookup("missing").is_none());
        let id = t.intern("present");
        assert_eq!(t.lookup("present"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn names_round_trip() {
        let mut t = SymbolTable::new();
        let id = t.intern("conv_gen");
        assert_eq!(t.name(id), "conv_gen");
        assert_eq!(t.get_name(id), Some("conv_gen"));
        assert_eq!(t.get_name(FunctionId::from_raw(99)), None);
    }

    #[test]
    fn iter_yields_in_intern_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, vec!["a", "b"]);
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "SymbolTable(0 symbols)");
    }
}
