//! The tracing engine that drives observers.

use std::collections::HashMap;

use crate::error::TraceError;
use crate::event::{Addr, MemAccess, OpClass, RuntimeEvent};
use crate::ids::{FunctionId, ThreadId};
use crate::observer::ExecutionObserver;
use crate::symbols::SymbolTable;

#[derive(Debug, Default)]
struct ThreadState {
    stack: Vec<FunctionId>,
    in_syscall: bool,
}

/// Drives a traced execution, validating event balance and forwarding
/// each event to an [`ExecutionObserver`].
///
/// Traces are a single interleaved stream; [`Engine::switch_thread`]
/// moves the cursor between per-thread call stacks, so multi-threaded
/// guests are expressed exactly as a DBI framework would observe them.
///
/// `Engine` is the direct-tracing producer: synthetic workloads call its
/// methods to describe the work a real binary would perform. The guest VM
/// in `sigil-vm` emits through an `Engine` too, so every event stream in
/// the workspace is validated the same way.
///
/// # Example
///
/// ```
/// use sigil_trace::{Engine, OpClass, observer::RecordingObserver};
///
/// let mut engine = Engine::new(RecordingObserver::new());
/// let main = engine.symbols_mut().intern("main");
/// let kernel = engine.symbols_mut().intern("kernel");
/// engine.call(main);
/// engine.scoped(kernel, |e| {
///     e.op(OpClass::FloatArith, 100);
///     e.write(0x2000, 64);
/// });
/// engine.ret();
/// let trace = engine.finish();
/// assert_eq!(trace.events().len(), 6);
/// ```
#[derive(Debug)]
pub struct Engine<O> {
    symbols: SymbolTable,
    observer: O,
    threads: HashMap<ThreadId, ThreadState>,
    current: ThreadId,
    events_emitted: u64,
    strict: bool,
}

impl<O: ExecutionObserver> Engine<O> {
    /// Creates an engine delivering events to `observer`, with a fresh
    /// symbol table.
    pub fn new(observer: O) -> Self {
        Engine::with_symbols(observer, SymbolTable::new())
    }

    /// Creates an engine with a pre-populated symbol table (e.g. shared
    /// across several profiled runs of the same workload).
    pub fn with_symbols(observer: O, symbols: SymbolTable) -> Self {
        Engine {
            symbols,
            observer,
            threads: HashMap::from([(ThreadId::MAIN, ThreadState::default())]),
            current: ThreadId::MAIN,
            events_emitted: 0,
            strict: true,
        }
    }

    fn state(&self) -> &ThreadState {
        self.threads
            .get(&self.current)
            .expect("current thread exists")
    }

    fn state_mut(&mut self) -> &mut ThreadState {
        self.threads.entry(self.current).or_default()
    }

    /// Disables balance panics: malformed traces are then reported only by
    /// [`Engine::validate`]. Used by fuzz-style tests.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Shared access to the symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table, for interning function names.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Shared access to the observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Number of events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Current call depth on the current thread.
    pub fn depth(&self) -> usize {
        self.state().stack.len()
    }

    /// The function currently on top of the current thread's call stack,
    /// if any.
    pub fn current_function(&self) -> Option<FunctionId> {
        self.state().stack.last().copied()
    }

    /// The thread currently executing.
    pub fn current_thread(&self) -> ThreadId {
        self.current
    }

    #[inline]
    fn emit(&mut self, event: RuntimeEvent) {
        self.events_emitted += 1;
        self.observer.on_event(event);
    }

    /// Switches execution to `thread` (a no-op if it is already
    /// current), emitting a `ThreadSwitch` event. A previously unseen
    /// thread starts with an empty call stack.
    ///
    /// # Attribution semantics
    ///
    /// Every event is attributed to the thread that is current *when it
    /// is emitted*; a switch takes effect only for subsequent events.
    /// Events are atomic — there is no partially-emitted memory access
    /// to strand — so a read emitted before a switch and a write after
    /// it belong to different threads by construction (that is exactly
    /// how inter-thread communication is expressed). Call frames and
    /// syscall state are per-thread: a `ret` or `syscall_exit` issued on
    /// a thread with no matching `call`/`syscall_enter` is a strict-mode
    /// panic even if another thread has an open frame, and
    /// [`Engine::validate`] sums open frames across *all* threads, so a
    /// thread that is switched away from and never resumed still fails
    /// balance checks if it left frames open.
    pub fn switch_thread(&mut self, thread: ThreadId) {
        if thread == self.current {
            return;
        }
        self.current = thread;
        self.threads.entry(thread).or_default();
        self.emit(RuntimeEvent::ThreadSwitch { thread });
    }

    /// Emits a `Call` into `callee`.
    pub fn call(&mut self, callee: FunctionId) {
        self.state_mut().stack.push(callee);
        self.emit(RuntimeEvent::Call { callee });
    }

    /// Emits a `Return` from the current function.
    ///
    /// # Panics
    ///
    /// Panics in strict mode if no function is active on the current
    /// thread.
    pub fn ret(&mut self) {
        if self.state_mut().stack.pop().is_none() && self.strict {
            panic!("{}", TraceError::ReturnWithoutCall);
        }
        self.emit(RuntimeEvent::Return);
    }

    /// Calls `callee`, runs `body`, and returns — the common shape for
    /// workload code.
    pub fn scoped<R>(&mut self, callee: FunctionId, body: impl FnOnce(&mut Self) -> R) -> R {
        self.call(callee);
        let result = body(self);
        self.ret();
        result
    }

    /// Interns `name` and runs `body` inside a call to it.
    pub fn scoped_named<R>(&mut self, name: &str, body: impl FnOnce(&mut Self) -> R) -> R {
        let id = self.symbols.intern(name);
        self.scoped(id, body)
    }

    /// Emits a read of `size` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics in strict mode if `size` is zero.
    pub fn read(&mut self, addr: Addr, size: u32) {
        if size == 0 {
            if self.strict {
                panic!("{}", TraceError::EmptyAccess);
            }
            return;
        }
        self.emit(RuntimeEvent::Read {
            access: MemAccess::new(addr, size),
        });
    }

    /// Emits a write of `size` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics in strict mode if `size` is zero.
    pub fn write(&mut self, addr: Addr, size: u32) {
        if size == 0 {
            if self.strict {
                panic!("{}", TraceError::EmptyAccess);
            }
            return;
        }
        self.emit(RuntimeEvent::Write {
            access: MemAccess::new(addr, size),
        });
    }

    /// Emits a read-modify-write of `size` bytes at `addr`, plus one op.
    pub fn update(&mut self, addr: Addr, size: u32, class: OpClass) {
        self.read(addr, size);
        self.op(class, 1);
        self.write(addr, size);
    }

    /// Emits `count` retired operations of `class`. `count == 0` is a no-op.
    pub fn op(&mut self, class: OpClass, count: u32) {
        if count == 0 {
            return;
        }
        self.emit(RuntimeEvent::Op { class, count });
    }

    /// Emits a conditional-branch outcome at branch site `site`.
    pub fn branch(&mut self, site: u64, taken: bool) {
        self.emit(RuntimeEvent::Branch { site, taken });
    }

    /// Enters a named system call; reads/writes until [`Engine::syscall_exit`]
    /// are boundary traffic of the opaque syscall entity.
    pub fn syscall_enter(&mut self, name: &str) {
        let id = self.symbols.intern(name);
        self.state_mut().in_syscall = true;
        self.emit(RuntimeEvent::SyscallEnter { name: id });
    }

    /// Exits the current system call.
    ///
    /// # Panics
    ///
    /// Panics in strict mode if no system call is active on the current
    /// thread.
    pub fn syscall_exit(&mut self) {
        if !self.state().in_syscall && self.strict {
            panic!("{}", TraceError::SyscallExitWithoutEnter);
        }
        self.state_mut().in_syscall = false;
        self.emit(RuntimeEvent::SyscallExit);
    }

    /// Runs `body` bracketed by a named system call.
    pub fn syscall<R>(&mut self, name: &str, body: impl FnOnce(&mut Self) -> R) -> R {
        self.syscall_enter(name);
        let result = body(self);
        self.syscall_exit();
        result
    }

    /// Checks that the trace is balanced so far, across every thread.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnbalancedTrace`] if call frames remain open
    /// on any thread.
    pub fn validate(&self) -> Result<(), TraceError> {
        let depth: usize = self.threads.values().map(|t| t.stack.len()).sum();
        if depth == 0 {
            Ok(())
        } else {
            Err(TraceError::UnbalancedTrace { depth })
        }
    }

    /// Ends the trace, notifying the observer, and returns it.
    ///
    /// # Panics
    ///
    /// Panics in strict mode if call frames remain open.
    pub fn finish(mut self) -> O {
        if self.strict {
            if let Err(e) = self.validate() {
                panic!("{e}");
            }
        }
        self.observer.on_finish();
        self.observer
    }

    /// Ends the trace and returns both the observer and the symbol table.
    ///
    /// # Panics
    ///
    /// Panics in strict mode if call frames remain open.
    pub fn finish_with_symbols(mut self) -> (O, SymbolTable) {
        if self.strict {
            if let Err(e) = self.validate() {
                panic!("{e}");
            }
        }
        self.observer.on_finish();
        (self.observer, self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{CountingObserver, RecordingObserver};

    #[test]
    fn scoped_emits_call_and_return() {
        let mut e = Engine::new(RecordingObserver::new());
        let f = e.symbols_mut().intern("f");
        e.scoped(f, |e| e.op(OpClass::IntArith, 1));
        let events = e.finish().into_events();
        assert!(matches!(events[0], RuntimeEvent::Call { .. }));
        assert!(matches!(events[2], RuntimeEvent::Return));
    }

    #[test]
    fn update_is_read_op_write() {
        let mut e = Engine::new(RecordingObserver::new());
        let f = e.symbols_mut().intern("f");
        e.call(f);
        e.update(0x40, 4, OpClass::IntArith);
        e.ret();
        let events = e.finish().into_events();
        assert!(matches!(events[1], RuntimeEvent::Read { .. }));
        assert!(matches!(events[2], RuntimeEvent::Op { .. }));
        assert!(matches!(events[3], RuntimeEvent::Write { .. }));
    }

    #[test]
    #[should_panic(expected = "return event without an active call")]
    fn unbalanced_return_panics_in_strict_mode() {
        let mut e = Engine::new(CountingObserver::new());
        e.ret();
    }

    #[test]
    #[should_panic(expected = "unclosed call frames")]
    fn finish_panics_on_open_frames() {
        let mut e = Engine::new(CountingObserver::new());
        let f = e.symbols_mut().intern("f");
        e.call(f);
        let _ = e.finish();
    }

    #[test]
    fn lenient_mode_tolerates_imbalance() {
        let mut e = Engine::new(CountingObserver::new());
        e.set_strict(false);
        e.ret();
        assert!(e.validate().is_ok());
        let obs = e.finish();
        assert_eq!(obs.counts().returns, 1);
    }

    #[test]
    fn zero_op_count_emits_nothing() {
        let mut e = Engine::new(CountingObserver::new());
        e.op(OpClass::Agu, 0);
        assert_eq!(e.events_emitted(), 0);
    }

    #[test]
    #[should_panic(expected = "memory access with zero size")]
    fn zero_size_read_panics() {
        let mut e = Engine::new(CountingObserver::new());
        e.read(0x0, 0);
    }

    #[test]
    fn syscall_brackets_events() {
        let mut e = Engine::new(RecordingObserver::new());
        e.syscall("read", |e| e.write(0x100, 16));
        let events = e.finish().into_events();
        assert!(matches!(events[0], RuntimeEvent::SyscallEnter { .. }));
        assert!(matches!(events[1], RuntimeEvent::Write { .. }));
        assert!(matches!(events[2], RuntimeEvent::SyscallExit));
    }

    #[test]
    #[should_panic(expected = "syscall exit without a matching syscall enter")]
    fn syscall_exit_without_enter_panics() {
        let mut e = Engine::new(CountingObserver::new());
        e.syscall_exit();
    }

    #[test]
    fn current_function_tracks_stack() {
        let mut e = Engine::new(CountingObserver::new());
        let a = e.symbols_mut().intern("a");
        let b = e.symbols_mut().intern("b");
        assert_eq!(e.current_function(), None);
        e.call(a);
        assert_eq!(e.current_function(), Some(a));
        e.call(b);
        assert_eq!(e.current_function(), Some(b));
        assert_eq!(e.depth(), 2);
        e.ret();
        assert_eq!(e.current_function(), Some(a));
        e.ret();
        assert_eq!(e.depth(), 0);
    }

    #[test]
    fn switch_between_accesses_attributes_each_side_to_its_thread() {
        // A "pending" access cannot straddle a switch: events are atomic,
        // so the read lands on MAIN and the write on thread 1, with the
        // ThreadSwitch ordered strictly between them.
        let mut e = Engine::new(RecordingObserver::new());
        let f = e.symbols_mut().intern("f");
        e.call(f);
        e.read(0x100, 8);
        e.switch_thread(ThreadId::from_raw(1));
        e.write(0x100, 8);
        e.switch_thread(ThreadId::MAIN);
        e.ret();
        let events = e.finish().into_events();
        assert!(matches!(events[1], RuntimeEvent::Read { .. }));
        assert!(matches!(
            events[2],
            RuntimeEvent::ThreadSwitch { thread } if thread == ThreadId::from_raw(1)
        ));
        assert!(matches!(events[3], RuntimeEvent::Write { .. }));
    }

    #[test]
    fn switch_to_never_resumed_thread_is_balanced_if_it_left_no_frames() {
        let mut e = Engine::new(CountingObserver::new());
        e.switch_thread(ThreadId::from_raw(9));
        e.op(OpClass::IntArith, 1);
        e.switch_thread(ThreadId::MAIN);
        assert!(e.validate().is_ok());
        assert_eq!(e.finish().counts().thread_switches, 2);
    }

    #[test]
    #[should_panic(expected = "unclosed call frames")]
    fn abandoned_thread_with_open_frame_fails_balance() {
        let mut e = Engine::new(CountingObserver::new());
        let f = e.symbols_mut().intern("f");
        e.switch_thread(ThreadId::from_raw(3));
        e.call(f);
        // Switch away and never resume thread 3: its open frame must
        // still be caught at finish.
        e.switch_thread(ThreadId::MAIN);
        let _ = e.finish();
    }

    #[test]
    #[should_panic(expected = "return event without an active call")]
    fn ret_on_wrong_thread_panics_despite_open_frame_elsewhere() {
        let mut e = Engine::new(CountingObserver::new());
        let f = e.symbols_mut().intern("f");
        e.call(f);
        e.switch_thread(ThreadId::from_raw(1));
        // MAIN has an open frame, but thread 1 does not: stacks are
        // per-thread, so this return has no matching call.
        e.ret();
    }

    #[test]
    #[should_panic(expected = "syscall exit without a matching syscall enter")]
    fn syscall_exit_on_wrong_thread_panics() {
        let mut e = Engine::new(CountingObserver::new());
        e.syscall_enter("read");
        e.switch_thread(ThreadId::from_raw(1));
        e.syscall_exit();
    }

    #[test]
    fn finish_with_symbols_returns_table() {
        let mut e = Engine::new(CountingObserver::new());
        e.symbols_mut().intern("main");
        let (_obs, syms) = e.finish_with_symbols();
        assert_eq!(syms.len(), 1);
    }
}
