//! Compact binary serialization of event traces.
//!
//! The paper closes with: "we plan to release the profile data for many
//! commonly used benchmarks. As these profiles are platform independent,
//! researchers can use the data without running Sigil." This module
//! provides the trace container for that workflow: a recorded event
//! stream plus its symbol table, written as a compact little-endian
//! binary file that any observer can later replay.
//!
//! # Format
//!
//! ```text
//! magic "SGTR" | version u32 | symbol count u32 | (len u32, utf8)* |
//! event count u64 | events…
//! ```
//!
//! Each event is one tag byte plus a fixed payload; see the `tag`
//! constants.

use std::io::{self, Read, Write};

use crate::event::{MemAccess, OpClass, RuntimeEvent};
use crate::ids::FunctionId;
use crate::observer::ExecutionObserver;
use crate::symbols::SymbolTable;

const MAGIC: &[u8; 4] = b"SGTR";
const VERSION: u32 = 1;

mod tag {
    pub const CALL: u8 = 1;
    pub const RETURN: u8 = 2;
    pub const READ: u8 = 3;
    pub const WRITE: u8 = 4;
    pub const OP: u8 = 5;
    pub const BRANCH: u8 = 6;
    pub const SYSCALL_ENTER: u8 = 7;
    pub const SYSCALL_EXIT: u8 = 8;
    pub const THREAD_SWITCH: u8 = 9;
}

fn op_class_code(class: OpClass) -> u8 {
    class.index() as u8
}

fn op_class_from(code: u8) -> io::Result<OpClass> {
    OpClass::ALL
        .into_iter()
        .find(|c| c.index() as u8 == code)
        .ok_or_else(|| bad_data(format!("unknown op class {code}")))
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Writes one event in the trace encoding: a tag byte plus a fixed
/// little-endian payload. The same record encoding is used inside
/// `.sgtr` containers and as the per-record wire payload of streamed
/// profile sessions.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_event<W: Write>(writer: &mut W, event: RuntimeEvent) -> io::Result<()> {
    match event {
        RuntimeEvent::Call { callee } => {
            writer.write_all(&[tag::CALL])?;
            writer.write_all(&callee.as_raw().to_le_bytes())?;
        }
        RuntimeEvent::Return => writer.write_all(&[tag::RETURN])?,
        RuntimeEvent::Read { access } => {
            writer.write_all(&[tag::READ])?;
            writer.write_all(&access.addr.to_le_bytes())?;
            writer.write_all(&access.size.to_le_bytes())?;
        }
        RuntimeEvent::Write { access } => {
            writer.write_all(&[tag::WRITE])?;
            writer.write_all(&access.addr.to_le_bytes())?;
            writer.write_all(&access.size.to_le_bytes())?;
        }
        RuntimeEvent::Op { class, count } => {
            writer.write_all(&[tag::OP, op_class_code(class)])?;
            writer.write_all(&count.to_le_bytes())?;
        }
        RuntimeEvent::Branch { site, taken } => {
            writer.write_all(&[tag::BRANCH, u8::from(taken)])?;
            writer.write_all(&site.to_le_bytes())?;
        }
        RuntimeEvent::SyscallEnter { name } => {
            writer.write_all(&[tag::SYSCALL_ENTER])?;
            writer.write_all(&name.as_raw().to_le_bytes())?;
        }
        RuntimeEvent::SyscallExit => writer.write_all(&[tag::SYSCALL_EXIT])?,
        RuntimeEvent::ThreadSwitch { thread } => {
            writer.write_all(&[tag::THREAD_SWITCH])?;
            writer.write_all(&thread.as_raw().to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads one event written by [`write_event`].
///
/// # Errors
///
/// Fails with `InvalidData` on an unknown tag or op class, and
/// propagates underlying I/O errors (including `UnexpectedEof` on a
/// truncated record).
pub fn read_event<R: Read>(reader: &mut R) -> io::Result<RuntimeEvent> {
    let [tag_byte] = read_exact::<1, _>(reader)?;
    let event = match tag_byte {
        tag::CALL => RuntimeEvent::Call {
            callee: FunctionId::from_raw(u32::from_le_bytes(read_exact::<4, _>(reader)?)),
        },
        tag::RETURN => RuntimeEvent::Return,
        tag::READ | tag::WRITE => {
            let addr = u64::from_le_bytes(read_exact::<8, _>(reader)?);
            let size = u32::from_le_bytes(read_exact::<4, _>(reader)?);
            let access = MemAccess::new(addr, size);
            if tag_byte == tag::READ {
                RuntimeEvent::Read { access }
            } else {
                RuntimeEvent::Write { access }
            }
        }
        tag::OP => {
            let [code] = read_exact::<1, _>(reader)?;
            let count = u32::from_le_bytes(read_exact::<4, _>(reader)?);
            RuntimeEvent::Op {
                class: op_class_from(code)?,
                count,
            }
        }
        tag::BRANCH => {
            let [taken] = read_exact::<1, _>(reader)?;
            let site = u64::from_le_bytes(read_exact::<8, _>(reader)?);
            RuntimeEvent::Branch {
                site,
                taken: taken != 0,
            }
        }
        tag::SYSCALL_ENTER => RuntimeEvent::SyscallEnter {
            name: FunctionId::from_raw(u32::from_le_bytes(read_exact::<4, _>(reader)?)),
        },
        tag::SYSCALL_EXIT => RuntimeEvent::SyscallExit,
        tag::THREAD_SWITCH => RuntimeEvent::ThreadSwitch {
            thread: crate::ids::ThreadId::from_raw(u32::from_le_bytes(read_exact::<4, _>(reader)?)),
        },
        other => return Err(bad_data(format!("unknown event tag {other}"))),
    };
    Ok(event)
}

/// Writes a recorded trace (events + symbols) to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(
    writer: &mut W,
    symbols: &SymbolTable,
    events: &[RuntimeEvent],
) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(symbols.len() as u32).to_le_bytes())?;
    for (_, name) in symbols.iter() {
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name.as_bytes())?;
    }
    writer.write_all(&(events.len() as u64).to_le_bytes())?;
    for &event in events {
        write_event(writer, event)?;
    }
    Ok(())
}

fn read_exact<const N: usize, R: Read>(reader: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads a trace written by [`write_trace`].
///
/// # Errors
///
/// Fails with `InvalidData` on a bad magic number, unsupported version,
/// or malformed records, and propagates underlying I/O errors.
pub fn read_trace<R: Read>(reader: &mut R) -> io::Result<(SymbolTable, Vec<RuntimeEvent>)> {
    let magic = read_exact::<4, _>(reader)?;
    if &magic != MAGIC {
        return Err(bad_data("not a sigil trace (bad magic)".to_owned()));
    }
    let version = u32::from_le_bytes(read_exact::<4, _>(reader)?);
    if version != VERSION {
        return Err(bad_data(format!("unsupported trace version {version}")));
    }
    let symbol_count = u32::from_le_bytes(read_exact::<4, _>(reader)?);
    let mut symbols = SymbolTable::new();
    for _ in 0..symbol_count {
        let len = u32::from_le_bytes(read_exact::<4, _>(reader)?) as usize;
        if len > 1 << 20 {
            return Err(bad_data(format!("unreasonable symbol length {len}")));
        }
        let mut buf = vec![0u8; len];
        reader.read_exact(&mut buf)?;
        let name =
            String::from_utf8(buf).map_err(|e| bad_data(format!("bad symbol utf-8: {e}")))?;
        symbols.intern(&name);
    }
    let event_count = u64::from_le_bytes(read_exact::<8, _>(reader)?);
    let mut events = Vec::with_capacity(event_count.min(1 << 24) as usize);
    for _ in 0..event_count {
        events.push(read_event(reader)?);
    }
    Ok((symbols, events))
}

/// Replays a loaded trace into `observer`, including the finish
/// notification.
pub fn replay<O: ExecutionObserver>(events: &[RuntimeEvent], observer: &mut O) {
    for &event in events {
        observer.on_event(event);
    }
    observer.on_finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::observer::{CountingObserver, RecordingObserver};

    fn sample_trace() -> (SymbolTable, Vec<RuntimeEvent>) {
        let mut engine = Engine::new(RecordingObserver::new());
        engine.scoped_named("main", |e| {
            e.write(0xdead_beef_0000, 8);
            e.op(OpClass::FloatArith, 1000);
            e.branch(0x42, true);
            e.syscall("sys_write", |e| e.read(0xdead_beef_0000, 8));
        });
        let (rec, symbols) = engine.finish_with_symbols();
        (symbols, rec.into_events())
    }

    #[test]
    fn single_event_round_trips() {
        let (_, events) = sample_trace();
        for &event in &events {
            let mut buf = Vec::new();
            write_event(&mut buf, event).expect("write to vec");
            let back = read_event(&mut buf.as_slice()).expect("read back");
            assert_eq!(event, back);
            // The whole buffer is consumed: no trailing bytes.
            let mut slice = buf.as_slice();
            let _ = read_event(&mut slice).expect("read");
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (symbols, events) = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &symbols, &events).expect("write to vec");
        let (symbols2, events2) = read_trace(&mut buf.as_slice()).expect("read back");
        assert_eq!(events, events2);
        assert_eq!(symbols.len(), symbols2.len());
        for (id, name) in symbols.iter() {
            assert_eq!(symbols2.get_name(id), Some(name));
        }
    }

    #[test]
    fn replay_matches_live_counts() {
        let (_, events) = sample_trace();
        let mut live = CountingObserver::new();
        for &e in &events {
            live.on_event(e);
        }
        let mut replayed = CountingObserver::new();
        replay(&events, &mut replayed);
        assert_eq!(live.counts(), replayed.counts());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&mut &b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let (symbols, events) = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &symbols, &events).expect("write");
        for cut in [3, 8, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_trace(&mut &buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let symbols = SymbolTable::new();
        let mut buf = Vec::new();
        write_trace(&mut buf, &symbols, &[]).expect("write");
        let (s, e) = read_trace(&mut buf.as_slice()).expect("read");
        assert!(s.is_empty());
        assert!(e.is_empty());
    }

    #[test]
    fn encoding_is_compact() {
        let (symbols, events) = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &symbols, &events).expect("write");
        // Well under serde_json's footprint: ~13 bytes per event here.
        assert!(buf.len() < events.len() * 16 + 128);
    }
}
