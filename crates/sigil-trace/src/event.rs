//! The dynamic execution events exposed by the tracing substrate.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{FunctionId, ThreadId};

/// A guest (traced-program) memory address.
///
/// Addresses are opaque 64-bit values: the profiler never dereferences
/// them, it only uses them as shadow-memory keys, exactly as Valgrind-based
/// Sigil treats addresses of the instrumented binary.
pub type Addr = u64;

/// Classification of a retired compute operation.
///
/// Callgrind (and therefore Sigil) distinguishes integer from floating
/// point operations when counting the work a function performs; the
/// partitioning case study sums these into a per-function operation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU work (add/sub/logic/shift/compare).
    IntArith,
    /// Integer multiply/divide.
    IntMulDiv,
    /// Floating-point arithmetic.
    FloatArith,
    /// Address computation and other bookkeeping ops.
    Agu,
}

impl OpClass {
    /// All operation classes, in a stable order.
    pub const ALL: [OpClass; 4] = [
        OpClass::IntArith,
        OpClass::IntMulDiv,
        OpClass::FloatArith,
        OpClass::Agu,
    ];

    /// A stable dense index for per-class tables.
    pub const fn index(self) -> usize {
        match self {
            OpClass::IntArith => 0,
            OpClass::IntMulDiv => 1,
            OpClass::FloatArith => 2,
            OpClass::Agu => 3,
        }
    }

    /// Short mnemonic used in reports.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntArith => "ialu",
            OpClass::IntMulDiv => "imul",
            OpClass::FloatArith => "flop",
            OpClass::Agu => "agu",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One memory access: a contiguous byte range touched by the guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// First byte address of the access.
    pub addr: Addr,
    /// Access width in bytes. Never zero for events produced by [`crate::Engine`].
    pub size: u32,
}

impl MemAccess {
    /// Creates a new access descriptor.
    #[inline]
    pub const fn new(addr: Addr, size: u32) -> Self {
        MemAccess { addr, size }
    }

    /// Number of bytes covered, as a slice-friendly `usize`.
    ///
    /// Hot-path fast path: profilers size shadow runs from this without
    /// materializing the [`bytes`](Self::bytes) iterator.
    #[inline]
    pub const fn len(self) -> usize {
        self.size as usize
    }

    /// Whether the access covers zero bytes.
    ///
    /// [`crate::Engine`] never emits empty accesses, but hand-built event
    /// streams can; profilers treat them as no-ops.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.size == 0
    }

    /// Iterates over every byte address covered by this access.
    #[inline]
    pub fn bytes(self) -> impl Iterator<Item = Addr> {
        self.addr..self.addr + u64::from(self.size)
    }

    /// The exclusive end address of the access.
    #[inline]
    pub const fn end(self) -> Addr {
        self.addr + self.size as u64
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}; {}B]", self.addr, self.size)
    }
}

/// A single dynamic execution event.
///
/// This is the complete vocabulary the profilers consume. It corresponds to
/// the primitives Valgrind's IR exposes to tools: control transfer in and
/// out of functions, data memory traffic, retired compute operations, and
/// conditional-branch outcomes (used by the Callgrind-like cost model for
/// branch-misprediction estimation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeEvent {
    /// Control enters `callee` via a call instruction.
    Call {
        /// The function being entered.
        callee: FunctionId,
    },
    /// Control returns from the currently executing function to its caller.
    Return,
    /// The guest reads `access.size` bytes starting at `access.addr`.
    Read {
        /// The byte range read.
        access: MemAccess,
    },
    /// The guest writes `access.size` bytes starting at `access.addr`.
    Write {
        /// The byte range written.
        access: MemAccess,
    },
    /// The guest retires `count` compute operations of class `class`.
    Op {
        /// Kind of operation retired.
        class: OpClass,
        /// Number of operations retired (≥ 1).
        count: u32,
    },
    /// The guest executes a conditional branch identified by `site`.
    Branch {
        /// Static identity of the branch site (program counter analogue).
        site: u64,
        /// Whether the branch was taken.
        taken: bool,
    },
    /// The guest enters an operating-system call.
    ///
    /// Sigil "is able to capture the names of system calls and capture the
    /// input and output bytes but not see the detailed memory and
    /// communication used inside the system call"; profilers treat the
    /// region between `SyscallEnter` and `SyscallExit` as opaque apart from
    /// its boundary reads and writes.
    SyscallEnter {
        /// Symbolized name of the system call (interned like a function).
        name: FunctionId,
    },
    /// The guest returns from the current system call.
    SyscallExit,
    /// Execution continues on another thread: subsequent events belong to
    /// `thread`'s call stack until the next switch.
    ThreadSwitch {
        /// The thread now executing.
        thread: ThreadId,
    },
}

impl RuntimeEvent {
    /// Number of retired guest operations this event represents, used to
    /// advance the platform-independent [`crate::OpClock`].
    pub const fn retired_ops(self) -> u64 {
        match self {
            RuntimeEvent::Op { count, .. } => count as u64,
            RuntimeEvent::Read { .. } | RuntimeEvent::Write { .. } => 1,
            RuntimeEvent::Call { .. }
            | RuntimeEvent::Return
            | RuntimeEvent::Branch { .. }
            | RuntimeEvent::SyscallEnter { .. }
            | RuntimeEvent::SyscallExit
            | RuntimeEvent::ThreadSwitch { .. } => 1,
        }
    }

    /// Returns the memory access carried by this event, if any.
    pub const fn access(self) -> Option<MemAccess> {
        match self {
            RuntimeEvent::Read { access } | RuntimeEvent::Write { access } => Some(access),
            _ => None,
        }
    }
}

impl fmt::Display for RuntimeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeEvent::Call { callee } => write!(f, "call {callee}"),
            RuntimeEvent::Return => f.write_str("ret"),
            RuntimeEvent::Read { access } => write!(f, "read {access}"),
            RuntimeEvent::Write { access } => write!(f, "write {access}"),
            RuntimeEvent::Op { class, count } => write!(f, "op {class} x{count}"),
            RuntimeEvent::Branch { site, taken } => {
                write!(f, "br @{site:#x} {}", if *taken { "T" } else { "N" })
            }
            RuntimeEvent::SyscallEnter { name } => write!(f, "syscall {name}"),
            RuntimeEvent::SyscallExit => f.write_str("sysret"),
            RuntimeEvent::ThreadSwitch { thread } => write!(f, "switch {thread}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_access_iterates_every_byte() {
        let a = MemAccess::new(0x100, 4);
        let bytes: Vec<Addr> = a.bytes().collect();
        assert_eq!(bytes, vec![0x100, 0x101, 0x102, 0x103]);
        assert_eq!(a.end(), 0x104);
    }

    #[test]
    fn mem_access_len_matches_byte_iterator() {
        let a = MemAccess::new(0x100, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(a.len(), a.bytes().count());
        assert!(!a.is_empty());
        let empty = MemAccess::new(0x100, 0);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.bytes().count(), 0);
        assert_eq!(empty.end(), empty.addr);
    }

    #[test]
    fn retired_ops_counts_op_batches() {
        let ev = RuntimeEvent::Op {
            class: OpClass::FloatArith,
            count: 17,
        };
        assert_eq!(ev.retired_ops(), 17);
        assert_eq!(RuntimeEvent::Return.retired_ops(), 1);
    }

    #[test]
    fn access_extraction() {
        let acc = MemAccess::new(8, 8);
        assert_eq!(RuntimeEvent::Read { access: acc }.access(), Some(acc));
        assert_eq!(RuntimeEvent::Write { access: acc }.access(), Some(acc));
        assert_eq!(RuntimeEvent::Return.access(), None);
    }

    #[test]
    fn op_class_indices_are_dense_and_unique() {
        let mut seen = [false; OpClass::ALL.len()];
        for class in OpClass::ALL {
            assert!(!seen[class.index()], "duplicate index for {class}");
            seen[class.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn event_display_is_nonempty() {
        let events = [
            RuntimeEvent::Call {
                callee: FunctionId::from_raw(1),
            },
            RuntimeEvent::Return,
            RuntimeEvent::Read {
                access: MemAccess::new(0, 1),
            },
            RuntimeEvent::Branch {
                site: 0x40,
                taken: true,
            },
        ];
        for ev in events {
            assert!(!ev.to_string().is_empty());
        }
    }
}
