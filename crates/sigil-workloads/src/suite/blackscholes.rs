//! `blackscholes`: option pricing with Black–Scholes PDE closed forms.
//!
//! Paper findings this skeleton reproduces:
//!
//! * Table II top functions: `strtof`, `_ieee754_exp`, `_ieee754_expf`,
//!   `_ieee754_logf`, `__mpn_mul` — compute-dense math calls with tiny
//!   unique I/O, breakeven ≈ 1.0;
//! * Table III worst functions: `dl_addr`, `_IO_sputbackc`,
//!   `std::string::assign`, `operator new` — utility calls whose
//!   communication rivals their compute;
//! * Figure 8: almost all data has **zero reuse** — each option is
//!   parsed, priced, written out, and never touched again.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{math_call, utility_call, AddrSpace, InputSize};

/// Options priced per `simsmall` unit of work.
const OPTIONS_PER_UNIT: u64 = 192;

/// The blackscholes workload.
#[derive(Debug, Clone, Copy)]
pub struct Blackscholes {
    size: InputSize,
}

impl Blackscholes {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Blackscholes { size }
    }

    /// Number of options priced.
    pub fn option_count(&self) -> u64 {
        OPTIONS_PER_UNIT * self.size.factor()
    }

    /// Runs the workload, emitting its trace through `engine`.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let n = self.option_count();
        let mut space = AddrSpace::new();
        let input_text = space.alloc(n * 64); // raw option text (program input)
        let parsed = space.alloc(n * 48); // 6 f64 fields per option
        let prices = space.alloc(n * 8);
        let scratch = space.alloc(256);
        let heap_meta = space.alloc(256);

        engine.scoped_named("main", |e| {
            // Program startup: dynamic-loader and locale utility noise
            // (Table III residents).
            e.write(heap_meta.base, 64);
            utility_call(e, "dl_addr", heap_meta.base, 48, scratch.base, 8, 24);
            utility_call(
                e,
                "std::string::assign",
                input_text.base,
                32,
                scratch.addr(8),
                16,
                20,
            );
            utility_call(
                e,
                "operator new",
                heap_meta.addr(64),
                24,
                scratch.addr(24),
                16,
                18,
            );

            // Read the option file (opaque syscall produces the bytes).
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < input_text.size {
                    e.write(input_text.addr(off), 8);
                    off += 8;
                }
            });

            for i in 0..n {
                // Parse six fields: strtof reads the text, writes a float.
                e.scoped_named("strtof", |e| {
                    for field in 0..6u64 {
                        e.read(input_text.addr(i * 64 + field * 8), 8);
                        e.op(OpClass::IntArith, 22);
                        e.op(OpClass::FloatArith, 6);
                        e.write(parsed.addr(i * 48 + field * 8), 8);
                    }
                });
                // Occasionally push back a char (stream utility).
                if i % 24 == 0 {
                    utility_call(
                        e,
                        "_IO_sputbackc",
                        input_text.addr(i * 64),
                        16,
                        scratch.addr(40),
                        8,
                        8,
                    );
                }

                // Price the option.
                e.scoped_named("BlkSchlsEqEuroNoDiv", |e| {
                    for field in 0..6u64 {
                        e.read(parsed.addr(i * 48 + field * 8), 8);
                    }
                    e.op(OpClass::FloatArith, 36);
                    let arg = parsed.addr(i * 48);
                    let tmp = scratch.addr(64);
                    math_call(e, "_ieee754_log", arg, tmp, 28);
                    math_call(e, "_ieee754_logf", arg + 8, tmp + 8, 22);
                    math_call(e, "_ieee754_exp", arg + 16, tmp + 16, 30);
                    math_call(e, "_ieee754_expf", arg + 24, tmp + 24, 24);
                    // CNDF via the multiprecision multiply path.
                    e.scoped_named("__mpn_mul", |e| {
                        e.read(tmp, 16);
                        e.op(OpClass::IntMulDiv, 26);
                        e.op(OpClass::IntArith, 10);
                        e.write(tmp + 32, 16);
                    });
                    e.read(tmp, 32);
                    e.read(tmp + 32, 16);
                    e.op(OpClass::FloatArith, 18);
                    e.write(prices.addr(i * 8), 8);
                });
            }

            // Emit results.
            e.syscall("sys_write", |e| {
                let mut off = 0;
                while off < prices.size {
                    e.read(prices.addr(off), 8);
                    off += 8;
                }
            });
            utility_call(e, "free", heap_meta.addr(128), 32, scratch.addr(48), 8, 14);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn work_scales_with_input_size() {
        let mut small = Engine::new(CountingObserver::new());
        Blackscholes::new(InputSize::SimSmall).run(&mut small);
        let small_counts = small.finish().into_counts();

        let mut medium = Engine::new(CountingObserver::new());
        Blackscholes::new(InputSize::SimMedium).run(&mut medium);
        let medium_counts = medium.finish().into_counts();

        assert!(medium_counts.ops > 3 * small_counts.ops);
        assert!(medium_counts.calls > 3 * small_counts.calls);
    }

    #[test]
    fn every_option_is_priced() {
        let wl = Blackscholes::new(InputSize::SimSmall);
        let mut e = Engine::new(CountingObserver::new());
        wl.run(&mut e);
        let counts = e.finish().into_counts();
        // prices written once per option inside BlkSchls + bulk I/O.
        assert!(counts.bytes_written >= wl.option_count() * 8);
        assert!(counts.syscalls == 2);
    }

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Blackscholes::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn float_work_dominates_integer_work() {
        let mut e = Engine::new(CountingObserver::new());
        Blackscholes::new(InputSize::SimSmall).run(&mut e);
        // Pricing is float-heavy by construction; just ensure substance.
        let counts = e.finish().into_counts();
        assert!(counts.ops > 50_000);
    }
}
