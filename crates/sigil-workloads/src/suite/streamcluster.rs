//! `streamcluster`: online k-median clustering of a point stream.
//!
//! Paper findings this skeleton reproduces:
//!
//! * §IV-C: the critical path runs
//!   `drand48_iterate → nrand48_r → lrand48 → pkmedian → localSearch →
//!   streamCluster → main`, and the benchmark "is characterized by many
//!   short paths" — per-point gain evaluations are independent, so the
//!   theoretical function-level parallelism is **high** (Figure 13);
//! * Figure 8: limited data reuse — points are read per evaluation and
//!   not revisited.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{AddrSpace, InputSize};

const POINTS: u64 = 128;
const DIMS: u64 = 8;
const ROUNDS_PER_UNIT: u64 = 6;

/// The streamcluster workload.
#[derive(Debug, Clone, Copy)]
pub struct Streamcluster {
    size: InputSize,
}

impl Streamcluster {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Streamcluster { size }
    }

    /// Local-search rounds executed.
    pub fn round_count(&self) -> u64 {
        ROUNDS_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let rounds = self.round_count();
        let mut space = AddrSpace::new();
        let points = space.alloc(POINTS * DIMS * 8);
        let centers = space.alloc(16 * DIMS * 8);
        let gains = space.alloc(POINTS * 8);
        let rng_state = space.alloc(64);

        engine.scoped_named("main", |e| {
            e.scoped_named("streamCluster", |e| {
                // Stream the points in.
                e.syscall("sys_read", |e| {
                    let mut off = 0;
                    while off < points.size {
                        e.write(points.addr(off), 8);
                        off += 8;
                    }
                });
                e.write(rng_state.base, 16);

                e.scoped_named("localSearch", |e| {
                    for round in 0..rounds {
                        e.scoped_named("pkmedian", |e| {
                            // Draw a random feasible center: the paper's
                            // rand chain, leaf-ward on the critical path.
                            e.scoped_named("lrand48", |e| {
                                e.scoped_named("nrand48_r", |e| {
                                    e.scoped_named("drand48_iterate", |e| {
                                        e.read(rng_state.base, 16);
                                        e.op(OpClass::IntMulDiv, 4);
                                        e.op(OpClass::IntArith, 6);
                                        e.write(rng_state.base, 16);
                                    });
                                    e.read(rng_state.base, 8);
                                    e.op(OpClass::IntArith, 4);
                                    e.write(rng_state.addr(16), 8);
                                });
                                e.read(rng_state.addr(16), 8);
                                e.op(OpClass::IntArith, 2);
                                e.write(rng_state.addr(24), 8);
                            });

                            // Propose the center: write its coordinates.
                            let center = centers.addr((round % 16) * DIMS * 8);
                            e.read(rng_state.addr(24), 8);
                            for d in 0..DIMS {
                                e.read(points.addr(((round * 37) % POINTS) * DIMS * 8 + d * 8), 8);
                                e.write(center + d * 8, 8);
                            }

                            // Evaluate the gain for every point — these
                            // `dist` calls are the "many short paths":
                            // each depends only on its point and the
                            // center, never on another point's result.
                            for p in 0..POINTS {
                                e.scoped_named("dist", |e| {
                                    for d in 0..DIMS {
                                        e.read(points.addr(p * DIMS * 8 + d * 8), 8);
                                        e.read(center + d * 8, 8);
                                        e.op(OpClass::FloatArith, 3);
                                    }
                                    e.op(OpClass::FloatArith, 6);
                                    e.write(gains.addr(p * 8), 8);
                                });
                            }

                            // Fold the gains (cheap relative to dist).
                            let mut off = 0;
                            while off < gains.size {
                                e.read(gains.addr(off), 8);
                                e.op(OpClass::FloatArith, 1);
                                off += 8;
                            }
                            e.write(rng_state.addr(32), 8);
                        });
                    }
                });
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Streamcluster::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn rand_chain_is_present() {
        use sigil_trace::observer::RecordingObserver;
        let mut e = Engine::new(RecordingObserver::new());
        Streamcluster::new(InputSize::SimSmall).run(&mut e);
        let syms = e.symbols().clone();
        for name in [
            "drand48_iterate",
            "nrand48_r",
            "lrand48",
            "pkmedian",
            "localSearch",
            "streamCluster",
        ] {
            assert!(syms.lookup(name).is_some(), "missing {name}");
        }
        let _ = e.finish();
    }

    #[test]
    fn dist_dominates_call_count() {
        let mut e = Engine::new(CountingObserver::new());
        let wl = Streamcluster::new(InputSize::SimSmall);
        wl.run(&mut e);
        let counts = e.finish().into_counts();
        // One dist call per point per round, plus the rand chain.
        assert!(counts.calls >= wl.round_count() * POINTS);
    }
}
