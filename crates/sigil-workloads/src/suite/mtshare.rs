//! `mtshare`: four guest threads hammering a small set of shared
//! counters while streaming through thread-private arrays — the
//! contention-heavy sharing pattern (think `canneal`'s shared netlist
//! or a lock-protected work queue).
//!
//! Under round-robin scheduling every counter read observes a value
//! last written by the *previous* thread, so the shared-counter traffic
//! is almost entirely **inter-thread input**, while the private-array
//! traffic stays same-thread — the classifier must separate the two
//! even though both flow through the same functions. Unlike `mtpipe`'s
//! bulk handoffs, the inter-thread bytes here are small and frequent
//! (8-byte read-modify-write), probing per-access classification rather
//! than bulk ranges.

use sigil_trace::{Engine, ExecutionObserver, OpClass, ThreadId};

use crate::common::{AddrSpace, InputSize};

const ROUNDS_PER_UNIT: u64 = 64;
const WORKERS: u64 = 4;
const COUNTERS: u64 = 8;
const PRIVATE_BYTES: u64 = 512;

/// The mtshare workload.
#[derive(Debug, Clone, Copy)]
pub struct Mtshare {
    size: InputSize,
}

impl Mtshare {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Mtshare { size }
    }

    /// Update rounds (each round visits every worker once).
    pub fn round_count(&self) -> u64 {
        ROUNDS_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let rounds = self.round_count();
        let mut space = AddrSpace::new();
        let counters = space.alloc(COUNTERS * 8);
        let privates: Vec<_> = (0..WORKERS).map(|_| space.alloc(PRIVATE_BYTES)).collect();

        engine.scoped_named("main", |e| {
            // Seed every counter so round-one reads have a producer.
            for c in 0..COUNTERS {
                e.write(counters.elem(c, 8), 8);
            }
            e.op(OpClass::IntArith, COUNTERS as u32);
            for round in 0..rounds {
                for w in 0..WORKERS {
                    e.switch_thread(ThreadId::from_raw(w as u32));
                    let private = privates[usize::try_from(w).expect("few workers")];
                    e.scoped_named("update_counter", |e| {
                        // Read-modify-write a rotating shared counter:
                        // its last writer is (almost) always another
                        // thread under the round-robin rotation.
                        let c = counters.elem((round + w) % COUNTERS, 8);
                        e.read(c, 8);
                        e.op(OpClass::IntArith, 6);
                        e.write(c, 8);
                    });
                    e.scoped_named("scan_private", |e| {
                        // Same-thread traffic through the same function
                        // shape: the classifier must keep this out of
                        // the inter-thread tally.
                        let off = (round * 64) % PRIVATE_BYTES;
                        e.read(private.addr(off), 8);
                        e.op(OpClass::IntArith, 4);
                        e.write(private.addr(off), 8);
                    });
                }
            }
            e.switch_thread(ThreadId::MAIN);
            e.scoped_named("sum_counters", |e| {
                for c in 0..COUNTERS {
                    e.read(counters.elem(c, 8), 8);
                    e.op(OpClass::IntArith, 2);
                }
                e.write(counters.base, 8);
            });
        });
        engine.switch_thread(ThreadId::MAIN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced_and_switches_threads() {
        let mut e = Engine::new(CountingObserver::new());
        Mtshare::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
        assert!(counts.thread_switches > 0, "mtshare must switch threads");
    }

    #[test]
    fn rounds_scale_with_input_size() {
        assert_eq!(
            Mtshare::new(InputSize::SimLarge).round_count(),
            Mtshare::new(InputSize::SimSmall).round_count() * 16
        );
    }
}
