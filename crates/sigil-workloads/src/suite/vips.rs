//! `vips`: an image-processing pipeline (affine resample → convolution →
//! colour-space conversion), the paper's reuse deep-dive subject.
//!
//! Paper findings this skeleton reproduces (§IV-B, Figures 9–11):
//!
//! * `conv_gen(1)` has the **highest average reuse lifetime** of the top
//!   functions and `imb_XYZ2Lab` the smallest;
//! * `conv_gen`, `imb_XYZ2Lab` and the `affine_gen` functions are "the
//!   three biggest contributors to the total unique data bytes", each
//!   close to 10%;
//! * `conv_gen`'s lifetime histogram has "a long tail and a central
//!   peak" (data re-read across an entire convolution window sweep);
//! * `imb_XYZ2Lab`'s histogram has "a peak at 0 re-use and a short tail"
//!   (each pixel is re-read immediately, then never again).
//!
//! `conv_gen` is called from two different parent contexts so the
//! profile shows the paper's `conv_gen(1)` / `conv_gen(2)` split.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{AddrSpace, InputSize, Region};

const ROW_PIXELS: u64 = 64;
const ROWS_PER_UNIT: u64 = 32;
const KERNEL_ROWS: u64 = 9;

/// The vips workload.
#[derive(Debug, Clone, Copy)]
pub struct Vips {
    size: InputSize,
}

impl Vips {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Vips { size }
    }

    /// Image rows processed.
    pub fn row_count(&self) -> u64 {
        ROWS_PER_UNIT * self.size.factor()
    }

    fn convolve<O: ExecutionObserver>(
        e: &mut Engine<O>,
        src: Region,
        dst: Region,
        rows: u64,
        band_rows: u64,
    ) {
        // Sliding-window convolution over *bands*: one conv_gen call
        // processes `band_rows` output rows, so each source row is
        // re-read up to KERNEL_ROWS times *within the call*, with a full
        // output row of compute between re-reads — producing the paper's
        // central peak (interior rows share the same re-read spacing)
        // and long tail (band-straddling rows live across the whole
        // sweep).
        let out_rows = rows.saturating_sub(KERNEL_ROWS);
        let mut band_start = 0;
        while band_start < out_rows {
            let band_end = (band_start + band_rows).min(out_rows);
            e.scoped_named("conv_gen", |e| {
                for out_row in band_start..band_end {
                    for k in 0..KERNEL_ROWS {
                        let row = out_row + k;
                        for px in 0..ROW_PIXELS {
                            e.read(src.addr((row * ROW_PIXELS + px) * 4), 4);
                            e.op(OpClass::FloatArith, 2);
                        }
                    }
                    e.op(OpClass::FloatArith, 30);
                    for px in 0..ROW_PIXELS {
                        e.write(dst.addr((out_row * ROW_PIXELS + px) * 4), 4);
                    }
                }
            });
            band_start = band_end;
        }
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let rows = self.row_count();
        let mut space = AddrSpace::new();
        let raw = space.alloc(rows * ROW_PIXELS * 4);
        let resampled = space.alloc(rows * ROW_PIXELS * 4);
        let convolved = space.alloc(rows * ROW_PIXELS * 4);
        let sharpened = space.alloc(rows * ROW_PIXELS * 4);
        let lab = space.alloc(rows * ROW_PIXELS * 4);

        engine.scoped_named("main", |e| {
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < raw.size {
                    e.write(raw.addr(off), 8);
                    off += 8;
                }
            });

            e.scoped_named("im_generate", |e| {
                // Affine resample: each output pixel reads a 2×2 source
                // neighbourhood (moderate, quickly-expiring reuse).
                for row in 0..rows {
                    e.scoped_named("affine_gen", |e| {
                        for px in 0..ROW_PIXELS {
                            let sx = (px * 63) / ROW_PIXELS.max(1);
                            let base = (row * ROW_PIXELS + sx) * 4;
                            e.read(raw.addr(base), 4);
                            e.read(raw.addr((base + 4).min(raw.size - 4)), 4);
                            e.op(OpClass::FloatArith, 4);
                            e.write(resampled.addr((row * ROW_PIXELS + px) * 4), 4);
                        }
                        // Interpolation normalization sweeps part of the
                        // source row again at the end of the call.
                        for px in 0..16 {
                            e.read(raw.addr((row * ROW_PIXELS + px) * 4), 4);
                            e.op(OpClass::FloatArith, 1);
                        }
                    });
                }

                // First convolution pass — context im_generate->conv_gen.
                // Wide bands: long within-call reuse lifetimes.
                Self::convolve(e, resampled, convolved, rows, 16);
            });

            // Second pass from a different parent: the profile records a
            // distinct conv_gen context, the paper's "conv_gen(1)" vs
            // "conv_gen(2)" split; narrower bands give it shorter
            // lifetimes than the first context.
            e.scoped_named("im_sharpen", |e| {
                Self::convolve(e, convolved, sharpened, rows, 6);
            });

            // Pointwise colour conversion: read each pixel twice
            // back-to-back (XYZ then Lab gamma), lifetime ≈ 0, never
            // touched again — apart from a short dithering look-back at
            // each row boundary (the paper's "short tail").
            e.scoped_named("imb_XYZ2Lab", |e| {
                for row in 0..rows {
                    for px in 0..ROW_PIXELS {
                        let addr = sharpened.addr((row * ROW_PIXELS + px) * 4);
                        e.read(addr, 4);
                        e.op(OpClass::FloatArith, 3);
                        e.read(addr, 4);
                        e.op(OpClass::FloatArith, 5);
                        e.write(lab.addr((row * ROW_PIXELS + px) * 4), 4);
                    }
                    // Row-boundary dither: a couple of pixels from two
                    // rows back are revisited — a handful of records with
                    // lifetime ≈ two rows of work, the "short tail".
                    if row >= 2 {
                        for px in 0..2 {
                            e.read(sharpened.addr(((row - 2) * ROW_PIXELS + px) * 4), 4);
                            e.op(OpClass::FloatArith, 1);
                        }
                    }
                }
            });

            e.syscall("sys_write", |e| {
                let mut off = 0;
                while off < lab.size {
                    e.read(lab.addr(off), 8);
                    off += 8;
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Vips::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
        assert!(counts.ops > 50_000);
    }

    #[test]
    fn conv_gen_called_from_two_parents() {
        use sigil_trace::observer::RecordingObserver;
        let mut e = Engine::new(RecordingObserver::new());
        Vips::new(InputSize::SimSmall).run(&mut e);
        let syms = e.symbols().clone();
        assert!(syms.lookup("conv_gen").is_some());
        assert!(syms.lookup("im_generate").is_some());
        assert!(syms.lookup("im_sharpen").is_some());
        assert!(syms.lookup("imb_XYZ2Lab").is_some());
        let _ = e.finish();
    }
}
