//! `freqmine`: frequent-itemset mining with FP-growth.
//!
//! The skeleton reproduces a transaction scan feeding an FP-tree whose
//! nodes are revisited moderately often during mining — populating the
//! middle (1–9) reuse bucket of Figure 8.

use rand::Rng;

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{workload_rng, AddrSpace, InputSize};

const TRANSACTIONS_PER_UNIT: u64 = 256;
const ITEMS_PER_TX: u64 = 8;
const TREE_NODES: u64 = 256;

/// The freqmine workload.
#[derive(Debug, Clone, Copy)]
pub struct Freqmine {
    size: InputSize,
    seed: u64,
}

impl Freqmine {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Freqmine { size, seed: 0xF9 }
    }

    /// Transactions scanned.
    pub fn transaction_count(&self) -> u64 {
        TRANSACTIONS_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let txs = self.transaction_count();
        let mut rng = workload_rng("freqmine", self.seed);
        let mut space = AddrSpace::new();
        let database = space.alloc(txs * ITEMS_PER_TX * 4);
        let tree = space.alloc(TREE_NODES * 32);
        let counts = space.alloc(TREE_NODES * 8);
        let patterns = space.alloc(4096);

        engine.scoped_named("main", |e| {
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < database.size {
                    e.write(database.addr(off), 8);
                    off += 8;
                }
            });

            // Pass 1: item frequency scan.
            e.scoped_named("scan_DB", |e| {
                for t in 0..txs {
                    for i in 0..ITEMS_PER_TX {
                        e.read(database.addr((t * ITEMS_PER_TX + i) * 4), 4);
                        e.op(OpClass::IntArith, 2);
                    }
                }
                let mut off = 0;
                while off < counts.size {
                    e.write(counts.addr(off), 8);
                    off += 8;
                }
            });

            // Pass 2: FP-tree construction (node paths revisited).
            for t in 0..txs {
                e.scoped_named("insert_tree", |e| {
                    let mut node = (t * 7919) % TREE_NODES;
                    for i in 0..ITEMS_PER_TX {
                        e.read(database.addr((t * ITEMS_PER_TX + i) * 4), 4);
                        e.read(tree.addr(node * 32), 16);
                        e.op(OpClass::IntArith, 6);
                        e.write(tree.addr(node * 32), 16);
                        node = (node * 31 + i + 1) % TREE_NODES;
                    }
                });
            }

            // Mining: conditional pattern walks over the tree.
            let walks = txs / 4;
            for w in 0..walks {
                e.scoped_named("FP_growth", |e| {
                    let mut node = (w * 104_729) % TREE_NODES;
                    let depth = 4 + rng.gen_range(0..4u64);
                    for _ in 0..depth {
                        e.read(tree.addr(node * 32), 24);
                        e.read(counts.addr(node * 8), 8);
                        e.op(OpClass::IntArith, 10);
                        // Support check re-reads the count (within-call).
                        e.read(counts.addr(node * 8), 8);
                        e.op(OpClass::IntArith, 2);
                        node = (node * 17 + 3) % TREE_NODES;
                    }
                    e.write(patterns.addr((w * 16) % (patterns.size - 16)), 16);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced_and_deterministic() {
        let run = || {
            let mut e = Engine::new(CountingObserver::new());
            Freqmine::new(InputSize::SimSmall).run(&mut e);
            assert!(e.validate().is_ok());
            e.finish().into_counts()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.calls, a.returns);
    }
}
