//! `raytrace`: Whitted-style ray tracing against a BVH-organized scene.
//!
//! Paper findings this skeleton reproduces: raytrace is one of the
//! memory-"intensive benchmarks" of Figure 6 (large scene footprint),
//! and its upper BVH levels are re-read by every ray — populating the
//! heavily-reused line buckets of Figure 12.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{AddrSpace, InputSize};

const BVH_NODES: u64 = 512;
const TRIANGLES: u64 = 1024;
const RAYS_PER_UNIT: u64 = 512;

/// The raytrace workload.
#[derive(Debug, Clone, Copy)]
pub struct Raytrace {
    size: InputSize,
}

impl Raytrace {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Raytrace { size }
    }

    /// Primary rays cast.
    pub fn ray_count(&self) -> u64 {
        RAYS_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let rays = self.ray_count();
        let mut space = AddrSpace::new();
        let bvh = space.alloc(BVH_NODES * 32);
        let triangles = space.alloc(TRIANGLES * 36);
        let framebuffer = space.alloc(rays * 4);

        engine.scoped_named("main", |e| {
            // Load the scene.
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < bvh.size {
                    e.write(bvh.addr(off), 8);
                    off += 8;
                }
                let mut off = 0;
                while off < triangles.size {
                    e.write(triangles.addr(off), 8);
                    off += 8;
                }
            });

            e.scoped_named("render", |e| {
                for r in 0..rays {
                    e.scoped_named("traverse_bvh", |e| {
                        // Root and upper levels re-read by every ray.
                        let mut node = 0u64;
                        for depth in 0..9u64 {
                            e.read(bvh.addr(node * 32), 32);
                            e.op(OpClass::FloatArith, 32);
                            // Descend pseudo-randomly but deterministically.
                            node = (node * 2 + 1 + ((r >> depth) & 1)).min(BVH_NODES - 1);
                        }
                        // Leaf: intersect a handful of triangles.
                        for k in 0..4u64 {
                            e.scoped_named("intersect_triangle", |e| {
                                let tri = ((node * 13 + k * 7) % TRIANGLES) * 36;
                                e.read(triangles.addr(tri), 36);
                                e.op(OpClass::FloatArith, 22);
                                // Normal computation re-reads vertex 0.
                                e.read(triangles.addr(tri), 12);
                                e.op(OpClass::FloatArith, 6);
                            });
                        }
                    });
                    e.scoped_named("shade", |e| {
                        e.op(OpClass::FloatArith, 16);
                        e.write(framebuffer.addr(r * 4), 4);
                    });
                }
            });

            e.syscall("sys_write", |e| {
                let mut off = 0;
                while off + 8 <= framebuffer.size {
                    e.read(framebuffer.addr(off), 8);
                    off += 8;
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Raytrace::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn bvh_root_is_heavily_reused() {
        // Every ray reads node 0: reads of the root address must equal
        // the ray count (plus initial load).
        let wl = Raytrace::new(InputSize::SimSmall);
        let mut e = Engine::new(CountingObserver::new());
        wl.run(&mut e);
        let counts = e.finish().into_counts();
        assert!(counts.reads > wl.ray_count() * 9, "9 BVH levels per ray");
    }
}
