//! `fluidanimate`: smoothed-particle-hydrodynamics fluid simulation.
//!
//! Paper findings this skeleton reproduces:
//!
//! * §IV-C: "Fluidanimate's path is composed of a single function,
//!   `ComputeForces`. This function does the bulk of the work …
//!   contributing close to **90% of the operations** in the entire
//!   workload" — so the maximum function-level parallelism is ≈ 1
//!   (Figure 13's low end);
//! * every frame's forces depend on the previous frame's positions, so
//!   the `ComputeForces` calls form one long serial dependency chain.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{AddrSpace, InputSize};

const CELLS: u64 = 64;
const PARTICLES_PER_CELL: u64 = 4;
const FRAMES_PER_UNIT: u64 = 3;

/// The fluidanimate workload.
#[derive(Debug, Clone, Copy)]
pub struct Fluidanimate {
    size: InputSize,
}

impl Fluidanimate {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Fluidanimate { size }
    }

    /// Simulated frames.
    pub fn frame_count(&self) -> u64 {
        FRAMES_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let frames = self.frame_count();
        let mut space = AddrSpace::new();
        let particles = space.alloc(CELLS * PARTICLES_PER_CELL * 48); // pos+vel+force
        let densities = space.alloc(CELLS * PARTICLES_PER_CELL * 8);
        let grid = space.alloc(CELLS * 16);

        engine.scoped_named("main", |e| {
            // Initial state.
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < particles.size {
                    e.write(particles.addr(off), 8);
                    off += 8;
                }
            });

            for _frame in 0..frames {
                e.scoped_named("RebuildGrid", |e| {
                    for c in 0..CELLS {
                        e.read(particles.addr(c * PARTICLES_PER_CELL * 48), 8);
                        e.op(OpClass::IntArith, 5);
                        e.write(grid.addr(c * 16), 8);
                    }
                });

                e.scoped_named("ComputeDensities", |e| {
                    for p in 0..CELLS * PARTICLES_PER_CELL {
                        e.read(particles.addr(p * 48), 24);
                        e.op(OpClass::FloatArith, 12);
                        e.write(densities.addr(p * 8), 8);
                    }
                });

                // The dominant kernel: ~90% of all retired ops. Reads the
                // previous frame's positions (written by the previous
                // ComputeForces via AdvanceParticles), creating the serial
                // inter-frame chain.
                e.scoped_named("ComputeForces", |e| {
                    for p in 0..CELLS * PARTICLES_PER_CELL {
                        e.read(particles.addr(p * 48), 24);
                        e.read(densities.addr(p * 8), 8);
                        // Neighbour interactions.
                        for n in 0..8u64 {
                            let q = (p + n + 1) % (CELLS * PARTICLES_PER_CELL);
                            e.read(particles.addr(q * 48), 24);
                            e.op(OpClass::FloatArith, 28);
                        }
                        e.op(OpClass::FloatArith, 40);
                        e.write(particles.addr(p * 48 + 32), 16); // force
                    }
                });

                e.scoped_named("AdvanceParticles", |e| {
                    for p in 0..CELLS * PARTICLES_PER_CELL {
                        e.read(particles.addr(p * 48 + 32), 16);
                        e.op(OpClass::FloatArith, 6);
                        e.write(particles.addr(p * 48), 24); // next positions
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn compute_forces_dominates_ops() {
        // Count ops attributed while inside ComputeForces vs total.
        use sigil_trace::{ExecutionObserver, RuntimeEvent};

        #[derive(Default)]
        struct Split {
            in_cf: bool,
            depth_in_cf: usize,
            cf_ops: u64,
            total_ops: u64,
            cf_id: Option<sigil_trace::FunctionId>,
        }
        impl ExecutionObserver for Split {
            fn on_event(&mut self, ev: RuntimeEvent) {
                match ev {
                    RuntimeEvent::Call { callee } => {
                        if Some(callee) == self.cf_id {
                            self.in_cf = true;
                            self.depth_in_cf = 0;
                        } else if self.in_cf {
                            self.depth_in_cf += 1;
                        }
                    }
                    RuntimeEvent::Return if self.in_cf => {
                        if self.depth_in_cf == 0 {
                            self.in_cf = false;
                        } else {
                            self.depth_in_cf -= 1;
                        }
                    }
                    RuntimeEvent::Op { count, .. } => {
                        self.total_ops += u64::from(count);
                        if self.in_cf {
                            self.cf_ops += u64::from(count);
                        }
                    }
                    _ => {}
                }
            }
        }

        let mut symbols = sigil_trace::SymbolTable::new();
        let cf = symbols.intern("ComputeForces");
        let split = Split {
            cf_id: Some(cf),
            ..Split::default()
        };
        let mut engine = Engine::with_symbols(split, symbols);
        Fluidanimate::new(InputSize::SimSmall).run(&mut engine);
        let split = engine.finish();
        let share = split.cf_ops as f64 / split.total_ops as f64;
        assert!(
            share > 0.80,
            "ComputeForces should be ~90% of ops, got {:.1}%",
            share * 100.0
        );
    }

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Fluidanimate::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }
}
