//! `dedup`: the deduplication/compression pipeline (chunk → fingerprint
//! → dedup lookup → compress → write).
//!
//! Paper findings this skeleton reproduces:
//!
//! * Table II: `sha1_block_data_order` ("the core of the SHA1
//!   calculation"), `_tr_flush_block` ("part of the zlib algorithm"),
//!   `write_file`, `adler32` ("a checksum algorithm optimized for
//!   speed") — breakeven 1.0–1.04;
//! * Table III: `_IO_file_xsgetn`, `memcpy`, `hashtable_search`, `free`,
//!   `isnan`;
//! * §III-A: dedup "touches a large range of addresses" — it is the only
//!   PARSEC benchmark for which the paper needed the shadow-memory FIFO
//!   limit, and the Figure 5 slowdown outlier. The skeleton therefore
//!   streams through a large, never-revisited address range.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{memcpy_call, utility_call, AddrSpace, InputSize};

const CHUNKS_PER_UNIT: u64 = 96;
const CHUNK_BYTES: u64 = 2048;

/// The dedup workload.
#[derive(Debug, Clone, Copy)]
pub struct Dedup {
    size: InputSize,
}

impl Dedup {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Dedup { size }
    }

    /// Chunks processed.
    pub fn chunk_count(&self) -> u64 {
        CHUNKS_PER_UNIT * self.size.factor()
    }

    /// Bytes of streamed input (the large-address-range property).
    pub fn stream_bytes(&self) -> u64 {
        self.chunk_count() * CHUNK_BYTES
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let chunks = self.chunk_count();
        let mut space = AddrSpace::new();
        // One giant streaming buffer: every chunk lives at fresh
        // addresses, forcing the shadow table to keep growing.
        let stream = space.alloc(chunks * CHUNK_BYTES);
        let digests = space.alloc(chunks * 20);
        let hashtable = space.alloc(4096);
        let compressed = space.alloc(chunks * CHUNK_BYTES);
        let scratch = space.alloc(512);

        engine.scoped_named("main", |e| {
            e.write(hashtable.base, 64);
            for c in 0..chunks {
                let chunk = stream.addr(c * CHUNK_BYTES);
                // Pull the next chunk from the input stream. The stream
                // position is read and advanced *before* the ingest, so
                // chunk ingestion is serialized — the real pipeline's
                // ordering constraint.
                e.scoped_named("_IO_file_xsgetn", |e| {
                    e.read(scratch.base, 16);
                    e.op(OpClass::IntArith, 12);
                    e.write(scratch.base, 16);
                    e.syscall("sys_read", |e| {
                        let mut off = 0;
                        while off < CHUNK_BYTES {
                            e.write(chunk + off, 8);
                            off += 8;
                        }
                    });
                });

                // Fingerprint: SHA-1 over the chunk (integer-dense).
                e.scoped_named("sha1_block_data_order", |e| {
                    let mut off = 0;
                    while off < CHUNK_BYTES {
                        e.read(chunk + off, 8);
                        e.op(OpClass::IntArith, 11);
                        off += 8;
                    }
                    e.op(OpClass::IntArith, 80);
                    e.write(digests.addr(c * 20), 8);
                    e.write(digests.addr(c * 20 + 8), 8);
                    e.write(digests.addr(c * 20 + 16), 4);
                });

                // Dedup lookup: probe the hash table.
                e.scoped_named("hashtable_search", |e| {
                    e.read(digests.addr(c * 20), 20);
                    for probe in 0..4u64 {
                        e.read(hashtable.addr((c * 64 + probe * 16) % hashtable.size), 8);
                        e.op(OpClass::IntArith, 4);
                    }
                    e.write(hashtable.addr((c * 64) % hashtable.size), 8);
                });

                // Compress the (unique) chunk.
                e.scoped_named("deflate", |e| {
                    let out = compressed.addr(c * CHUNK_BYTES);
                    let mut off = 0;
                    while off < CHUNK_BYTES {
                        e.read(chunk + off, 8);
                        e.op(OpClass::IntArith, 6);
                        if off % 256 == 0 {
                            e.write(out + off / 2, 8);
                        }
                        off += 8;
                    }
                    // LZ match scan: the window is walked a second time
                    // within the same call (within-call reuse).
                    let mut off = 0;
                    while off < CHUNK_BYTES {
                        e.read(chunk + off, 8);
                        e.op(OpClass::IntArith, 3);
                        off += 16;
                    }
                    e.scoped_named("_tr_flush_block", |e| {
                        let mut off = 0;
                        while off < CHUNK_BYTES / 2 {
                            e.read(out + off, 8);
                            e.op(OpClass::IntArith, 9);
                            e.write(out + off, 8);
                            off += 8;
                        }
                    });
                    e.scoped_named("adler32", |e| {
                        let mut off = 0;
                        while off < CHUNK_BYTES / 2 {
                            e.read(out + off, 8);
                            e.op(OpClass::IntArith, 10);
                            off += 8;
                        }
                        e.write(scratch.addr(32), 8);
                    });
                });

                // Write the compressed chunk out; output offsets are
                // claimed in order, serializing the writes.
                e.scoped_named("write_file", |e| {
                    e.read(scratch.addr(16), 8);
                    e.op(OpClass::IntArith, 6);
                    e.write(scratch.addr(16), 8);
                    let out = compressed.addr(c * CHUNK_BYTES);
                    let mut off = 0;
                    while off < CHUNK_BYTES / 2 {
                        e.read(out + off, 8);
                        e.op(OpClass::IntArith, 7);
                        off += 8;
                    }
                    e.syscall("sys_write", |e| {
                        e.read(out, 8);
                        e.op(OpClass::Agu, 4);
                    });
                });

                if c % 12 == 0 {
                    memcpy_call(e, "memcpy", chunk, scratch.addr(64), 128);
                    utility_call(e, "free", hashtable.base, 24, scratch.addr(200), 8, 10);
                    utility_call(e, "isnan", scratch.addr(32), 8, scratch.addr(208), 8, 6);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn streams_a_large_address_range() {
        let wl = Dedup::new(InputSize::SimSmall);
        assert!(wl.stream_bytes() >= 150_000, "dedup must stream widely");
        let mut e = Engine::new(CountingObserver::new());
        wl.run(&mut e);
        let counts = e.finish().into_counts();
        assert!(counts.bytes_written >= wl.stream_bytes());
    }

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Dedup::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
        assert!(counts.syscalls > 0);
    }
}
