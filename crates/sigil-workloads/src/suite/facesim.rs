//! `facesim`: finite-element simulation of a human face model.
//!
//! Paper findings this skeleton reproduces: facesim is one of the
//! "intensive benchmarks that use larger amounts of memory" (Figure 6)
//! — it sweeps large mesh-state arrays every frame — while its kernels
//! (`Update_Position_Based_State`, `Add_Velocity_Independent_Forces`)
//! are genuinely compute-dense.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{AddrSpace, InputSize};

const TETRAHEDRA: u64 = 1024;
const FRAMES_PER_UNIT: u64 = 1;

/// The facesim workload.
#[derive(Debug, Clone, Copy)]
pub struct Facesim {
    size: InputSize,
}

impl Facesim {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Facesim { size }
    }

    /// Frames simulated.
    pub fn frame_count(&self) -> u64 {
        FRAMES_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let frames = self.frame_count();
        let mut space = AddrSpace::new();
        // Large mesh state: positions, strain tensors, forces.
        let positions = space.alloc(TETRAHEDRA * 96);
        let strain = space.alloc(TETRAHEDRA * 72);
        let forces = space.alloc(TETRAHEDRA * 96);
        let stiffness = space.alloc(TETRAHEDRA * 32);

        engine.scoped_named("main", |e| {
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < positions.size {
                    e.write(positions.addr(off), 8);
                    off += 8;
                }
                let mut off = 0;
                while off < stiffness.size {
                    e.write(stiffness.addr(off), 8);
                    off += 8;
                }
            });

            for _frame in 0..frames {
                e.scoped_named("Update_Position_Based_State", |e| {
                    for t in 0..TETRAHEDRA {
                        e.read(positions.addr(t * 96), 48);
                        // Shared vertices: the neighbouring element's
                        // positions are read again while assembling this
                        // element (within-call reuse).
                        e.read(positions.addr(((t + 1) % TETRAHEDRA) * 96), 24);
                        e.read(stiffness.addr(t * 32), 16);
                        e.op(OpClass::FloatArith, 60);
                        e.write(strain.addr(t * 72), 40);
                    }
                });

                e.scoped_named("Add_Velocity_Independent_Forces", |e| {
                    for t in 0..TETRAHEDRA {
                        e.read(strain.addr(t * 72), 40);
                        e.op(OpClass::FloatArith, 45);
                        e.write(forces.addr(t * 96), 24);
                    }
                });

                e.scoped_named("Euler_Step", |e| {
                    for t in 0..TETRAHEDRA {
                        e.read(forces.addr(t * 96), 24);
                        e.read(positions.addr(t * 96), 24);
                        e.op(OpClass::FloatArith, 12);
                        e.write(positions.addr(t * 96), 24);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn touches_a_large_state_footprint() {
        let mut e = Engine::new(CountingObserver::new());
        Facesim::new(InputSize::SimSmall).run(&mut e);
        let counts = e.finish().into_counts();
        // Mesh state alone is ~300 KB of distinct addresses.
        assert!(counts.bytes_written > 200_000);
    }

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Facesim::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }
}
