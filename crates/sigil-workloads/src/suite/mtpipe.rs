//! `mtpipe`: a multithreaded producer → filter → reduce pipeline over a
//! shared ring buffer — the sharing-heavy counterpart to `dedup`'s
//! serial pipeline.
//!
//! Three guest threads cooperate on every chunk: the main thread
//! *produces* a chunk into a shared ring slot, thread 1 *filters* it
//! into a shared output buffer, and thread 2 *reduces* the output into
//! a running digest. Each stage reads bytes whose last writer is the
//! previous stage's thread, so nearly all pipeline traffic is
//! **inter-thread input** under the cross-thread classification rule —
//! the communication the paper's function-level analysis would have to
//! surface before suggesting a pipeline offload.
//!
//! Inter-thread bytes scale linearly with input size (every chunk is
//! handed across twice), making this a fitting subject for the
//! communication-vs-input-size curves: the fitted exponent should sit
//! near 1.

use sigil_trace::{Engine, ExecutionObserver, OpClass, ThreadId};

use crate::common::{AddrSpace, InputSize};

const CHUNKS_PER_UNIT: u64 = 48;
const CHUNK_BYTES: u64 = 1024;
const RING_SLOTS: u64 = 4;

/// The mtpipe workload.
#[derive(Debug, Clone, Copy)]
pub struct Mtpipe {
    size: InputSize,
}

impl Mtpipe {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Mtpipe { size }
    }

    /// Chunks pushed through the pipeline.
    pub fn chunk_count(&self) -> u64 {
        CHUNKS_PER_UNIT * self.size.factor()
    }

    /// Bytes handed from the producer to the filter stage (and again
    /// from the filter to the reducer): the inter-thread floor.
    pub fn handoff_bytes(&self) -> u64 {
        self.chunk_count() * CHUNK_BYTES
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let filter_thread = ThreadId::from_raw(1);
        let reduce_thread = ThreadId::from_raw(2);
        let chunks = self.chunk_count();
        let mut space = AddrSpace::new();
        let ring = space.alloc(RING_SLOTS * CHUNK_BYTES);
        let out = space.alloc(RING_SLOTS * CHUNK_BYTES);
        let digest = space.alloc(64);

        // Each stage's scoped call opens and closes on its own thread,
        // so every per-thread stack stays balanced; the interleaving is
        // a fixed produce → filter → reduce rotation per chunk.
        engine.scoped_named("main", |e| {
            e.write(digest.base, 32);
            for c in 0..chunks {
                let slot = ring.addr((c % RING_SLOTS) * CHUNK_BYTES);
                let slot_out = out.addr((c % RING_SLOTS) * CHUNK_BYTES);

                e.switch_thread(ThreadId::MAIN);
                e.scoped_named("produce_chunk", |e| {
                    let mut off = 0;
                    while off < CHUNK_BYTES {
                        e.op(OpClass::IntArith, 3);
                        e.write(slot + off, 8);
                        off += 8;
                    }
                });

                e.switch_thread(filter_thread);
                e.scoped_named("filter_chunk", |e| {
                    // Every read's last writer is the main thread:
                    // chunk-sized inter-thread input.
                    let mut off = 0;
                    while off < CHUNK_BYTES {
                        e.read(slot + off, 8);
                        e.op(OpClass::IntArith, 5);
                        e.write(slot_out + off, 8);
                        off += 8;
                    }
                });

                e.switch_thread(reduce_thread);
                e.scoped_named("reduce_chunk", |e| {
                    // Inter-thread from the filter thread, folded into a
                    // digest this thread keeps rewriting (same-thread
                    // repeat traffic after the first chunk).
                    let mut off = 0;
                    while off < CHUNK_BYTES {
                        e.read(slot_out + off, 8);
                        e.op(OpClass::IntArith, 4);
                        off += 16;
                    }
                    e.read(digest.base, 32);
                    e.op(OpClass::IntArith, 12);
                    e.write(digest.base, 32);
                });
            }
            e.switch_thread(ThreadId::MAIN);
            // The producer collects the digest: one last cross-thread hop.
            e.scoped_named("collect_digest", |e| {
                e.read(digest.base, 32);
                e.op(OpClass::IntArith, 8);
                e.write(digest.addr(32), 8);
            });
        });
        engine.switch_thread(ThreadId::MAIN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced_and_switches_threads() {
        let mut e = Engine::new(CountingObserver::new());
        Mtpipe::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
        assert!(counts.thread_switches > 0, "mtpipe must switch threads");
    }

    #[test]
    fn handoff_scales_with_input_size() {
        let small = Mtpipe::new(InputSize::SimSmall).handoff_bytes();
        let large = Mtpipe::new(InputSize::SimLarge).handoff_bytes();
        assert_eq!(large, small * 16);
    }
}
