//! The synthetic benchmark suite: one module per PARSEC 2.1 benchmark
//! the paper profiles, plus SPEC's `libquantum` and two sharing-heavy
//! multithreaded workloads (`mtpipe`, `mtshare`) exercising the
//! inter-thread communication axis.
//!
//! See the crate docs for the substitution rationale. Each module's docs
//! describe which paper findings its communication skeleton reproduces.

pub mod blackscholes;
pub mod bodytrack;
pub mod canneal;
pub mod dedup;
pub mod facesim;
pub mod ferret;
pub mod fluidanimate;
pub mod freqmine;
pub mod libquantum;
pub mod mtpipe;
pub mod mtshare;
pub mod raytrace;
pub mod streamcluster;
pub mod swaptions;
pub mod vips;
pub mod x264;
