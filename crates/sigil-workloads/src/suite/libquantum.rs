//! `libquantum` (SPEC): quantum-computer simulation via gate application
//! over an amplitude vector.
//!
//! Paper finding this skeleton reproduces: libquantum joins
//! streamcluster at the **high end of Figure 13** — gate applications on
//! disjoint amplitude blocks are independent, so the dependency chains
//! are short and wide. (The paper also notes the per-path work is small,
//! so real-world extraction of this parallelism is hard.)

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{AddrSpace, InputSize};

const BLOCKS: u64 = 16;
const AMPLITUDES_PER_BLOCK: u64 = 32;
const GATES_PER_UNIT: u64 = 12;

/// The libquantum workload.
#[derive(Debug, Clone, Copy)]
pub struct Libquantum {
    size: InputSize,
}

impl Libquantum {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Libquantum { size }
    }

    /// Gates applied.
    pub fn gate_count(&self) -> u64 {
        GATES_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let gates = self.gate_count();
        let mut space = AddrSpace::new();
        let state = space.alloc(BLOCKS * AMPLITUDES_PER_BLOCK * 16); // complex f64

        engine.scoped_named("main", |e| {
            // Prepare |0…0⟩.
            e.scoped_named("quantum_new_qureg", |e| {
                let mut off = 0;
                while off < state.size {
                    e.write(state.addr(off), 8);
                    off += 8;
                }
            });

            for g in 0..gates {
                let gate_name = match g % 3 {
                    0 => "quantum_toffoli",
                    1 => "quantum_cnot",
                    _ => "quantum_sigma_x",
                };
                // One call per (gate, block): blocks are disjoint slices
                // of the state vector, so calls within a gate are
                // mutually independent; across gates each block chains
                // only with itself.
                for b in 0..BLOCKS {
                    e.scoped_named(gate_name, |e| {
                        let base = b * AMPLITUDES_PER_BLOCK * 16;
                        for a in 0..AMPLITUDES_PER_BLOCK {
                            e.read(state.addr(base + a * 16), 16);
                            e.op(OpClass::FloatArith, 6);
                            e.op(OpClass::IntArith, 4);
                            e.write(state.addr(base + a * 16), 16);
                        }
                    });
                }
            }

            // Measure: fold probabilities.
            e.scoped_named("quantum_measure", |e| {
                let mut off = 0;
                while off < state.size {
                    e.read(state.addr(off), 16);
                    e.op(OpClass::FloatArith, 2);
                    off += 16;
                }
                e.write(state.addr(0), 8);
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Libquantum::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn one_call_per_gate_block_pair() {
        let mut e = Engine::new(CountingObserver::new());
        let wl = Libquantum::new(InputSize::SimSmall);
        wl.run(&mut e);
        let counts = e.finish().into_counts();
        // main + new_qureg + measure + gates×blocks.
        assert_eq!(counts.calls, 3 + wl.gate_count() * BLOCKS);
    }
}
