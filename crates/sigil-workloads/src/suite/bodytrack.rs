//! `bodytrack`: tracking a human body through multi-camera image
//! sequences with a particle filter.
//!
//! Paper findings this skeleton reproduces:
//!
//! * Table II: `FlexImage::Set` (an image initializer "mostly composed of
//!   memcopy calls" — the paper flags it as a *communication*-acceleration
//!   candidate), `_ieee754_log`, and
//!   `ImageMeasurements::ImageErrorInside` ("measures the Silhouette
//!   error of a complete body on all camera images") with breakeven
//!   ≈ 1.0;
//! * Table III: `std::vector`, `DMatrix` constructors as utility noise.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{math_call, memcpy_call, utility_call, AddrSpace, InputSize};

const CAMERAS: u64 = 4;
const FRAMES_PER_UNIT: u64 = 2;
const PARTICLES: u64 = 24;
const IMAGE_BYTES: u64 = 4096;

/// The bodytrack workload.
#[derive(Debug, Clone, Copy)]
pub struct Bodytrack {
    size: InputSize,
}

impl Bodytrack {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Bodytrack { size }
    }

    /// Frames processed.
    pub fn frame_count(&self) -> u64 {
        FRAMES_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let frames = self.frame_count();
        let mut space = AddrSpace::new();
        let raw_frames = space.alloc(CAMERAS * IMAGE_BYTES);
        let images = space.alloc(CAMERAS * IMAGE_BYTES);
        let particles = space.alloc(PARTICLES * 64);
        let weights = space.alloc(PARTICLES * 8);
        let matrices = space.alloc(512);
        let scratch = space.alloc(256);

        engine.scoped_named("main", |e| {
            e.write(matrices.base, 64);
            for _frame in 0..frames {
                // Load camera images (syscall produces raw bytes).
                e.syscall("sys_read", |e| {
                    let mut off = 0;
                    while off < raw_frames.size {
                        e.write(raw_frames.addr(off), 8);
                        off += 8;
                    }
                });

                // Initialize FlexImages: bulk copies (memcpy-dominated).
                for cam in 0..CAMERAS {
                    utility_call(e, "DMatrix", matrices.base, 40, matrices.addr(64), 24, 16);
                    memcpy_call(
                        e,
                        "FlexImage::Set",
                        raw_frames.addr(cam * IMAGE_BYTES),
                        images.addr(cam * IMAGE_BYTES),
                        IMAGE_BYTES,
                    );
                }
                utility_call(
                    e,
                    "std::vector",
                    matrices.addr(64),
                    32,
                    particles.base,
                    24,
                    20,
                );

                // Particle filter: every particle scores the silhouette
                // error against all camera images.
                for p in 0..PARTICLES {
                    e.scoped_named("ImageMeasurements::ImageErrorInside", |e| {
                        e.read(particles.addr(p * 64), 8);
                        for cam in 0..CAMERAS {
                            // Sample a body-sized window of the image.
                            let window =
                                images.addr(cam * IMAGE_BYTES + (p * 96) % (IMAGE_BYTES - 512));
                            let mut off = 0;
                            while off < 512 {
                                e.read(window + off, 8);
                                e.op(OpClass::FloatArith, 6);
                                // Gradient: the silhouette test samples
                                // each pixel a second time within the call.
                                e.read(window + off, 8);
                                e.op(OpClass::FloatArith, 2);
                                off += 8;
                            }
                        }
                        e.op(OpClass::FloatArith, 200);
                        e.write(weights.addr(p * 8), 8);
                    });
                    math_call(e, "_ieee754_log", weights.addr(p * 8), scratch.base, 28);
                    // Particle update.
                    e.scoped_named("AnnealingFactor", |e| {
                        e.read(weights.addr(p * 8), 8);
                        e.read(scratch.base, 8);
                        e.op(OpClass::FloatArith, 30);
                        e.write(particles.addr(p * 64), 32);
                    });
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced_and_nontrivial() {
        let mut e = Engine::new(CountingObserver::new());
        Bodytrack::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
        assert!(counts.ops > 50_000);
        assert!(counts.bytes_read > CAMERAS * IMAGE_BYTES);
    }

    #[test]
    fn scales_with_input() {
        let mut small = Engine::new(CountingObserver::new());
        Bodytrack::new(InputSize::SimSmall).run(&mut small);
        let mut large = Engine::new(CountingObserver::new());
        Bodytrack::new(InputSize::SimLarge).run(&mut large);
        assert!(
            large.events_emitted() > 10 * small.events_emitted(),
            "simlarge should do ~16x the work"
        );
        let _ = (small.finish(), large.finish());
    }
}
