//! `canneal`: simulated-annealing placement of netlist elements.
//!
//! Paper findings this skeleton reproduces:
//!
//! * Table II: `mul`, `memchr`, `netlist::swap_locations` ("swaps two
//!   vectors"), `memmove`, `std::string::compare` — short, dense
//!   routines with breakeven 1.0–1.1;
//! * Table III: `__mpn_rshift`, `__mpn_lshift`, `free`,
//!   `std::locale::locale`, `std::basic_string` utility noise;
//! * Figure 7: canneal is one of the **low-coverage** outliers — much of
//!   its time sits in the annealing driver itself (`main`'s self code and
//!   communication-dominated helpers), not in accelerable leaves.

use rand::Rng;

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{utility_call, workload_rng, AddrSpace, InputSize};

const ELEMENTS: u64 = 512;
const MOVES_PER_UNIT: u64 = 600;

/// The canneal workload.
#[derive(Debug, Clone, Copy)]
pub struct Canneal {
    size: InputSize,
    seed: u64,
}

impl Canneal {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Canneal { size, seed: 0xCA11 }
    }

    /// Annealing moves attempted.
    pub fn move_count(&self) -> u64 {
        MOVES_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let moves = self.move_count();
        let mut rng = workload_rng("canneal", self.seed);
        let mut space = AddrSpace::new();
        let netlist = space.alloc(ELEMENTS * 32); // element records
        let locations = space.alloc(ELEMENTS * 16); // placement vectors
        let names = space.alloc(ELEMENTS * 24); // element name strings
        let scratch = space.alloc(512);

        engine.scoped_named("main", |e| {
            // Parse the netlist: locale/string utility storm, then the
            // elements arrive from a file.
            utility_call(
                e,
                "std::locale::locale",
                names.base,
                64,
                scratch.base,
                16,
                18,
            );
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < netlist.size {
                    e.write(netlist.addr(off), 8);
                    off += 8;
                }
                let mut off = 0;
                while off < names.size {
                    e.write(names.addr(off), 8);
                    off += 8;
                }
            });
            e.scoped_named("netlist_elem::netlist_elem", |e| {
                let mut off = 0;
                while off < locations.size {
                    e.write(locations.addr(off), 8);
                    e.op(OpClass::IntArith, 1);
                    off += 8;
                }
            });
            utility_call(
                e,
                "std::basic_string",
                names.base,
                48,
                scratch.addr(16),
                24,
                26,
            );

            // Annealing: the driver itself does routing-cost bookkeeping
            // (self cost in main, depressing Figure 7 coverage).
            for _ in 0..moves {
                let a = rng.gen_range(0..ELEMENTS);
                let b = rng.gen_range(0..ELEMENTS);

                // Pick elements by scanning names.
                e.scoped_named("memchr", |e| {
                    let start = names.addr((a * 24) % (names.size - 64));
                    for k in 0..6u64 {
                        e.read(start + k * 8, 8);
                        e.op(OpClass::IntArith, 3);
                    }
                    e.write(scratch.addr(40), 8);
                });
                e.scoped_named("std::string::compare", |e| {
                    e.read(names.addr(a * 24), 16);
                    e.read(names.addr(b * 24), 16);
                    e.op(OpClass::IntArith, 14);
                    e.write(scratch.addr(48), 8);
                });

                // Routing-cost delta: fixed-point multiplies.
                e.scoped_named("mul", |e| {
                    e.read(netlist.addr(a * 32), 16);
                    e.read(netlist.addr(b * 32), 16);
                    e.op(OpClass::IntMulDiv, 30);
                    // Delta is computed before and after the tentative
                    // move: both records are re-read within the call.
                    e.read(netlist.addr(a * 32), 16);
                    e.read(netlist.addr(b * 32), 16);
                    e.op(OpClass::IntArith, 12);
                    e.write(scratch.addr(56), 8);
                });

                // Accept: swap the two location vectors.
                if rng.gen_bool(0.5) {
                    e.scoped_named("netlist::swap_locations", |e| {
                        e.read(locations.addr(a * 16), 16);
                        e.read(locations.addr(b * 16), 16);
                        e.op(OpClass::IntArith, 18);
                        e.write(locations.addr(a * 16), 16);
                        e.write(locations.addr(b * 16), 16);
                    });
                } else {
                    e.scoped_named("memmove", |e| {
                        e.read(locations.addr(a * 16), 16);
                        e.op(OpClass::IntArith, 10);
                        e.op(OpClass::Agu, 4);
                        e.write(scratch.addr(64), 16);
                    });
                }

                // Driver self-work: temperature schedule, acceptance
                // test, cost bookkeeping — substantial, and stuck in the
                // annealing loop itself (the paper's low-coverage shape).
                e.read(scratch.addr(56), 8);
                e.op(OpClass::FloatArith, 60);
                e.op(OpClass::IntArith, 40);
                e.write(scratch.addr(72), 8);

                // Multiprecision utility noise.
                if rng.gen_ratio(1, 16) {
                    utility_call(
                        e,
                        "__mpn_rshift",
                        scratch.addr(56),
                        24,
                        scratch.addr(80),
                        16,
                        12,
                    );
                    utility_call(
                        e,
                        "__mpn_lshift",
                        scratch.addr(80),
                        24,
                        scratch.addr(96),
                        16,
                        12,
                    );
                }
                if rng.gen_ratio(1, 32) {
                    utility_call(
                        e,
                        "free",
                        netlist.addr(a * 32),
                        24,
                        scratch.addr(104),
                        8,
                        10,
                    );
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new(CountingObserver::new());
            Canneal::new(InputSize::SimSmall).run(&mut e);
            e.finish().into_counts()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Canneal::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
        assert!(counts.ops > 50_000);
    }
}
