//! `ferret`: content-based image similarity search (segment → extract →
//! index → rank pipeline).
//!
//! Paper finding this skeleton reproduces: ferret is a **low-coverage**
//! outlier in Figure 7 — "functions with low coverage indicate fewer
//! 'hot code' regions". The pipeline spreads its time across many
//! stages, each shuffling feature vectors with modest compute.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{memcpy_call, utility_call, AddrSpace, InputSize};

const QUERIES_PER_UNIT: u64 = 8;
const FEATURE_BYTES: u64 = 768;
const DB_ENTRIES: u64 = 32;

/// The ferret workload.
#[derive(Debug, Clone, Copy)]
pub struct Ferret {
    size: InputSize,
}

impl Ferret {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Ferret { size }
    }

    /// Queries executed.
    pub fn query_count(&self) -> u64 {
        QUERIES_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let queries = self.query_count();
        let mut space = AddrSpace::new();
        let image = space.alloc(4096);
        let segments = space.alloc(2048);
        let features = space.alloc(FEATURE_BYTES);
        let db = space.alloc(DB_ENTRIES * FEATURE_BYTES);
        let candidates = space.alloc(DB_ENTRIES * 16);
        let scratch = space.alloc(512);

        engine.scoped_named("main", |e| {
            // Load the feature database.
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < db.size {
                    e.write(db.addr(off), 8);
                    off += 8;
                }
            });

            for _q in 0..queries {
                e.syscall("sys_read", |e| {
                    let mut off = 0;
                    while off < image.size {
                        e.write(image.addr(off), 8);
                        off += 8;
                    }
                });

                // Segmentation: sweeps the image, writes region labels.
                e.scoped_named("image_segment", |e| {
                    let mut off = 0;
                    while off < image.size {
                        e.read(image.addr(off), 8);
                        e.op(OpClass::IntArith, 2);
                        off += 8;
                    }
                    let mut off = 0;
                    while off < segments.size {
                        e.write(segments.addr(off), 8);
                        off += 8;
                    }
                });

                // Feature extraction: moderate compute over the segments.
                e.scoped_named("feature_extract", |e| {
                    let mut off = 0;
                    while off < segments.size {
                        e.read(segments.addr(off), 8);
                        e.op(OpClass::FloatArith, 3);
                        off += 8;
                    }
                    let mut off = 0;
                    while off < features.size {
                        e.write(features.addr(off), 8);
                        off += 8;
                    }
                });
                utility_call(
                    e,
                    "std::basic_string",
                    features.base,
                    24,
                    scratch.base,
                    16,
                    14,
                );

                // Index probe: hash-bucket reads, little compute.
                e.scoped_named("LSH_query", |e| {
                    e.read(features.base, 64);
                    e.op(OpClass::IntArith, 20);
                    for c in 0..DB_ENTRIES {
                        e.read(db.addr(c * FEATURE_BYTES), 16);
                        e.op(OpClass::IntArith, 2);
                        e.write(candidates.addr(c * 16), 8);
                    }
                });

                // Ranking: earth-mover's distance per candidate.
                for c in 0..DB_ENTRIES {
                    e.scoped_named("emd", |e| {
                        // Earth-mover's distance iterates to a fixed
                        // point: both vectors are swept twice within the
                        // call.
                        for _iter in 0..2 {
                            let mut off = 0;
                            while off < FEATURE_BYTES / 4 {
                                e.read(features.addr(off), 8);
                                e.read(db.addr(c * FEATURE_BYTES + off), 8);
                                e.op(OpClass::FloatArith, 4);
                                off += 8;
                            }
                        }
                        e.write(candidates.addr(c * 16 + 8), 8);
                    });
                }
                memcpy_call(e, "memcpy", candidates.base, scratch.addr(64), 128);

                // Driver self-work: final ranking and output assembly in
                // the pipeline driver itself — uncovered by any candidate
                // leaf (the paper's low-coverage shape).
                for c in 0..DB_ENTRIES {
                    e.read(candidates.addr(c * 16), 16);
                    e.op(OpClass::FloatArith, 80);
                    e.op(OpClass::IntArith, 60);
                }
                e.write(scratch.addr(192), 32);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Ferret::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn pipeline_stages_all_present() {
        use sigil_trace::observer::RecordingObserver;
        let mut e = Engine::new(RecordingObserver::new());
        Ferret::new(InputSize::SimSmall).run(&mut e);
        let syms = e.symbols().clone();
        for name in ["image_segment", "feature_extract", "LSH_query", "emd"] {
            assert!(syms.lookup(name).is_some(), "missing {name}");
        }
        let _ = e.finish();
    }
}
