//! `x264`: H.264 video encoding (motion estimation + transform).
//!
//! The skeleton reproduces the encoder's signature memory behaviour: SAD
//! motion search re-reads reference-frame windows many times (high
//! line-level reuse, Figure 12), and each frame depends on the
//! reconstructed previous frame.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{AddrSpace, InputSize};

const FRAME_BYTES: u64 = 8192;
const MACROBLOCKS: u64 = 16;
const SEARCH_POSITIONS: u64 = 12;
const FRAMES_PER_UNIT: u64 = 2;

/// The x264 workload.
#[derive(Debug, Clone, Copy)]
pub struct X264 {
    size: InputSize,
}

impl X264 {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        X264 { size }
    }

    /// Frames encoded.
    pub fn frame_count(&self) -> u64 {
        FRAMES_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let frames = self.frame_count();
        let mut space = AddrSpace::new();
        let current = space.alloc(FRAME_BYTES);
        let reference = space.alloc(FRAME_BYTES);
        let residual = space.alloc(FRAME_BYTES / 4);
        let bitstream = space.alloc(FRAME_BYTES / 8);

        engine.scoped_named("main", |e| {
            // Bootstrap reference frame.
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < reference.size {
                    e.write(reference.addr(off), 8);
                    off += 8;
                }
            });

            for _f in 0..frames {
                e.syscall("sys_read", |e| {
                    let mut off = 0;
                    while off < current.size {
                        e.write(current.addr(off), 8);
                        off += 8;
                    }
                });

                for mb in 0..MACROBLOCKS {
                    let mb_off = mb * (FRAME_BYTES / MACROBLOCKS);
                    // Motion search: SAD against SEARCH_POSITIONS
                    // overlapping reference windows — the same reference
                    // lines are re-read once per position.
                    e.scoped_named("x264_me_search_ref", |e| {
                        // The search loop re-reads the current macroblock
                        // once per candidate position (within-call reuse,
                        // 8 re-reads per byte), against fresh reference
                        // windows.
                        for pos in 0..SEARCH_POSITIONS {
                            let window = (mb_off + pos * 8) % (FRAME_BYTES - 256);
                            let mut off = 0;
                            while off < 256 {
                                e.read(current.addr(mb_off + off), 8);
                                e.read(reference.addr(window + off), 8);
                                e.op(OpClass::IntArith, 3);
                                off += 8;
                            }
                        }
                        // Sub-pel refinement of the winning position.
                        e.scoped_named("x264_pixel_sad_16x16", |e| {
                            let mut off = 0;
                            while off < 256 {
                                e.read(current.addr(mb_off + off), 8);
                                e.read(reference.addr(mb_off + off), 8);
                                e.op(OpClass::IntArith, 3);
                                off += 8;
                            }
                        });
                        e.op(OpClass::IntArith, 30);
                    });

                    // Transform + quantize the residual.
                    e.scoped_named("x264_dct4x4", |e| {
                        let mut off = 0;
                        while off < 64 {
                            e.read(current.addr(mb_off + off), 8);
                            e.op(OpClass::IntArith, 8);
                            e.write(residual.addr((mb * 64 + off) % (residual.size - 8)), 8);
                            off += 8;
                        }
                    });

                    // Entropy code.
                    e.scoped_named("x264_cabac_encode", |e| {
                        let mut off = 0;
                        while off < 64 {
                            e.read(residual.addr((mb * 64 + off) % (residual.size - 8)), 8);
                            e.op(OpClass::IntArith, 12);
                            off += 8;
                        }
                        e.write(bitstream.addr((mb * 16) % (bitstream.size - 16)), 16);
                    });
                }

                // Reconstruct: current becomes the next reference.
                e.scoped_named("x264_frame_recon", |e| {
                    let mut off = 0;
                    while off < FRAME_BYTES {
                        e.read(current.addr(off), 8);
                        e.op(OpClass::IntArith, 1);
                        e.write(reference.addr(off), 8);
                        off += 8;
                    }
                });
            }

            e.syscall("sys_write", |e| {
                let mut off = 0;
                while off < bitstream.size {
                    e.read(bitstream.addr(off), 8);
                    off += 8;
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        X264::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn reference_frame_is_reread_per_search_position() {
        let mut e = Engine::new(CountingObserver::new());
        let wl = X264::new(InputSize::SimSmall);
        wl.run(&mut e);
        let counts = e.finish().into_counts();
        let sad_reads = wl.frame_count() * MACROBLOCKS * SEARCH_POSITIONS * (256 / 8) * 2;
        assert!(counts.reads >= sad_reads);
    }
}
