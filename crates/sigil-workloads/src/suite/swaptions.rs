//! `swaptions`: Heath–Jarrow–Morton Monte-Carlo swaption pricing.
//!
//! Paper finding this skeleton reproduces: swaptions is one of the
//! **low-coverage** outliers in Figure 7 — its hot functions either sit
//! in the simulation driver's self code or move too much path-matrix
//! data per unit of compute to be attractive accelerator candidates.

use sigil_trace::{Engine, ExecutionObserver, OpClass};

use crate::common::{utility_call, AddrSpace, InputSize};

const SWAPTIONS_PER_UNIT: u64 = 4;
const TRIALS: u64 = 16;
const PATH_BYTES: u64 = 1536;

/// The swaptions workload.
#[derive(Debug, Clone, Copy)]
pub struct Swaptions {
    size: InputSize,
}

impl Swaptions {
    /// Creates the workload at the given input size.
    pub fn new(size: InputSize) -> Self {
        Swaptions { size }
    }

    /// Swaptions priced.
    pub fn swaption_count(&self) -> u64 {
        SWAPTIONS_PER_UNIT * self.size.factor()
    }

    /// Runs the workload.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) {
        let n = self.swaption_count();
        let mut space = AddrSpace::new();
        let params = space.alloc(n * 64);
        let path = space.alloc(PATH_BYTES);
        let discounts = space.alloc(512);
        let results = space.alloc(n * 16);
        let rng_state = space.alloc(32);
        let scratch = space.alloc(256);

        engine.scoped_named("main", |e| {
            e.syscall("sys_read", |e| {
                let mut off = 0;
                while off < params.size {
                    e.write(params.addr(off), 8);
                    off += 8;
                }
            });
            e.write(rng_state.base, 16);

            for s in 0..n {
                utility_call(
                    e,
                    "std::vector",
                    params.addr(s * 64),
                    32,
                    scratch.base,
                    24,
                    16,
                );
                for _t in 0..TRIALS {
                    // Generate one forward-rate path: writes a large
                    // matrix, reads parameters — communication-heavy
                    // relative to its compute.
                    e.scoped_named("HJM_SimPath_Forward_Blocking", |e| {
                        e.read(params.addr(s * 64), 32);
                        // RanUnif is compute-dense with self-local state:
                        // its breakeven beats HJM's, which keeps HJM
                        // expanded — the driver's path loop stays
                        // uncovered (the paper's low-coverage shape).
                        e.scoped_named("RanUnif", |e| {
                            e.read(rng_state.base, 16);
                            e.op(OpClass::IntMulDiv, 24);
                            e.op(OpClass::IntArith, 36);
                            e.write(rng_state.base, 16);
                        });
                        let mut off = 0;
                        while off < PATH_BYTES {
                            e.read(rng_state.base, 8);
                            e.op(OpClass::FloatArith, 3);
                            e.write(path.addr(off), 8);
                            off += 8;
                        }
                    });

                    // Discount factors over the path.
                    e.scoped_named("Discount_Factors_Blocking", |e| {
                        let mut off = 0;
                        while off < PATH_BYTES {
                            e.read(path.addr(off), 8);
                            e.op(OpClass::FloatArith, 2);
                            off += 8;
                        }
                        let mut off = 0;
                        while off < discounts.size {
                            e.write(discounts.addr(off), 8);
                            off += 8;
                        }
                    });

                    // Driver self-work: accumulate the payoff.
                    e.read(discounts.base, 32);
                    e.op(OpClass::FloatArith, 24);
                    e.write(results.addr(s * 16), 16);
                }
                utility_call(e, "free", scratch.base, 24, scratch.addr(64), 8, 10);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn trace_is_balanced() {
        let mut e = Engine::new(CountingObserver::new());
        Swaptions::new(InputSize::SimSmall).run(&mut e);
        assert!(e.validate().is_ok());
        let counts = e.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn path_generation_is_communication_heavy() {
        let mut e = Engine::new(CountingObserver::new());
        Swaptions::new(InputSize::SimSmall).run(&mut e);
        let counts = e.finish().into_counts();
        // Bytes moved should rival retired compute ops (low arithmetic
        // intensity — the reason coverage is poor).
        assert!(counts.bytes_read + counts.bytes_written > counts.ops);
    }
}
