//! Synthetic workload suite for `sigil-rs`.
//!
//! The paper evaluates Sigil on the **serial versions of the PARSEC 2.1
//! benchmarks** (plus SPEC's `libquantum` for the critical-path study),
//! with `simsmall`/`simmedium`/`simlarge` inputs. Shipping and running
//! the real PARSEC binaries is impossible here (they require a native
//! x86 toolchain and Valgrind); instead, each module in [`suite`]
//! reproduces a benchmark's **communication skeleton**:
//!
//! * the function names the paper reports (`sha1_block_data_order`,
//!   `conv_gen`, `imb_XYZ2Lab`, `ComputeForces`,
//!   `netlist::swap_locations`, the `_ieee754_*` math calls, …),
//! * the call-tree shape and per-function operation/byte mix,
//! * the data-reuse profile (e.g. `vips`'s `conv_gen` long-tail
//!   lifetimes vs `imb_XYZ2Lab`'s zero-reuse peak),
//! * and the dependency structure that determines function-level
//!   parallelism (e.g. `fluidanimate`'s serial `ComputeForces` chain vs
//!   `streamcluster`'s many short independent paths).
//!
//! All workloads are deterministic (seeded [`rand::rngs::SmallRng`]), so
//! every figure regenerates bit-identically.
//!
//! # Example
//!
//! ```
//! use sigil_workloads::{Benchmark, InputSize};
//! use sigil_trace::{Engine, observer::CountingObserver};
//!
//! let mut engine = Engine::new(CountingObserver::new());
//! Benchmark::Blackscholes.run(InputSize::SimSmall, &mut engine);
//! let counts = engine.finish().into_counts();
//! assert!(counts.calls > 0 && counts.ops > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod registry;
pub mod suite;
pub mod vm_kernels;

pub use common::{AddrSpace, InputSize, Region};
pub use registry::Benchmark;
