//! Guest programs for the `sigil-vm` interpreter.
//!
//! These kernels exercise the DBI path: the VM executes them as
//! unmodified guest binaries while the profilers observe. They are used
//! by the examples and by the VM-overhead benchmarks.

use sigil_vm::{FaluOp, Program, ProgramBuilder};

/// A program that allocates two `n`-element vectors, fills them, and sums
/// them element-wise through a `vadd` function, returning the checksum of
/// the result.
///
/// # Panics
///
/// Panics if the generated program fails verification (a bug in this
/// module, not in the caller's input).
pub fn vector_add(n: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    let vadd = pb.declare("vadd");

    // main: r0=a, r1=b, r2=c, r3=i, r4=scratch, r5=tmp, r6=checksum
    let mut main = pb.function("main", 8);
    main.alloc_imm(0, n * 8);
    main.alloc_imm(1, n * 8);
    main.alloc_imm(2, n * 8);
    // Fill a[i] = i, b[i] = 2i.
    main.loop_range(3, 4, 0, n, |f| {
        f.imm(5, 8);
        f.mul(5, 3, 5); // offset = i*8
        f.add(5, 0, 5); // &a[i]
        f.store(3, 5, 0, 8);
        f.sub(5, 5, 0);
        f.add(5, 1, 5); // &b[i]
        f.imm(6, 2);
        f.mul(6, 3, 6);
        f.store(6, 5, 0, 8);
    });
    main.call(vadd, &[0, 1, 2], None);
    // Checksum c.
    main.imm(6, 0);
    main.loop_range(3, 4, 0, n, |f| {
        f.imm(5, 8);
        f.mul(5, 3, 5);
        f.add(5, 2, 5);
        f.load(5, 5, 0, 8);
        f.add(6, 6, 5);
    });
    main.ret_reg(6);
    main.finish();

    // vadd(a, b, c): r0..r2 args, r3=i, r4=scratch, r5/r6/r7 temps.
    let mut f = pb.define(vadd, 8);
    // Capture n via an immediate (compiled-in length).
    f.loop_range(3, 4, 0, n, |f| {
        f.imm(5, 8);
        f.mul(5, 3, 5);
        f.add(6, 0, 5);
        f.load(6, 6, 0, 8); // a[i]
        f.add(7, 1, 5);
        f.load(7, 7, 0, 8); // b[i]
        f.add(6, 6, 7);
        f.add(7, 2, 5);
        f.store(6, 7, 0, 8); // c[i]
    });
    f.ret();
    f.finish();

    pb.build().expect("vector_add generates a valid program")
}

/// A recursive Fibonacci program (exercises deep call trees and the
/// calltree context machinery).
///
/// # Panics
///
/// Panics if the generated program fails verification.
pub fn fibonacci(n: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    let fib = pb.declare("fib");

    let mut main = pb.function("main", 2);
    main.imm(0, n);
    main.call(fib, &[0], Some(1));
    main.ret_reg(1);
    main.finish();

    // fib(n): r0 = n, r1/r2 temps, r3 cond.
    let mut f = pb.define(fib, 4);
    let base = f.block();
    let rec = f.block();
    f.imm(1, 2);
    f.cmplt(3, 0, 1); // n < 2 ?
    f.br(3, base, rec);
    f.switch_to(base);
    f.ret_reg(0);
    f.switch_to(rec);
    f.imm(1, 1);
    f.sub(1, 0, 1); // n-1
    f.call(fib, &[1], Some(2));
    f.imm(1, 2);
    f.sub(1, 0, 1); // n-2
    f.mov(3, 2); // save fib(n-1)
    f.call(fib, &[1], Some(2));
    f.add(2, 2, 3);
    f.ret_reg(2);
    f.finish();

    pb.build().expect("fibonacci generates a valid program")
}

/// A streaming dot-product over two float vectors with a separate
/// producer function (exercises producer→consumer classification on
/// VM-executed code).
///
/// # Panics
///
/// Panics if the generated program fails verification.
pub fn dot_product(n: u64) -> Program {
    let mut pb = ProgramBuilder::new();
    let fill = pb.declare("fill");
    let dot = pb.declare("dot");

    let mut main = pb.function("main", 4);
    main.alloc_imm(0, n * 8);
    main.alloc_imm(1, n * 8);
    main.call(fill, &[0], None);
    main.call(fill, &[1], None);
    main.call(dot, &[0, 1], Some(2));
    main.ret_reg(2);
    main.finish();

    // fill(p): writes float(i) at p[i].
    let mut f = pb.define(fill, 6);
    f.loop_range(1, 2, 0, n, |f| {
        f.imm(3, 8);
        f.mul(3, 1, 3);
        f.add(3, 0, 3);
        f.store(1, 3, 0, 8);
    });
    f.ret();
    f.finish();

    // dot(a, b): accumulates bitwise-float products.
    let mut f = pb.define(dot, 8);
    f.fimm(6, 0.0);
    f.loop_range(2, 3, 0, n, |f| {
        f.imm(4, 8);
        f.mul(4, 2, 4);
        f.add(5, 0, 4);
        f.load(5, 5, 0, 8);
        f.add(7, 1, 4);
        f.load(7, 7, 0, 8);
        f.falu(FaluOp::FMul, 5, 5, 7);
        f.falu(FaluOp::FAdd, 6, 6, 5);
    });
    f.ret_reg(6);
    f.finish();

    pb.build().expect("dot_product generates a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;
    use sigil_trace::Engine;
    use sigil_vm::Interpreter;

    fn execute(program: &Program) -> Option<u64> {
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(program)
            .run(&mut engine)
            .expect("kernel must not trap");
        let _ = engine.finish();
        result
    }

    #[test]
    fn vector_add_checksum() {
        // c[i] = i + 2i = 3i; sum = 3 * n(n-1)/2.
        let n = 10;
        assert_eq!(execute(&vector_add(n)), Some(3 * n * (n - 1) / 2));
    }

    #[test]
    fn fibonacci_value() {
        assert_eq!(execute(&fibonacci(10)), Some(55));
        assert_eq!(execute(&fibonacci(1)), Some(1));
        assert_eq!(execute(&fibonacci(0)), Some(0));
    }

    #[test]
    fn dot_product_runs_clean() {
        // fill writes integers reinterpreted as f64 bit patterns; the
        // checksum value is not meaningful, but execution must complete
        // with a balanced trace.
        let program = dot_product(16);
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&program).run(&mut engine);
        assert!(result.is_ok());
        let counts = engine.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
        assert!(counts.reads >= 32);
    }
}
