//! Shared infrastructure for the synthetic workloads.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sigil_trace::{Addr, Engine, ExecutionObserver, OpClass};

/// PARSEC input-size classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSize {
    /// The paper's primary evaluation size.
    SimSmall,
    /// 4× the work of `simsmall`.
    SimMedium,
    /// 16× the work of `simsmall`.
    SimLarge,
}

impl InputSize {
    /// All sizes, smallest first.
    pub const ALL: [InputSize; 3] = [
        InputSize::SimSmall,
        InputSize::SimMedium,
        InputSize::SimLarge,
    ];

    /// Work multiplier relative to `simsmall`.
    pub const fn factor(self) -> u64 {
        match self {
            InputSize::SimSmall => 1,
            InputSize::SimMedium => 4,
            InputSize::SimLarge => 16,
        }
    }

    /// PARSEC-style name.
    pub const fn name(self) -> &'static str {
        match self {
            InputSize::SimSmall => "simsmall",
            InputSize::SimMedium => "simmedium",
            InputSize::SimLarge => "simlarge",
        }
    }
}

impl std::fmt::Display for InputSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A contiguous range of synthetic guest addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// First byte address.
    pub base: Addr,
    /// Extent in bytes.
    pub size: u64,
}

impl Region {
    /// Address of byte `i` within the region.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (debug builds only).
    pub fn addr(&self, i: u64) -> Addr {
        debug_assert!(
            i < self.size,
            "offset {i} out of region of {} bytes",
            self.size
        );
        self.base + i
    }

    /// Address of the `i`-th `width`-byte element.
    pub fn elem(&self, i: u64, width: u64) -> Addr {
        self.addr(i * width)
    }

    /// Number of `width`-byte elements that fit.
    pub fn len(&self, width: u64) -> u64 {
        self.size / width
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

/// A bump allocator handing out non-overlapping [`Region`]s of the
/// synthetic guest address space. Each workload creates its own space,
/// so profiles are deterministic and workloads never alias.
#[derive(Debug, Clone)]
pub struct AddrSpace {
    next: Addr,
}

impl AddrSpace {
    /// Creates an address space starting at a canonical heap base.
    pub fn new() -> Self {
        AddrSpace { next: 0x1000_0000 }
    }

    /// Allocates `size` bytes, 64-byte aligned (so distinct buffers never
    /// share a cache line).
    pub fn alloc(&mut self, size: u64) -> Region {
        let base = self.next;
        self.next += size.max(1).div_ceil(64) * 64;
        Region { base, size }
    }
}

impl Default for AddrSpace {
    fn default() -> Self {
        AddrSpace::new()
    }
}

/// Deterministic RNG for a workload: the seed mixes the workload name so
/// different benchmarks decorrelate.
pub fn workload_rng(name: &str, seed: u64) -> SmallRng {
    let mut h = seed ^ 0x51_67_1C_5Eu64;
    for b in name.bytes() {
        h = h.wrapping_mul(0x100000001b3).wrapping_add(u64::from(b));
    }
    SmallRng::seed_from_u64(h)
}

/// Emits a math-library call (`_ieee754_exp` and friends): reads an
/// 8-byte argument, performs `flops` float ops, writes an 8-byte result.
///
/// These calls dominate the paper's Table II for `blackscholes`: tight
/// compute with tiny unique I/O, hence breakeven speedups close to 1.
pub fn math_call<O: ExecutionObserver>(
    e: &mut Engine<O>,
    name: &str,
    arg: Addr,
    ret: Addr,
    flops: u32,
) {
    e.scoped_named(name, |e| {
        e.read(arg, 8);
        e.op(OpClass::FloatArith, flops);
        e.write(ret, 8);
    });
}

/// Emits a `memcpy`-style routine: bulk reads and writes, almost no
/// compute. Such functions appear in the paper's Table III (utility
/// functions with poor breakeven) and as `FlexImage::Set` in bodytrack.
pub fn memcpy_call<O: ExecutionObserver>(
    e: &mut Engine<O>,
    name: &str,
    src: Addr,
    dst: Addr,
    bytes: u64,
) {
    e.scoped_named(name, |e| {
        let mut off = 0;
        while off < bytes {
            let chunk = (bytes - off).min(8) as u32;
            e.read(src + off, chunk);
            e.write(dst + off, chunk);
            off += u64::from(chunk);
        }
        e.op(OpClass::Agu, (bytes / 8).max(1) as u32);
    });
}

/// Emits a small utility call (constructor/destructor/allocator-style):
/// reads `in_bytes` of caller-produced state (e.g. heap metadata,
/// arguments), performs a little integer work, writes `out_bytes` of
/// results. The paper's Table III is populated by exactly these
/// (`free`, `operator new`, `std::vector`, `std::string::assign`, …):
/// communication-heavy relative to their compute, hence poor breakeven.
pub fn utility_call<O: ExecutionObserver>(
    e: &mut Engine<O>,
    name: &str,
    input: Addr,
    in_bytes: u32,
    out: Addr,
    out_bytes: u32,
    ops: u32,
) {
    e.scoped_named(name, |e| {
        let mut off = 0;
        while off < in_bytes {
            let chunk = (in_bytes - off).min(8);
            e.read(input + u64::from(off), chunk);
            off += chunk;
        }
        e.op(OpClass::IntArith, ops.max(1));
        let mut off = 0;
        while off < out_bytes {
            let chunk = (out_bytes - off).min(8);
            e.write(out + u64::from(off), chunk);
            off += chunk;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn input_size_factors_scale_up() {
        assert_eq!(InputSize::SimSmall.factor(), 1);
        assert_eq!(InputSize::SimMedium.factor(), 4);
        assert_eq!(InputSize::SimLarge.factor(), 16);
        assert_eq!(InputSize::SimSmall.name(), "simsmall");
    }

    #[test]
    fn addr_space_hands_out_disjoint_aligned_regions() {
        let mut space = AddrSpace::new();
        let a = space.alloc(100);
        let b = space.alloc(1);
        assert_eq!(a.base % 64, 0);
        assert_eq!(b.base % 64, 0);
        assert!(b.base >= a.base + a.size);
    }

    #[test]
    fn region_indexing() {
        let r = Region {
            base: 0x100,
            size: 64,
        };
        assert_eq!(r.addr(3), 0x103);
        assert_eq!(r.elem(2, 8), 0x110);
        assert_eq!(r.len(8), 8);
        assert!(!r.is_empty());
    }

    #[test]
    fn rng_is_deterministic_and_name_sensitive() {
        let mut a = workload_rng("vips", 1);
        let mut b = workload_rng("vips", 1);
        let mut c = workload_rng("dedup", 1);
        let (va, vb, vc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn math_call_reads_arg_writes_result() {
        let mut e = Engine::new(CountingObserver::new());
        math_call(&mut e, "_ieee754_exp", 0x10, 0x20, 20);
        let counts = e.finish().into_counts();
        assert_eq!(counts.bytes_read, 8);
        assert_eq!(counts.bytes_written, 8);
        assert_eq!(counts.ops, 20);
        assert_eq!(counts.calls, 1);
    }

    #[test]
    fn memcpy_call_moves_every_byte() {
        let mut e = Engine::new(CountingObserver::new());
        memcpy_call(&mut e, "memcpy", 0x100, 0x200, 20);
        let counts = e.finish().into_counts();
        assert_eq!(counts.bytes_read, 20);
        assert_eq!(counts.bytes_written, 20);
    }

    #[test]
    fn utility_call_reads_input_writes_output() {
        let mut e = Engine::new(CountingObserver::new());
        utility_call(&mut e, "free", 0x300, 16, 0x400, 8, 6);
        let counts = e.finish().into_counts();
        assert_eq!(counts.bytes_read, 16);
        assert_eq!(counts.bytes_written, 8);
        assert_eq!(counts.ops, 6);
    }
}
