//! Uniform access to the whole benchmark suite.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use sigil_trace::{Engine, ExecutionObserver};

use crate::common::InputSize;
use crate::suite;

/// Every benchmark in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Raytrace,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
    Libquantum,
    Mtpipe,
    Mtshare,
}

impl Benchmark {
    /// Every benchmark: PARSEC first, then SPEC's `libquantum`, then the
    /// sharing-heavy multithreaded workloads.
    pub const ALL: [Benchmark; 16] = [
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Dedup,
        Benchmark::Facesim,
        Benchmark::Ferret,
        Benchmark::Fluidanimate,
        Benchmark::Freqmine,
        Benchmark::Raytrace,
        Benchmark::Streamcluster,
        Benchmark::Swaptions,
        Benchmark::Vips,
        Benchmark::X264,
        Benchmark::Libquantum,
        Benchmark::Mtpipe,
        Benchmark::Mtshare,
    ];

    /// The PARSEC subset (everything except SPEC's `libquantum` and the
    /// multithreaded sharing workloads).
    pub fn parsec() -> impl Iterator<Item = Benchmark> {
        Self::ALL.into_iter().filter(|b| {
            !matches!(
                b,
                Benchmark::Libquantum | Benchmark::Mtpipe | Benchmark::Mtshare
            )
        })
    }

    /// The sharing-heavy multithreaded workloads: the subjects of the
    /// inter-thread classification axis and the input-size scaling
    /// curves.
    pub fn sharing() -> impl Iterator<Item = Benchmark> {
        [Benchmark::Mtpipe, Benchmark::Mtshare].into_iter()
    }

    /// Canonical lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Canneal => "canneal",
            Benchmark::Dedup => "dedup",
            Benchmark::Facesim => "facesim",
            Benchmark::Ferret => "ferret",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Freqmine => "freqmine",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Streamcluster => "streamcluster",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Vips => "vips",
            Benchmark::X264 => "x264",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Mtpipe => "mtpipe",
            Benchmark::Mtshare => "mtshare",
        }
    }

    /// Parses a sweep selection: `all`, a single name, or a
    /// comma-separated list of names (duplicates preserved in order).
    pub fn parse_selection(spec: &str) -> Result<Vec<Benchmark>, ParseBenchmarkError> {
        if spec == "all" {
            return Ok(Self::ALL.to_vec());
        }
        spec.split(',').map(|name| name.trim().parse()).collect()
    }

    /// Runs the benchmark at `size`, emitting its trace through `engine`.
    pub fn run<O: ExecutionObserver>(self, size: InputSize, engine: &mut Engine<O>) {
        match self {
            Benchmark::Blackscholes => suite::blackscholes::Blackscholes::new(size).run(engine),
            Benchmark::Bodytrack => suite::bodytrack::Bodytrack::new(size).run(engine),
            Benchmark::Canneal => suite::canneal::Canneal::new(size).run(engine),
            Benchmark::Dedup => suite::dedup::Dedup::new(size).run(engine),
            Benchmark::Facesim => suite::facesim::Facesim::new(size).run(engine),
            Benchmark::Ferret => suite::ferret::Ferret::new(size).run(engine),
            Benchmark::Fluidanimate => suite::fluidanimate::Fluidanimate::new(size).run(engine),
            Benchmark::Freqmine => suite::freqmine::Freqmine::new(size).run(engine),
            Benchmark::Raytrace => suite::raytrace::Raytrace::new(size).run(engine),
            Benchmark::Streamcluster => suite::streamcluster::Streamcluster::new(size).run(engine),
            Benchmark::Swaptions => suite::swaptions::Swaptions::new(size).run(engine),
            Benchmark::Vips => suite::vips::Vips::new(size).run(engine),
            Benchmark::X264 => suite::x264::X264::new(size).run(engine),
            Benchmark::Libquantum => suite::libquantum::Libquantum::new(size).run(engine),
            Benchmark::Mtpipe => suite::mtpipe::Mtpipe::new(size).run(engine),
            Benchmark::Mtshare => suite::mtshare::Mtshare::new(size).run(engine),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    name: String,
}

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}`", self.name)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;

    #[test]
    fn every_benchmark_runs_and_balances() {
        for bench in Benchmark::ALL {
            let mut e = Engine::new(CountingObserver::new());
            bench.run(InputSize::SimSmall, &mut e);
            assert!(e.validate().is_ok(), "{bench} unbalanced");
            let counts = e.finish().into_counts();
            assert!(counts.ops > 1_000, "{bench} too small: {} ops", counts.ops);
            assert_eq!(counts.calls, counts.returns, "{bench}");
        }
    }

    #[test]
    fn names_round_trip_through_fromstr() {
        for bench in Benchmark::ALL {
            assert_eq!(bench.name().parse::<Benchmark>(), Ok(bench));
        }
        assert!("nope".parse::<Benchmark>().is_err());
    }

    #[test]
    fn selection_parses_all_lists_and_rejects_unknowns() {
        assert_eq!(Benchmark::parse_selection("all").unwrap().len(), 16);
        assert_eq!(
            Benchmark::parse_selection("vips, dedup,canneal").unwrap(),
            vec![Benchmark::Vips, Benchmark::Dedup, Benchmark::Canneal]
        );
        assert!(Benchmark::parse_selection("vips,nope").is_err());
    }

    #[test]
    fn parsec_excludes_libquantum_and_sharing_workloads() {
        let parsec: Vec<Benchmark> = Benchmark::parsec().collect();
        assert_eq!(parsec.len(), 13);
        assert!(!parsec.contains(&Benchmark::Libquantum));
        assert!(!parsec.contains(&Benchmark::Mtpipe));
        assert!(!parsec.contains(&Benchmark::Mtshare));
    }

    #[test]
    fn sharing_workloads_emit_inter_thread_traffic() {
        for bench in Benchmark::sharing() {
            let mut e = Engine::new(CountingObserver::new());
            bench.run(InputSize::SimSmall, &mut e);
            let counts = e.finish().into_counts();
            assert!(counts.thread_switches > 0, "{bench} never switched threads");
        }
    }
}
