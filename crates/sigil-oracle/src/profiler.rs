//! The naive reference profiler.

use std::collections::{BTreeMap, HashMap};

use sigil_core::reuse::ContextReuse;
use sigil_core::{LineReport, SigilConfig};
use sigil_mem::{EvictionPolicy, CHUNK_SLOTS};
use sigil_trace::{
    Addr, ExecutionObserver, FunctionId, MemAccess, OpClock, RuntimeEvent, SymbolTable,
};

use crate::report::{function_name, EdgeReport, FunctionReport, OracleReport, ReuseReport};

/// Function identity as the oracle tracks it: `None` is the synthetic
/// root (code running outside any call).
type FuncKey = Option<FunctionId>;

/// Who touched a byte: the function, the global dynamic call number,
/// and the guest thread.
///
/// Call numbers are globally unique across all functions and threads
/// (both profilers bump one counter on every `Call`/`SyscallEnter`), so
/// comparing `(func, call)` pairs is equivalent to the production
/// profiler's `(context, call)` owner comparison: equal call numbers
/// imply the very same dynamic call. The one collision is the `call ==
/// 0` root frame, which every thread shares — the `thread` field is
/// what keeps per-thread root frames distinct, mirroring the production
/// `Owner`'s thread field, and is the discriminant for inter-thread
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OwnerRec {
    func: FuncKey,
    call: u64,
    thread: u32,
}

/// Flat per-byte shadow record: last writer, last reader, and the
/// reuse-mode triple — the paper's Table I, nothing else.
#[derive(Debug, Clone, Copy, Default)]
struct OracleByte {
    writer: Option<OwnerRec>,
    reader: Option<OwnerRec>,
    reuse_count: u64,
    first_access: u64,
    last_access: u64,
}

impl OracleByte {
    fn lifetime(&self) -> u64 {
        self.last_access.saturating_sub(self.first_access)
    }

    fn reset_reuse(&mut self) {
        self.reuse_count = 0;
        self.first_access = 0;
        self.last_access = 0;
    }
}

/// Intentional semantic mutations of the oracle, used by the harness's
/// self-test: replaying with a bug injected must produce divergences,
/// and the shrinker must reduce them to a tiny repro. Each variant is a
/// realistic way a shadow-memory refactor could go wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// Repeat-read detection compares only the reading *function*,
    /// ignoring the dynamic call number — a fresh call of the same
    /// function then wrongly sees its reads as non-unique.
    RepeatIgnoresCall,
    /// A write fails to invalidate the last-reader field, so a reader's
    /// later re-read of the *new* value still counts as a repeat.
    WriteKeepsReader,
    /// Inter-thread classification is skipped entirely: a read whose
    /// last writer ran on another thread falls back to the pre-thread
    /// input/local rule — exactly what forgetting the thread axis in a
    /// refactor would do. Only manifests on multithreaded traces.
    InterThreadAsInput,
}

/// The naive reference implementation of the Sigil byte classification.
///
/// An [`ExecutionObserver`] exactly like the production profiler; feed
/// both the same event stream (`sigil_trace::io::replay`) and project
/// both to an [`OracleReport`] to compare. See the crate docs for what
/// is deliberately naive here.
#[derive(Debug)]
pub struct OracleProfiler {
    config: SigilConfig,
    bug: Option<InjectedBug>,
    clock: OpClock,
    call_counter: u64,
    current_thread: u32,
    /// Per-thread stacks of (function, call-number) frames.
    stacks: HashMap<u32, Vec<OwnerRec>>,
    shadow: HashMap<Addr, OracleByte>,
    /// Naive residency model, active only under a chunk limit:
    /// `chunk key -> (allocation seq, last-touch seq)`. Victims are
    /// found by an O(n) scan.
    chunks: BTreeMap<u64, (u64, u64)>,
    seq: u64,
    evicted_chunks: u64,
    functions: BTreeMap<FuncKey, FunctionAccum>,
    edges: BTreeMap<(FuncKey, FuncKey), EdgeReport>,
    reuse: Option<BTreeMap<FuncKey, ContextReuse>>,
    /// Line-mode shadow: line index -> access count (never evicted, like
    /// the production line table).
    lines: Option<HashMap<u64, u64>>,
}

#[derive(Debug, Default)]
struct FunctionAccum {
    calls: u64,
    comm: sigil_core::CommStats,
}

impl OracleProfiler {
    /// Creates an oracle for `config`. The relevant knobs are
    /// `reuse_mode`, `line_size`, `shadow_chunk_limit`, and `eviction`;
    /// event recording is not modelled.
    pub fn new(config: SigilConfig) -> Self {
        let mut functions = BTreeMap::new();
        functions.insert(None, FunctionAccum::default());
        OracleProfiler {
            config,
            bug: None,
            clock: OpClock::new(),
            call_counter: 0,
            current_thread: 0,
            stacks: HashMap::new(),
            shadow: HashMap::new(),
            chunks: BTreeMap::new(),
            seq: 0,
            evicted_chunks: 0,
            functions,
            edges: BTreeMap::new(),
            reuse: config.reuse_mode.then(BTreeMap::new),
            lines: config.line_size.map(|_| HashMap::new()),
        }
    }

    /// Injects `bug`, deliberately corrupting the oracle's semantics.
    #[must_use]
    pub fn with_bug(mut self, bug: InjectedBug) -> Self {
        self.bug = Some(bug);
        self
    }

    /// Chunks the naive residency model evicted so far.
    pub fn evicted_chunks(&self) -> u64 {
        self.evicted_chunks
    }

    fn current_frame(&self) -> OwnerRec {
        self.stacks
            .get(&self.current_thread)
            .and_then(|s| s.last().copied())
            .unwrap_or(OwnerRec {
                func: None,
                call: 0,
                thread: self.current_thread,
            })
    }

    fn handle_enter(&mut self, func: FunctionId) {
        self.call_counter += 1;
        let call = self.call_counter;
        let thread = self.current_thread;
        self.stacks
            .entry(self.current_thread)
            .or_default()
            .push(OwnerRec {
                func: Some(func),
                call,
                thread,
            });
        self.functions.entry(Some(func)).or_default().calls += 1;
    }

    fn handle_leave(&mut self) {
        if let Some(stack) = self.stacks.get_mut(&self.current_thread) {
            stack.pop();
        }
    }

    /// Mirrors `ShadowTable::slot_mut` residency: every byte access
    /// touches its chunk's recency, allocating (and evicting, under a
    /// limit) as needed. Evicting a chunk drops every shadow record in
    /// it — exactly what the production table's chunk recycling does.
    fn touch(&mut self, addr: Addr) {
        let Some(limit) = self.config.shadow_chunk_limit else {
            return;
        };
        let key = addr / CHUNK_SLOTS as u64;
        self.seq += 1;
        if let Some(meta) = self.chunks.get_mut(&key) {
            meta.1 = self.seq;
            return;
        }
        while self.chunks.len() >= limit.max(1) {
            let victim = match self.config.eviction {
                EvictionPolicy::Fifo => self.chunks.iter().min_by_key(|&(_, &(alloc, _))| alloc),
                EvictionPolicy::Lru => self.chunks.iter().min_by_key(|&(_, &(_, touch))| touch),
            }
            .map(|(&k, _)| k)
            .expect("non-empty chunk index");
            self.chunks.remove(&victim);
            self.shadow.retain(|&a, _| a / CHUNK_SLOTS as u64 != victim);
            self.evicted_chunks += 1;
        }
        self.chunks.insert(key, (self.seq, self.seq));
    }

    fn record_lines(&mut self, access: MemAccess) {
        let Some(line_size) = self.config.line_size else {
            return;
        };
        let Some(lines) = self.lines.as_mut() else {
            return;
        };
        let shift = line_size.trailing_zeros();
        let first = access.addr >> shift;
        let last = (access.end() - 1) >> shift;
        for line in first..=last {
            *lines.entry(line).or_default() += 1;
        }
    }

    fn reuse_flush(
        reuse: &mut Option<BTreeMap<FuncKey, ContextReuse>>,
        reader: OwnerRec,
        byte: &OracleByte,
    ) {
        if let Some(map) = reuse.as_mut() {
            map.entry(reader.func)
                .or_insert_with(|| ContextReuse::new(sigil_callgrind::ContextId::ROOT))
                .record(byte.reuse_count, byte.lifetime());
        }
    }

    fn handle_read(&mut self, access: MemAccess, at: u64) {
        let cur = self.current_frame();
        self.record_lines(access);
        for addr in access.bytes() {
            self.touch(addr);
            let mut byte = self.shadow.get(&addr).copied().unwrap_or_default();
            let repeat = match self.bug {
                Some(InjectedBug::RepeatIgnoresCall) => {
                    byte.reader.map(|r| r.func) == Some(cur.func)
                }
                _ => byte.reader == Some(cur),
            };
            let producer = byte.writer;

            // Reuse: a change of reader flushes the previous reader's
            // record; the first read of a (value, call) pair starts a
            // new lifetime.
            if self.config.reuse_mode {
                if !repeat {
                    if let Some(prev_reader) = byte.reader {
                        Self::reuse_flush(&mut self.reuse, prev_reader, &byte);
                        byte.reset_reuse();
                    }
                }
                if !repeat {
                    byte.first_access = at;
                } else {
                    byte.reuse_count += 1;
                }
                byte.last_access = at;
            }
            byte.reader = Some(cur);
            self.shadow.insert(addr, byte);

            // Table-I classification, function-level, with the
            // inter-thread axis: a last writer on another guest thread
            // is inter-thread input, disjoint from (and checked before)
            // the local class.
            let producer_fn = producer.and_then(|p| p.func);
            let is_inter = self.bug != Some(InjectedBug::InterThreadAsInput)
                && producer.is_some_and(|p| p.thread != cur.thread);
            let is_local = !is_inter && producer.is_some() && producer_fn == cur.func;
            {
                let consumer = self.functions.entry(cur.func).or_default();
                consumer.comm.bytes_read += 1;
                match (is_inter, is_local, repeat) {
                    (true, _, false) => consumer.comm.inter_thread_unique_bytes += 1,
                    (true, _, true) => consumer.comm.inter_thread_nonunique_bytes += 1,
                    (false, true, false) => consumer.comm.local_unique_bytes += 1,
                    (false, true, true) => consumer.comm.local_nonunique_bytes += 1,
                    (false, false, false) => consumer.comm.input_unique_bytes += 1,
                    (false, false, true) => consumer.comm.input_nonunique_bytes += 1,
                }
            }
            if !is_local {
                let producer_stats = self.functions.entry(producer_fn).or_default();
                if repeat {
                    producer_stats.comm.output_nonunique_bytes += 1;
                } else {
                    producer_stats.comm.output_unique_bytes += 1;
                }
                let edge = self.edges.entry((producer_fn, cur.func)).or_default();
                if repeat {
                    edge.nonunique_bytes += 1;
                } else {
                    edge.unique_bytes += 1;
                }
            }
        }
    }

    fn handle_write(&mut self, access: MemAccess, _at: u64) {
        let cur = self.current_frame();
        self.record_lines(access);
        self.functions
            .entry(cur.func)
            .or_default()
            .comm
            .bytes_written += u64::from(access.size);
        for addr in access.bytes() {
            self.touch(addr);
            let mut byte = self.shadow.get(&addr).copied().unwrap_or_default();
            if self.config.reuse_mode {
                if let Some(prev_reader) = byte.reader {
                    Self::reuse_flush(&mut self.reuse, prev_reader, &byte);
                }
            }
            byte.writer = Some(cur);
            if self.bug != Some(InjectedBug::WriteKeepsReader) {
                byte.reader = None;
            }
            byte.reset_reuse();
            self.shadow.insert(addr, byte);
        }
    }

    /// Consumes the oracle into its per-function-name report.
    pub fn into_report(mut self, symbols: &SymbolTable) -> OracleReport {
        // Flush reuse records of bytes still live (and still resident —
        // evicted bytes lost their records, as in production) at exit.
        if self.config.reuse_mode {
            let shadow = std::mem::take(&mut self.shadow);
            for byte in shadow.values() {
                if let Some(reader) = byte.reader {
                    Self::reuse_flush(&mut self.reuse, reader, byte);
                }
            }
        }

        let functions = self
            .functions
            .iter()
            .map(|(&key, accum)| {
                (
                    function_name(key, symbols),
                    FunctionReport {
                        calls: accum.calls,
                        comm: accum.comm,
                    },
                )
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|(&(p, c), &bytes)| {
                (
                    format!(
                        "{} -> {}",
                        function_name(p, symbols),
                        function_name(c, symbols)
                    ),
                    bytes,
                )
            })
            .collect();
        let reuse = self.reuse.as_ref().map(|map| {
            map.iter()
                .map(|(&key, row)| (function_name(key, symbols), ReuseReport::from_context(row)))
                .collect()
        });
        let lines = self.lines.as_ref().map(|lines| {
            let mut buckets = [0u64; 5];
            let mut touched = 0u64;
            for &accesses in lines.values() {
                if accesses == 0 {
                    continue;
                }
                buckets[LineReport::bucket_of(accesses - 1)] += 1;
                touched += 1;
            }
            LineReport {
                line_size: self.config.line_size.expect("line mode on"),
                buckets,
                touched_lines: touched,
            }
        });
        OracleReport {
            functions,
            edges,
            reuse,
            lines,
        }
    }
}

impl ExecutionObserver for OracleProfiler {
    fn on_event(&mut self, event: RuntimeEvent) {
        let at = self.clock.tick(event).as_raw();
        match event {
            RuntimeEvent::Call { callee } => self.handle_enter(callee),
            RuntimeEvent::SyscallEnter { name } => self.handle_enter(name),
            RuntimeEvent::Return | RuntimeEvent::SyscallExit => self.handle_leave(),
            RuntimeEvent::Read { access } => self.handle_read(access, at),
            RuntimeEvent::Write { access } => self.handle_write(access, at),
            RuntimeEvent::ThreadSwitch { thread } => self.current_thread = thread.as_raw(),
            RuntimeEvent::Op { .. } | RuntimeEvent::Branch { .. } => {}
        }
    }

    fn on_finish(&mut self) {
        self.stacks.clear();
        self.current_thread = 0;
    }
}
