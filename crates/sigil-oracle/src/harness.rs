//! Differential replay, delta-debugging shrinker, and repro rendering.
//!
//! The flow: generate (or record) a trace once, replay the *identical*
//! event stream through the production [`SigilProfiler`] and the
//! [`OracleProfiler`], project both to [`OracleReport`]s, and diff. On
//! divergence, [`shrink`] delta-debugs the generating program down to a
//! minimal instruction sequence that still diverges, and
//! [`first_divergent_access`] replays growing prefixes of the minimized
//! trace to name the exact access where the two profilers first
//! disagree.

use sigil_core::{SigilConfig, SigilProfiler};
use sigil_mem::EvictionPolicy;
use sigil_trace::observer::RecordingObserver;
use sigil_trace::{io::replay, Engine, RuntimeEvent, SymbolTable};
use sigil_vm::{GenProgram, Interpreter};
use sigil_workloads::{Benchmark, InputSize};

use crate::profiler::{InjectedBug, OracleProfiler};
use crate::report::{diff_reports, project_profile, Divergence, OracleReport};

/// Fuel cap for generated programs: bounds runaway recursion while
/// leaving typical generated traces (tens of thousands of events)
/// untouched. An out-of-fuel trap unwinds cleanly, so the recorded
/// trace stays balanced and both profilers still see the same stream.
pub const GEN_FUEL: u64 = 2_000_000;

/// A recorded trace: the event stream plus the symbols it references.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// Function names interned while recording.
    pub symbols: SymbolTable,
    /// The full event stream.
    pub events: Vec<RuntimeEvent>,
}

/// Runs a generated program once, recording its event stream. The
/// program's `schedule_seed` drives the guest-thread scheduler, so
/// multithreaded recordings replay the exact interleaving the generator
/// committed to — and shrunk copies (which carry the seed unchanged)
/// keep reproducing it.
pub fn record_program(program: &GenProgram) -> TraceBundle {
    let built = program.build();
    let mut engine = Engine::new(RecordingObserver::new());
    let _ = Interpreter::new(&built)
        .with_fuel(GEN_FUEL)
        .with_schedule_seed(program.schedule_seed)
        .run(&mut engine);
    let (observer, symbols) = engine.finish_with_symbols();
    TraceBundle {
        symbols,
        events: observer.into_events(),
    }
}

/// Runs a built-in workload once, recording its event stream.
pub fn record_benchmark(bench: Benchmark, size: InputSize) -> TraceBundle {
    let mut engine = Engine::new(RecordingObserver::new());
    bench.run(size, &mut engine);
    let (observer, symbols) = engine.finish_with_symbols();
    TraceBundle {
        symbols,
        events: observer.into_events(),
    }
}

/// Replays `bundle` through the production profiler and projects the
/// resulting profile.
pub fn production_report(bundle: &TraceBundle, config: SigilConfig) -> OracleReport {
    let mut profiler = SigilProfiler::new(config);
    replay(&bundle.events, &mut profiler);
    project_profile(&profiler.into_profile(bundle.symbols.clone()))
}

/// Replays `bundle` through the oracle (optionally with an injected
/// bug).
pub fn oracle_report(
    bundle: &TraceBundle,
    config: SigilConfig,
    bug: Option<InjectedBug>,
) -> OracleReport {
    let mut oracle = OracleProfiler::new(config);
    if let Some(bug) = bug {
        oracle = oracle.with_bug(bug);
    }
    replay(&bundle.events, &mut oracle);
    oracle.into_report(&bundle.symbols)
}

/// Replays `bundle` through both profilers and diffs the reports.
pub fn compare(
    bundle: &TraceBundle,
    config: SigilConfig,
    bug: Option<InjectedBug>,
) -> Vec<Divergence> {
    diff_reports(
        &production_report(bundle, config),
        &oracle_report(bundle, config, bug),
    )
}

/// Shard counts the conformance sweep crosses every base configuration
/// with: the serial replay plus three sharded ones, so the
/// [`sigil_core::shard`] fan-out/merge path is differentially validated
/// against the same serial oracle (the oracle itself never shards).
pub const SHARD_AXIS: [usize; 4] = [1, 2, 4, 8];

/// The per-seed configuration matrix: the full-featured default
/// (unbounded shadow memory, reuse + line mode on so histograms are
/// covered) plus a seed-derived *constrained* shadow-table limit and
/// eviction policy, so chunk-eviction paths are differentially covered —
/// each crossed with [`SHARD_AXIS`] so sharded replay is held to the
/// same reports as serial. `limit_override` pins the constrained limit
/// and `shards_override` pins the shard count (used by CI's seed ×
/// limit × shards matrix).
pub fn differential_configs(
    seed: u64,
    limit_override: Option<usize>,
    shards_override: Option<usize>,
) -> Vec<(String, SigilConfig)> {
    differential_configs_filtered(seed, limit_override, shards_override, false)
}

/// [`differential_configs`] with an optional restriction to the
/// unbounded (oracle-elided) axis. Sharded unbounded entries come in
/// two dispatch flavours: the default pipelined path (oracle elided,
/// runs coalesced) and the pinned legacy path (forced dispatch oracle,
/// one record per run) — both must project to the identical report, so
/// the pipelined dispatch is differentially held to its predecessor on
/// every seed.
pub fn differential_configs_filtered(
    seed: u64,
    limit_override: Option<usize>,
    shards_override: Option<usize>,
    unbounded_only: bool,
) -> Vec<(String, SigilConfig)> {
    let base = SigilConfig::default().with_reuse_mode().with_line_mode(64);
    let limit = limit_override.unwrap_or(1 + (seed % 3) as usize);
    let policy = if seed.is_multiple_of(2) {
        EvictionPolicy::Fifo
    } else {
        EvictionPolicy::Lru
    };
    let mut bases = vec![("unbounded".to_owned(), base)];
    if !unbounded_only {
        bases.push((
            format!("limit={limit} policy={policy:?}"),
            base.with_shadow_limit(limit).with_eviction(policy),
        ));
    }
    let shard_axis: &[usize] = match &shards_override {
        Some(n) => std::slice::from_ref(n),
        None => &SHARD_AXIS,
    };
    shard_axis
        .iter()
        .flat_map(|&shards| {
            let mut configs: Vec<(String, SigilConfig)> = bases
                .iter()
                .map(|(label, config)| {
                    if shards <= 1 {
                        (label.clone(), *config)
                    } else {
                        (
                            format!("{label} shards={shards}"),
                            config.with_shards(shards),
                        )
                    }
                })
                .collect();
            if shards > 1 {
                configs.push((
                    format!("unbounded legacy-dispatch shards={shards}"),
                    base.with_shards(shards)
                        .with_forced_dispatch_oracle()
                        .without_dispatch_coalescing(),
                ));
            }
            configs
        })
        .collect()
}

/// The configuration golden conformance profiles are recorded under:
/// reuse + line mode on (so the corpus pins histograms too), unbounded
/// shadow memory (so profiles are exact, not eviction-dependent).
pub fn golden_config() -> SigilConfig {
    SigilConfig::default().with_reuse_mode().with_line_mode(64)
}

/// One configuration's divergences for a seed.
#[derive(Debug, Clone)]
pub struct ConfigFailure {
    /// Human-readable configuration label.
    pub label: String,
    /// The configuration that diverged.
    pub config: SigilConfig,
    /// The field-level disagreements.
    pub divergences: Vec<Divergence>,
}

/// Generates the seed's program, records it once, and replays it under
/// the full configuration matrix. Empty result = conformant seed.
pub fn diff_seed(
    seed: u64,
    limit_override: Option<usize>,
    shards_override: Option<usize>,
) -> Vec<ConfigFailure> {
    diff_seed_filtered(seed, limit_override, shards_override, false)
}

/// [`diff_seed`] restricted to [`differential_configs_filtered`]'s
/// matrix (the `--unbounded` CLI axis).
pub fn diff_seed_filtered(
    seed: u64,
    limit_override: Option<usize>,
    shards_override: Option<usize>,
    unbounded_only: bool,
) -> Vec<ConfigFailure> {
    diff_seed_mt(seed, 1, limit_override, shards_override, unbounded_only)
}

/// [`diff_seed_filtered`] with a guest-thread axis: the seed's program
/// is generated with `threads` guest threads (`1` = the classic
/// single-threaded program, bit-identical to [`diff_seed_filtered`]),
/// recorded once under the generator-committed interleaving, and held
/// to the same configuration matrix — so cross-thread classification is
/// differentially verified against the oracle across every shard count
/// and eviction limit.
pub fn diff_seed_mt(
    seed: u64,
    threads: u32,
    limit_override: Option<usize>,
    shards_override: Option<usize>,
    unbounded_only: bool,
) -> Vec<ConfigFailure> {
    let program = GenProgram::generate_mt(seed, threads);
    let bundle = record_program(&program);
    differential_configs_filtered(seed, limit_override, shards_override, unbounded_only)
        .into_iter()
        .filter_map(|(label, config)| {
            let divergences = compare(&bundle, config, None);
            (!divergences.is_empty()).then_some(ConfigFailure {
                label,
                config,
                divergences,
            })
        })
        .collect()
}

/// Whether `program` still exposes a divergence under `config`.
pub fn diverges(program: &GenProgram, config: SigilConfig, bug: Option<InjectedBug>) -> bool {
    !compare(&record_program(program), config, bug).is_empty()
}

/// Delta-debugs `program` by dropping instruction ranges while the
/// divergence persists (classic ddmin over the flattened instruction
/// list: halving chunks, then single instructions, iterated to a fixed
/// point). Returns the minimized program; the input must diverge.
pub fn shrink(program: &GenProgram, config: SigilConfig, bug: Option<InjectedBug>) -> GenProgram {
    shrink_with(program, |candidate| diverges(candidate, config, bug))
}

/// The ddmin loop behind [`shrink`], generalized over the failure
/// predicate so other axes (the `sigil-serve` online-vs-batch diff, for
/// one) reuse the identical minimization strategy: drop halving chunks
/// down to single instructions while `still_fails` holds, iterated to a
/// fixed point. The input program must satisfy the predicate.
pub fn shrink_with<F>(program: &GenProgram, mut still_fails: F) -> GenProgram
where
    F: FnMut(&GenProgram) -> bool,
{
    let mut current = program.clone();
    loop {
        let before = current.inst_count();
        if before == 0 {
            break;
        }
        let mut chunk = before.div_ceil(2);
        loop {
            let mut start = 0;
            while start < current.inst_count() {
                let candidate = current.drop_range(start, chunk);
                if candidate.inst_count() < current.inst_count() && still_fails(&candidate) {
                    current = candidate;
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        if current.inst_count() == before {
            break;
        }
    }
    current
}

/// The first access event at which the two profilers disagree.
#[derive(Debug, Clone)]
pub struct FirstDivergence {
    /// Index of the event in the trace.
    pub event_index: usize,
    /// The access event itself.
    pub event: RuntimeEvent,
    /// The divergences visible after replaying up to and including it.
    pub divergences: Vec<Divergence>,
}

/// Replays growing prefixes of `bundle` (cut after each `Read`/`Write`)
/// through both profilers to locate the first access after which the
/// reports disagree. Quadratic in trace length — call on minimized
/// repros only. `None` means the full trace does not diverge either.
pub fn first_divergent_access(
    bundle: &TraceBundle,
    config: SigilConfig,
    bug: Option<InjectedBug>,
) -> Option<FirstDivergence> {
    for (i, &event) in bundle.events.iter().enumerate() {
        if !matches!(
            event,
            RuntimeEvent::Read { .. } | RuntimeEvent::Write { .. }
        ) {
            continue;
        }
        let prefix = TraceBundle {
            symbols: bundle.symbols.clone(),
            events: bundle.events[..=i].to_vec(),
        };
        let divergences = compare(&prefix, config, bug);
        if !divergences.is_empty() {
            return Some(FirstDivergence {
                event_index: i,
                event,
                divergences,
            });
        }
    }
    None
}

/// Renders a minimized repro: the program listing, the first divergent
/// access, and the field-level diff — everything needed to reproduce
/// and debug a conformance failure by hand.
pub fn render_repro(program: &GenProgram, config: SigilConfig, bug: Option<InjectedBug>) -> String {
    use std::fmt::Write as _;
    let bundle = record_program(program);
    let divergences = compare(&bundle, config, bug);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "minimized repro: {} instructions, {} events, config: {config:?}",
        program.inst_count(),
        bundle.events.len()
    );
    if let Some(bug) = bug {
        let _ = writeln!(out, "injected bug: {bug:?}");
    }
    let _ = writeln!(
        out,
        "\n{}",
        sigil_vm::disasm::program_to_string(&program.build())
    );
    match first_divergent_access(&bundle, config, bug) {
        Some(first) => {
            let _ = writeln!(
                out,
                "first divergent access: event #{} = {:?}",
                first.event_index, first.event
            );
            for d in &first.divergences {
                let _ = writeln!(out, "  {d}");
            }
        }
        None => {
            let _ = writeln!(out, "divergence appears only in end-of-run aggregation:");
        }
    }
    let _ = writeln!(out, "full-trace divergences ({}):", divergences.len());
    for d in divergences.iter().take(16) {
        let _ = writeln!(out, "  {d}");
    }
    if divergences.len() > 16 {
        let _ = writeln!(out, "  ... and {} more", divergences.len() - 16);
    }
    out
}
