//! A deliberately naive reference profiler and differential-testing
//! harness for the Sigil shadow-memory pipeline.
//!
//! The production [`SigilProfiler`](sigil_core::SigilProfiler) earns its
//! speed with a chunked shadow table, an MRU chunk cache, O(1) eviction
//! bookkeeping, interned call contexts, and a packed cost model. Every
//! one of those tricks is a place where a future optimisation can
//! silently corrupt the paper's Table-I byte classification. This crate
//! is the antidote:
//!
//! * [`OracleProfiler`] — a straight-line re-implementation of the
//!   classification semantics with *none* of the tricks: one flat
//!   `HashMap<addr, byte>` shadow map, function identity instead of call
//!   contexts, an O(n)-scan eviction model, and naive per-byte loops.
//!   It is written to be *obviously* correct against the paper, not fast.
//! * [`OracleReport`] — a per-function-name projection of a profile
//!   (calls, the eight Table-I counters, communication edges, reuse
//!   aggregates + lifetime histograms, and the line-mode report) that
//!   both the oracle and the production profiler can be reduced to, so
//!   the two can be compared field by field ([`diff_reports`]).
//! * [`harness`] — replay plumbing that runs the *same* recorded event
//!   stream through both profilers under a configurable
//!   [`SigilConfig`](sigil_core::SigilConfig) (including randomized
//!   shadow-memory limits so eviction paths are differentially covered),
//!   plus a delta-debugging shrinker over [`sigil_vm::GenProgram`]s and
//!   a first-divergent-access locator for actionable repros.
//! * [`InjectedBug`] — intentional semantic mutations of the oracle used
//!   to prove the harness actually catches classification bugs and
//!   produces small repros.
//!
//! The oracle models *function-level* identity (the projection both
//! sides are compared under), not per-context identity; it is faithful
//! to the production profiler as long as call depth stays below the
//! calltree's folding limit (`CallTree::MAX_DEPTH`), which generated
//! programs and the built-in workloads do by a wide margin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod profiler;
pub mod report;
pub mod serve_axis;

pub use profiler::{InjectedBug, OracleProfiler};
pub use report::{
    diff_reports, project_profile, Divergence, EdgeReport, FunctionReport, OracleReport,
    ReuseReport,
};
