//! The server conformance axis: online == batch.
//!
//! The other harness axes prove the production profiler against a naive
//! oracle. This axis proves the *daemon* against the batch pipeline: the
//! same recorded trace is profiled once in-process
//! ([`batch_outcome`]) and once by streaming it through a real socket
//! into a running `sigil-serve` server ([`online_outcome`]), and the
//! finished session's Profile, phase profile, and critical-path summary
//! must be **byte-identical** as JSON ([`diff_online`]). Divergences
//! delta-debug exactly like shadow-memory divergences: [`shrink_online`]
//! reuses the harness ddmin loop with "still diverges over the socket"
//! as the predicate.
//!
//! Byte-level JSON comparison is sound here because the vendored
//! `serde_json` formats floats shortest-roundtrip: serialize →
//! deserialize → serialize is the identity on these types, so equal
//! semantics imply equal bytes.

use sigil_analysis::streaming::{CriticalPathFold, PathSummary};
use sigil_core::{PhaseProfile, Profile, SigilConfig, SigilProfiler};
use sigil_serve::{Client, ClientError, SessionResult, SessionSpec};
use sigil_trace::io::replay;
use sigil_vm::GenProgram;

use crate::harness::{golden_config, record_program, shrink_with, TraceBundle};
use crate::report::{diff_reports, project_profile, Divergence};

/// Phase bucket the serve axis profiles under: small enough that every
/// golden workload and generated seed crosses many bucket boundaries.
pub const SERVE_BUCKET_OPS: u64 = 256;

/// The configuration the serve axis replays under: the golden corpus
/// configuration plus recorded events (so the critical path is
/// computable from the finished profile) and phase slicing (so the
/// phase fold path is conformance-tested too).
pub fn serve_config() -> SigilConfig {
    golden_config().with_events().with_phases(SERVE_BUCKET_OPS)
}

/// What the batch pipeline produces for a bundle: the profile plus the
/// same derived aggregates a finished server session reports.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The in-process profile.
    pub profile: Profile,
    /// Its phase slices (copied out of the profile).
    pub phases: Option<PhaseProfile>,
    /// Critical path folded over the recorded event file.
    pub critpath: Option<PathSummary>,
}

/// Replays `bundle` through the in-process batch pipeline, finalizing
/// exactly the way a server session does.
pub fn batch_outcome(bundle: &TraceBundle, config: SigilConfig) -> BatchOutcome {
    let mut profiler = SigilProfiler::new(config);
    replay(&bundle.events, &mut profiler);
    let profile = profiler.into_profile(bundle.symbols.clone());
    let critpath = profile.events.as_ref().and_then(|events| {
        let mut fold = CriticalPathFold::new();
        fold.extend(events.records());
        fold.finish().ok()
    });
    BatchOutcome {
        phases: profile.phases.clone(),
        critpath,
        profile,
    }
}

/// Streams `bundle` into the server at `address` as one trace session
/// and returns the finished result. `chunk_records` sets the wire
/// chunking — conformance must not depend on where chunk boundaries
/// fall, so sweeps vary it.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn online_outcome(
    address: &str,
    name: &str,
    bundle: &TraceBundle,
    config: SigilConfig,
    chunk_records: usize,
) -> Result<SessionResult, ClientError> {
    let mut client = Client::connect(address, &SessionSpec::trace(name, config))?;
    client.set_chunk_records(chunk_records);
    client.stream_trace(&bundle.symbols, &bundle.events)?;
    client.finish()
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("profile types serialize")
}

/// Compares a finished online session against the batch pipeline,
/// field-by-field. Empty result = byte-identical Profile, phases, and
/// critical path.
pub fn diff_outcomes(batch: &BatchOutcome, online: &SessionResult) -> Vec<Divergence> {
    let mut out = Vec::new();
    match &online.profile {
        None => out.push(Divergence {
            location: "profile".to_owned(),
            production: "<missing>".to_owned(),
            oracle: "<present>".to_owned(),
        }),
        Some(profile) => {
            // Structural equality first: `Profile` compares exactly the
            // fields serde serializes, and the vendored `serde_json` is
            // deterministic, so `==` holds iff the JSON bytes match —
            // without paying to serialize a multi-million-record event
            // file on the (overwhelmingly common) agreeing path.
            if *profile != batch.profile {
                // Name the diverging fields via the oracle projection;
                // if the projection agrees, record the raw byte
                // disagreement so nothing slips through unnamed.
                let fields =
                    diff_reports(&project_profile(profile), &project_profile(&batch.profile));
                if fields.is_empty() {
                    out.push(Divergence {
                        location: "profile/json-bytes".to_owned(),
                        production: format!("{} bytes", json(profile).len()),
                        oracle: format!("{} bytes", json(&batch.profile).len()),
                    });
                } else {
                    out.extend(fields);
                }
            }
        }
    }
    if json(&online.phases) != json(&batch.phases) {
        out.push(Divergence {
            location: "phases/json-bytes".to_owned(),
            production: json(&online.phases),
            oracle: json(&batch.phases),
        });
    }
    if json(&online.critpath) != json(&batch.critpath) {
        out.push(Divergence {
            location: "critpath/json-bytes".to_owned(),
            production: json(&online.critpath),
            oracle: json(&batch.critpath),
        });
    }
    out
}

/// Replays `bundle` both ways against the server at `address` and
/// returns the field-level disagreements (empty = conformant).
///
/// # Errors
///
/// Propagates connection and protocol failures; a failure is *not* a
/// divergence.
pub fn diff_online(
    address: &str,
    name: &str,
    bundle: &TraceBundle,
    config: SigilConfig,
    chunk_records: usize,
) -> Result<Vec<Divergence>, ClientError> {
    let batch = batch_outcome(bundle, config);
    let online = online_outcome(address, name, bundle, config, chunk_records)?;
    let mut out = diff_outcomes(&batch, &online);
    if online.records != bundle.events.len() as u64 {
        out.push(Divergence {
            location: "records".to_owned(),
            production: online.records.to_string(),
            oracle: bundle.events.len().to_string(),
        });
    }
    Ok(out)
}

/// Whether `program` produces an online-vs-batch divergence against the
/// server at `address`. Connection failures count as *no* divergence so
/// the shrinker never minimizes toward a dead server.
pub fn online_diverges(address: &str, program: &GenProgram, config: SigilConfig) -> bool {
    let bundle = record_program(program);
    matches!(
        diff_online(address, "shrink-probe", &bundle, config, 64),
        Ok(divergences) if !divergences.is_empty()
    )
}

/// Delta-debugs an online-vs-batch divergence down to a minimal
/// program, reusing the harness ddmin loop. The input must diverge.
pub fn shrink_online(address: &str, program: &GenProgram, config: SigilConfig) -> GenProgram {
    shrink_with(program, |candidate| {
        online_diverges(address, candidate, config)
    })
}
