//! The comparable per-function projection of a profile, and its diff.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sigil_core::reuse::ContextReuse;
use sigil_core::{CommStats, LineReport, Profile};
use sigil_trace::{FunctionId, SymbolTable};

/// Display name for a function key; the synthetic root (code outside any
/// call) is `"<root>"`.
pub(crate) fn function_name(key: Option<FunctionId>, symbols: &SymbolTable) -> String {
    match key {
        Some(func) => symbols
            .get_name(func)
            .map_or_else(|| func.to_string(), str::to_owned),
        None => "<root>".to_owned(),
    }
}

/// Per-function row of an [`OracleReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionReport {
    /// Dynamic calls of the function (0 for the root).
    pub calls: u64,
    /// The Table-I counters (including the inter-thread pair) plus raw
    /// read/write totals.
    pub comm: CommStats,
}

/// Communication-edge byte counts between two function names.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeReport {
    /// Unique bytes carried by the edge.
    pub unique_bytes: u64,
    /// Non-unique (repeat-read) bytes.
    pub nonunique_bytes: u64,
}

/// Per-function reuse aggregates, including the lifetime histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseReport {
    /// Records with zero reuse.
    pub zero_reuse_bytes: u64,
    /// Records re-used 1–9 times.
    pub low_reuse_bytes: u64,
    /// Records re-used more than 9 times.
    pub high_reuse_bytes: u64,
    /// Sum of reuse counts.
    pub total_reuse_count: u64,
    /// Sum of lifetimes over reused records.
    pub reused_lifetime_sum: u64,
    /// Number of reused records.
    pub reused_bytes: u64,
    /// Sparse lifetime histogram: `(bin start, count)` ascending, paper
    /// bin width (1000 retired ops).
    pub histogram: Vec<(u64, u64)>,
}

impl ReuseReport {
    /// Projects a production [`ContextReuse`] row (or an oracle
    /// accumulator built on the same type).
    pub fn from_context(row: &ContextReuse) -> Self {
        ReuseReport {
            zero_reuse_bytes: row.zero_reuse_bytes,
            low_reuse_bytes: row.low_reuse_bytes,
            high_reuse_bytes: row.high_reuse_bytes,
            total_reuse_count: row.total_reuse_count,
            reused_lifetime_sum: row.reused_lifetime_sum,
            reused_bytes: row.reused_bytes,
            histogram: row.histogram.iter().collect(),
        }
    }
}

/// Everything the differential harness compares, keyed by function name
/// (and `"producer -> consumer"` for edges). `BTreeMap`s keep the JSON
/// serialization deterministic, which the golden corpus relies on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// Per-function calls + Table-I counters. Always contains `"<root>"`.
    pub functions: BTreeMap<String, FunctionReport>,
    /// Communication edges, keyed `"producer -> consumer"`.
    pub edges: BTreeMap<String, EdgeReport>,
    /// Reuse aggregates (reuse mode only).
    pub reuse: Option<BTreeMap<String, ReuseReport>>,
    /// Line-granularity report (line mode only).
    pub lines: Option<LineReport>,
}

/// Projects a production [`Profile`] down to the oracle's
/// function-name-level [`OracleReport`], merging all contexts of a
/// function exactly the way `Profile::function_rows` does.
pub fn project_profile(profile: &Profile) -> OracleReport {
    let symbols = profile.symbols();
    let tree = &profile.callgrind.tree;

    let mut functions: BTreeMap<String, FunctionReport> = BTreeMap::new();
    for (ctx, node) in tree.iter() {
        let row = functions
            .entry(function_name(node.func, symbols))
            .or_default();
        row.calls += node.calls;
        row.comm.merge(&profile.context_comm(ctx));
    }

    let mut edges: BTreeMap<String, EdgeReport> = BTreeMap::new();
    for edge in &profile.edges {
        let producer = function_name(tree.node(edge.producer).func, symbols);
        let consumer = function_name(tree.node(edge.consumer).func, symbols);
        let row = edges
            .entry(format!("{producer} -> {consumer}"))
            .or_default();
        row.unique_bytes += edge.unique_bytes;
        row.nonunique_bytes += edge.nonunique_bytes;
    }

    let reuse = profile.reuse.as_ref().map(|rows| {
        let mut merged: BTreeMap<String, ContextReuse> = BTreeMap::new();
        for row in rows {
            // The production vector is padded with all-zero rows for
            // contexts that never flushed a record; skip them — the
            // oracle only creates rows on flush.
            if row.total_bytes() == 0 && row.total_reuse_count == 0 {
                continue;
            }
            let name = function_name(tree.node(row.ctx).func, symbols);
            let acc = merged
                .entry(name)
                .or_insert_with(|| ContextReuse::new(sigil_callgrind::ContextId::ROOT));
            acc.zero_reuse_bytes += row.zero_reuse_bytes;
            acc.low_reuse_bytes += row.low_reuse_bytes;
            acc.high_reuse_bytes += row.high_reuse_bytes;
            acc.total_reuse_count += row.total_reuse_count;
            acc.reused_lifetime_sum += row.reused_lifetime_sum;
            acc.reused_bytes += row.reused_bytes;
            for (lifetime, count) in row.histogram.iter() {
                acc.histogram.record(lifetime, count);
            }
        }
        merged
            .iter()
            .map(|(name, acc)| (name.clone(), ReuseReport::from_context(acc)))
            .collect()
    });

    OracleReport {
        functions,
        edges,
        reuse,
        lines: profile.lines.clone(),
    }
}

/// One field-level disagreement between two reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// Slash-separated path of the diverging field, e.g.
    /// `functions/f1/comm.input_unique_bytes`.
    pub location: String,
    /// The production profiler's value.
    pub production: String,
    /// The oracle's value.
    pub oracle: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: production={} oracle={}",
            self.location, self.production, self.oracle
        )
    }
}

fn field(
    out: &mut Vec<Divergence>,
    location: String,
    production: &impl std::fmt::Debug,
    oracle: &impl std::fmt::Debug,
) {
    out.push(Divergence {
        location,
        production: format!("{production:?}"),
        oracle: format!("{oracle:?}"),
    });
}

fn comm_fields(stats: &CommStats) -> [(&'static str, u64); 10] {
    [
        ("input_unique_bytes", stats.input_unique_bytes),
        ("input_nonunique_bytes", stats.input_nonunique_bytes),
        ("local_unique_bytes", stats.local_unique_bytes),
        ("local_nonunique_bytes", stats.local_nonunique_bytes),
        ("output_unique_bytes", stats.output_unique_bytes),
        ("output_nonunique_bytes", stats.output_nonunique_bytes),
        ("inter_thread_unique_bytes", stats.inter_thread_unique_bytes),
        (
            "inter_thread_nonunique_bytes",
            stats.inter_thread_nonunique_bytes,
        ),
        ("bytes_read", stats.bytes_read),
        ("bytes_written", stats.bytes_written),
    ]
}

fn diff_maps<V: PartialEq>(
    out: &mut Vec<Divergence>,
    section: &str,
    production: &BTreeMap<String, V>,
    oracle: &BTreeMap<String, V>,
    mut diff_value: impl FnMut(&mut Vec<Divergence>, String, &V, &V),
) {
    for (key, p) in production {
        match oracle.get(key) {
            None => field(out, format!("{section}/{key}"), &"present", &"absent"),
            Some(o) if p != o => diff_value(out, format!("{section}/{key}"), p, o),
            Some(_) => {}
        }
    }
    for key in oracle.keys() {
        if !production.contains_key(key) {
            field(out, format!("{section}/{key}"), &"absent", &"present");
        }
    }
}

/// Compares two reports field by field, returning every disagreement
/// (empty = conformant). `production` and `oracle` name the two sides in
/// the output.
pub fn diff_reports(production: &OracleReport, oracle: &OracleReport) -> Vec<Divergence> {
    let mut out = Vec::new();

    diff_maps(
        &mut out,
        "functions",
        &production.functions,
        &oracle.functions,
        |out, loc, p, o| {
            if p.calls != o.calls {
                field(out, format!("{loc}/calls"), &p.calls, &o.calls);
            }
            for ((name, pv), (_, ov)) in comm_fields(&p.comm).iter().zip(comm_fields(&o.comm)) {
                if *pv != ov {
                    field(out, format!("{loc}/comm.{name}"), pv, &ov);
                }
            }
        },
    );

    diff_maps(
        &mut out,
        "edges",
        &production.edges,
        &oracle.edges,
        |out, loc, p, o| {
            if p.unique_bytes != o.unique_bytes {
                field(
                    out,
                    format!("{loc}/unique_bytes"),
                    &p.unique_bytes,
                    &o.unique_bytes,
                );
            }
            if p.nonunique_bytes != o.nonunique_bytes {
                field(
                    out,
                    format!("{loc}/nonunique_bytes"),
                    &p.nonunique_bytes,
                    &o.nonunique_bytes,
                );
            }
        },
    );

    match (&production.reuse, &oracle.reuse) {
        (None, None) => {}
        (Some(p), Some(o)) => diff_maps(&mut out, "reuse", p, o, |out, loc, p, o| {
            let fields = |r: &ReuseReport| {
                [
                    ("zero_reuse_bytes", r.zero_reuse_bytes),
                    ("low_reuse_bytes", r.low_reuse_bytes),
                    ("high_reuse_bytes", r.high_reuse_bytes),
                    ("total_reuse_count", r.total_reuse_count),
                    ("reused_lifetime_sum", r.reused_lifetime_sum),
                    ("reused_bytes", r.reused_bytes),
                ]
            };
            for ((name, pv), (_, ov)) in fields(p).iter().zip(fields(o)) {
                if *pv != ov {
                    field(out, format!("{loc}/{name}"), pv, &ov);
                }
            }
            if p.histogram != o.histogram {
                field(out, format!("{loc}/histogram"), &p.histogram, &o.histogram);
            }
        }),
        (p, o) => field(
            &mut out,
            "reuse".to_owned(),
            &p.as_ref().map(|_| "present"),
            &o.as_ref().map(|_| "present"),
        ),
    }

    match (&production.lines, &oracle.lines) {
        (None, None) => {}
        (Some(p), Some(o)) if p == o => {}
        (p, o) => field(&mut out, "lines".to_owned(), p, o),
    }

    out
}
