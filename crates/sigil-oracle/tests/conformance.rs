//! The oracle crate's own conformance smoke tests: quick versions of the
//! properties the root `tests/differential.rs` suite sweeps at scale, so
//! `cargo test -p sigil-oracle` alone already proves the harness works.

use sigil_core::SigilConfig;
use sigil_oracle::harness::{
    compare, diff_seed, diverges, first_divergent_access, golden_config, record_benchmark,
    record_program, shrink,
};
use sigil_oracle::InjectedBug;
use sigil_vm::GenProgram;
use sigil_workloads::{Benchmark, InputSize};

/// The first 20 seeds conform under the whole config matrix (unbounded
/// and seed-constrained shadow memory, serial and sharded).
#[test]
fn seeds_0_to_20_conform() {
    for seed in 0..20 {
        let failures = diff_seed(seed, None, None);
        assert!(
            failures.is_empty(),
            "seed {seed}: {:?}",
            failures
                .iter()
                .map(|f| (&f.label, &f.divergences[..f.divergences.len().min(3)]))
                .collect::<Vec<_>>()
        );
    }
}

/// Every built-in workload conforms with reuse and line mode enabled —
/// the same configuration the golden corpus is recorded under — both
/// serially and through the sharded replay path.
#[test]
fn all_benchmarks_conform() {
    for bench in Benchmark::ALL {
        let bundle = record_benchmark(bench, InputSize::SimSmall);
        for shards in [1, 4] {
            let config = golden_config().with_shards(shards);
            let divergences = compare(&bundle, config, None);
            assert!(
                divergences.is_empty(),
                "{bench} shards={shards} ({} events): {:?}",
                bundle.events.len(),
                &divergences[..divergences.len().min(5)]
            );
        }
    }
}

/// Both injected classification mutants manifest within a few seeds,
/// shrink to a small program, and yield a locatable first divergent
/// access — the harness has teeth.
#[test]
fn injected_bug_caught_and_shrinks() {
    let config = SigilConfig::default().with_reuse_mode();
    for bug in [
        InjectedBug::RepeatIgnoresCall,
        InjectedBug::WriteKeepsReader,
    ] {
        let (seed, program) = (0..50)
            .map(|seed| (seed, GenProgram::generate(seed)))
            .find(|(_, p)| diverges(p, config, Some(bug)))
            .unwrap_or_else(|| panic!("{bug:?} never manifested in 50 seeds"));
        let minimized = shrink(&program, config, Some(bug));
        eprintln!(
            "{bug:?}: seed {seed}, {} -> {} instructions",
            program.inst_count(),
            minimized.inst_count()
        );
        assert!(diverges(&minimized, config, Some(bug)));
        assert!(
            minimized.inst_count() <= 20,
            "{bug:?} repro too big: {} instructions",
            minimized.inst_count()
        );
        let bundle = record_program(&minimized);
        assert!(first_divergent_access(&bundle, config, Some(bug)).is_some());
    }
}
