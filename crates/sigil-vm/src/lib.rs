//! Guest bytecode VM: the dynamic-binary-instrumentation stand-in.
//!
//! The original Sigil instruments unmodified x86 binaries through
//! Valgrind, which "translates assembly into an intermediate
//! representation \[that\] reduces the program to a collection of
//! primitives such as memory accesses and operations" (IISWC'13 §III).
//! Wrapping a real DBI framework from Rust is out of scope for this
//! reproduction, so this crate provides the equivalent substrate:
//!
//! * a small register-machine **ISA** ([`isa`]) with integer and
//!   floating-point ALU ops, loads/stores, branches, calls and an
//!   in-guest allocator — the same primitive vocabulary Valgrind lowers
//!   to;
//! * **guest programs** ([`program`]) built with a [`ProgramBuilder`] and
//!   checked by a [`verifier`];
//! * an **interpreter** ([`interp`]) that executes a guest program against
//!   sparse [`GuestMemory`] while emitting [`sigil_trace::RuntimeEvent`]s
//!   through an [`sigil_trace::Engine`] — so the *same profilers*
//!   (Callgrind-like and Sigil) observe a VM-executed guest exactly as
//!   they observe a directly-traced workload.
//!
//! The guest program itself is never modified and cannot observe that it
//! is being profiled, preserving the key DBI property.
//!
//! # Example
//!
//! ```
//! use sigil_vm::{ProgramBuilder, Interpreter};
//! use sigil_trace::{Engine, observer::CountingObserver};
//!
//! // A guest function that stores 1..=3 into memory and sums it back.
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 4);
//! let entry = f.entry();
//! f.switch_to(entry);
//! let buf = f.alloc_imm(0, 24);           // r0 = alloc(24)
//! for i in 0..3u64 {
//!     f.imm(1, i + 1);                    // r1 = i+1
//!     f.store(1, buf, (i * 8) as i64, 8); // mem[r0 + 8i] = r1
//! }
//! f.imm(2, 0);
//! for i in 0..3u64 {
//!     f.load(3, buf, (i * 8) as i64, 8);  // r3 = mem[r0 + 8i]
//!     f.add(2, 2, 3);                     // r2 += r3
//! }
//! f.ret_reg(2);
//! f.finish();
//! let program = pb.build().expect("valid program");
//!
//! let mut engine = Engine::new(CountingObserver::new());
//! let result = Interpreter::new(&program).run(&mut engine).expect("no trap");
//! assert_eq!(result, Some(6));
//! let counts = engine.finish().into_counts();
//! assert_eq!(counts.writes, 3);
//! assert_eq!(counts.reads, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
pub mod disasm;
pub mod gen;
pub mod interp;
pub mod isa;
pub mod memory;
pub mod program;
pub mod verifier;

pub use asm::{assemble, AsmError};
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use gen::{GenFunc, GenInst, GenProgram};
pub use interp::{Interpreter, Trap};
pub use isa::{AluOp, FaluOp, Inst, Reg, Terminator};
pub use memory::GuestMemory;
pub use program::{BlockId, FuncId, Program, VmFunction};
pub use verifier::VerifyError;
