//! Static checking of guest programs.

use std::error::Error;
use std::fmt;

use crate::isa::{Inst, Terminator};
use crate::program::{BlockId, FuncId, Program};

/// A static well-formedness violation in a guest program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A declared function was never defined.
    UndefinedFunction {
        /// Name of the missing function.
        name: String,
    },
    /// The program has no entry point.
    NoEntryPoint,
    /// A block has no terminator.
    UnterminatedBlock {
        /// Function containing the block.
        func: FuncId,
        /// The offending block.
        block: BlockId,
    },
    /// An instruction names a register outside the function's register file.
    RegisterOutOfRange {
        /// Function containing the instruction.
        func: FuncId,
        /// The offending register.
        reg: u16,
        /// Registers declared by the function.
        n_regs: u16,
    },
    /// A terminator targets a block that does not exist.
    BlockOutOfRange {
        /// Function containing the terminator.
        func: FuncId,
        /// The missing target.
        target: BlockId,
    },
    /// A call names a function that does not exist.
    FunctionOutOfRange {
        /// Function containing the call.
        func: FuncId,
        /// The missing callee.
        callee: FuncId,
    },
    /// A load/store uses a width other than 1, 2, 4 or 8.
    BadAccessSize {
        /// Function containing the access.
        func: FuncId,
        /// The invalid width.
        size: u8,
    },
    /// A call passes more arguments than the callee has registers.
    TooManyArgs {
        /// Function containing the call.
        func: FuncId,
        /// The callee.
        callee: FuncId,
        /// Arguments passed.
        args: usize,
        /// Registers available in the callee.
        n_regs: u16,
    },
    /// A function declares zero registers but uses instructions.
    EmptyRegisterFile {
        /// The offending function.
        func: FuncId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UndefinedFunction { name } => {
                write!(f, "function `{name}` declared but never defined")
            }
            VerifyError::NoEntryPoint => f.write_str("program has no entry point"),
            VerifyError::UnterminatedBlock { func, block } => {
                write!(f, "block {block} of {func} has no terminator")
            }
            VerifyError::RegisterOutOfRange { func, reg, n_regs } => {
                write!(f, "register r{reg} out of range in {func} (has {n_regs})")
            }
            VerifyError::BlockOutOfRange { func, target } => {
                write!(f, "branch target {target} out of range in {func}")
            }
            VerifyError::FunctionOutOfRange { func, callee } => {
                write!(f, "call target {callee} out of range in {func}")
            }
            VerifyError::BadAccessSize { func, size } => {
                write!(f, "access size {size} invalid in {func} (must be 1/2/4/8)")
            }
            VerifyError::TooManyArgs {
                func,
                callee,
                args,
                n_regs,
            } => write!(
                f,
                "call in {func} passes {args} args but {callee} has only {n_regs} registers"
            ),
            VerifyError::EmptyRegisterFile { func } => {
                write!(
                    f,
                    "{func} declares zero registers but contains instructions"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// Verifies every function of `program`.
///
/// # Errors
///
/// Returns the first violation found, scanning functions in order.
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    for (fi, func) in program.functions.iter().enumerate() {
        let fid = FuncId(u32::try_from(fi).expect("function count fits u32"));
        let check_reg = |reg: u16| -> Result<(), VerifyError> {
            if reg >= func.n_regs {
                Err(VerifyError::RegisterOutOfRange {
                    func: fid,
                    reg,
                    n_regs: func.n_regs,
                })
            } else {
                Ok(())
            }
        };
        let check_block = |target: BlockId| -> Result<(), VerifyError> {
            if target.index() >= func.blocks.len() {
                Err(VerifyError::BlockOutOfRange { func: fid, target })
            } else {
                Ok(())
            }
        };
        if func.n_regs == 0 && func.blocks.iter().any(|b| !b.insts.is_empty()) {
            return Err(VerifyError::EmptyRegisterFile { func: fid });
        }
        for block in &func.blocks {
            for inst in &block.insts {
                match inst {
                    Inst::Imm { dst, .. } => check_reg(*dst)?,
                    Inst::Mov { dst, src } => {
                        check_reg(*dst)?;
                        check_reg(*src)?;
                    }
                    Inst::Alu { dst, a, b, .. } | Inst::Falu { dst, a, b, .. } => {
                        check_reg(*dst)?;
                        check_reg(*a)?;
                        check_reg(*b)?;
                    }
                    Inst::Load {
                        dst, base, size, ..
                    } => {
                        check_reg(*dst)?;
                        check_reg(*base)?;
                        if !matches!(size, 1 | 2 | 4 | 8) {
                            return Err(VerifyError::BadAccessSize {
                                func: fid,
                                size: *size,
                            });
                        }
                    }
                    Inst::Store {
                        src, base, size, ..
                    } => {
                        check_reg(*src)?;
                        check_reg(*base)?;
                        if !matches!(size, 1 | 2 | 4 | 8) {
                            return Err(VerifyError::BadAccessSize {
                                func: fid,
                                size: *size,
                            });
                        }
                    }
                    Inst::Alloc { dst, size } => {
                        check_reg(*dst)?;
                        check_reg(*size)?;
                    }
                    Inst::Join { src } => check_reg(*src)?,
                    Inst::Call {
                        func: callee,
                        args,
                        dst,
                    }
                    | Inst::Spawn {
                        func: callee,
                        args,
                        dst,
                    } => {
                        let Some(target) = program.functions.get(callee.index()) else {
                            return Err(VerifyError::FunctionOutOfRange {
                                func: fid,
                                callee: *callee,
                            });
                        };
                        if args.len() > usize::from(target.n_regs) {
                            return Err(VerifyError::TooManyArgs {
                                func: fid,
                                callee: *callee,
                                args: args.len(),
                                n_regs: target.n_regs,
                            });
                        }
                        for &arg in args {
                            check_reg(arg)?;
                        }
                        if let Some(dst) = dst {
                            check_reg(*dst)?;
                        }
                    }
                }
            }
            match block.term {
                None => {
                    let bid = BlockId(
                        u32::try_from(
                            func.blocks
                                .iter()
                                .position(|b| std::ptr::eq(b, block))
                                .expect("block belongs to function"),
                        )
                        .expect("block count fits u32"),
                    );
                    return Err(VerifyError::UnterminatedBlock {
                        func: fid,
                        block: bid,
                    });
                }
                Some(Terminator::Jmp { target }) => check_block(target)?,
                Some(Terminator::Br {
                    cond,
                    then_blk,
                    else_blk,
                }) => {
                    check_reg(cond)?;
                    check_block(then_blk)?;
                    check_block(else_blk)?;
                }
                Some(Terminator::Ret { value }) => {
                    if let Some(v) = value {
                        check_reg(v)?;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Block, VmFunction};

    fn single_fn_program(func: VmFunction) -> Program {
        Program {
            functions: vec![func],
            entry: FuncId(0),
        }
    }

    #[test]
    fn unterminated_block_rejected() {
        let func = VmFunction::new("f", 1);
        let err = verify(&single_fn_program(func)).unwrap_err();
        assert!(matches!(err, VerifyError::UnterminatedBlock { .. }));
    }

    #[test]
    fn register_out_of_range_rejected() {
        let mut func = VmFunction::new("f", 1);
        func.blocks[0].insts.push(Inst::Imm { dst: 5, value: 0 });
        func.blocks[0].term = Some(Terminator::Ret { value: None });
        let err = verify(&single_fn_program(func)).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::RegisterOutOfRange {
                reg: 5,
                n_regs: 1,
                ..
            }
        ));
    }

    #[test]
    fn branch_to_missing_block_rejected() {
        let mut func = VmFunction::new("f", 1);
        func.blocks[0].term = Some(Terminator::Jmp { target: BlockId(9) });
        let err = verify(&single_fn_program(func)).unwrap_err();
        assert!(matches!(err, VerifyError::BlockOutOfRange { .. }));
    }

    #[test]
    fn call_to_missing_function_rejected() {
        let mut func = VmFunction::new("f", 1);
        func.blocks[0].insts.push(Inst::Call {
            func: FuncId(3),
            args: vec![],
            dst: None,
        });
        func.blocks[0].term = Some(Terminator::Ret { value: None });
        let err = verify(&single_fn_program(func)).unwrap_err();
        assert!(matches!(err, VerifyError::FunctionOutOfRange { .. }));
    }

    #[test]
    fn spawn_checked_like_call() {
        let mut func = VmFunction::new("f", 1);
        func.blocks[0].insts.push(Inst::Spawn {
            func: FuncId(5),
            args: vec![],
            dst: None,
        });
        func.blocks[0].term = Some(Terminator::Ret { value: None });
        let err = verify(&single_fn_program(func)).unwrap_err();
        assert!(matches!(err, VerifyError::FunctionOutOfRange { .. }));
    }

    #[test]
    fn join_register_bounds_checked() {
        let mut func = VmFunction::new("f", 1);
        func.blocks[0].insts.push(Inst::Join { src: 3 });
        func.blocks[0].term = Some(Terminator::Ret { value: None });
        let err = verify(&single_fn_program(func)).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::RegisterOutOfRange { reg: 3, .. }
        ));
    }

    #[test]
    fn bad_access_size_rejected() {
        let mut func = VmFunction::new("f", 2);
        func.blocks[0].insts.push(Inst::Load {
            dst: 0,
            base: 1,
            offset: 0,
            size: 3,
        });
        func.blocks[0].term = Some(Terminator::Ret { value: None });
        let err = verify(&single_fn_program(func)).unwrap_err();
        assert!(matches!(err, VerifyError::BadAccessSize { size: 3, .. }));
    }

    #[test]
    fn too_many_args_rejected() {
        let mut callee = VmFunction::new("callee", 1);
        callee.blocks[0].term = Some(Terminator::Ret { value: None });
        let mut caller = VmFunction::new("caller", 4);
        caller.blocks[0].insts.push(Inst::Call {
            func: FuncId(0),
            args: vec![0, 1, 2],
            dst: None,
        });
        caller.blocks[0].term = Some(Terminator::Ret { value: None });
        let program = Program {
            functions: vec![callee, caller],
            entry: FuncId(1),
        };
        let err = verify(&program).unwrap_err();
        assert!(matches!(err, VerifyError::TooManyArgs { args: 3, .. }));
    }

    #[test]
    fn empty_valid_function_accepted() {
        let mut func = VmFunction::new("f", 0);
        func.blocks = vec![Block {
            insts: vec![],
            term: Some(Terminator::Ret { value: None }),
        }];
        assert!(verify(&single_fn_program(func)).is_ok());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::RegisterOutOfRange {
            func: FuncId(1),
            reg: 9,
            n_regs: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("r9") && msg.contains("f1") && msg.contains('4'));
    }
}
