//! Sparse guest memory with a bump allocator.

use std::collections::HashMap;

use sigil_trace::Addr;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Base address handed out by the first allocation.
pub const HEAP_BASE: Addr = 0x1000_0000;

/// The guest's data memory: sparse, zero-initialized, byte addressable.
///
/// The VM does not model protection; any address is readable (reads of
/// never-written memory return zero) and writable. Allocation exists so
/// that guest programs can obtain fresh, non-overlapping buffers, like a
/// simple `malloc`.
///
/// # Example
///
/// ```
/// use sigil_vm::GuestMemory;
///
/// let mut mem = GuestMemory::new();
/// let buf = mem.alloc(64);
/// mem.store(buf, 8, 0xdead_beef);
/// assert_eq!(mem.load(buf, 8), 0xdead_beef);
/// assert_eq!(mem.load(buf + 32, 8), 0, "untouched memory reads as zero");
/// ```
#[derive(Debug, Default)]
pub struct GuestMemory {
    pages: HashMap<u64, Box<[u8]>>,
    brk: Addr,
    allocated_bytes: u64,
}

impl GuestMemory {
    /// Creates empty guest memory.
    pub fn new() -> Self {
        GuestMemory {
            pages: HashMap::new(),
            brk: HEAP_BASE,
            allocated_bytes: 0,
        }
    }

    /// Allocates `size` bytes, 16-byte aligned, returning the base address.
    /// A zero-sized allocation returns a unique address too.
    pub fn alloc(&mut self, size: u64) -> Addr {
        let base = self.brk;
        let padded = size.max(1).div_ceil(16) * 16;
        self.brk += padded;
        self.allocated_bytes += size;
        base
    }

    /// Total bytes handed out by [`GuestMemory::alloc`].
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    fn page_mut(&mut self, addr: Addr) -> &mut [u8] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice())
    }

    /// Reads one byte.
    pub fn load_u8(&self, addr: Addr) -> u8 {
        self.pages
            .get(&(addr >> PAGE_BITS))
            .map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Writes one byte.
    pub fn store_u8(&mut self, addr: Addr, value: u8) {
        let off = (addr & PAGE_MASK) as usize;
        self.page_mut(addr)[off] = value;
    }

    /// Reads `size ∈ {1,2,4,8}` bytes little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not one of 1, 2, 4, 8 (the verifier prevents
    /// this for checked programs).
    pub fn load(&self, addr: Addr, size: u8) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let mut value = 0u64;
        for i in 0..u64::from(size) {
            value |= u64::from(self.load_u8(addr + i)) << (8 * i);
        }
        value
    }

    /// Writes the low `size ∈ {1,2,4,8}` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn store(&mut self, addr: Addr, size: u8, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        for i in 0..u64::from(size) {
            self.store_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Number of resident pages (for memory accounting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_disjoint_aligned_buffers() {
        let mut mem = GuestMemory::new();
        let a = mem.alloc(10);
        let b = mem.alloc(1);
        let c = mem.alloc(0);
        assert!(a.is_multiple_of(16) && b.is_multiple_of(16) && c.is_multiple_of(16));
        assert!(b >= a + 16);
        assert!(c > b);
        assert_eq!(mem.allocated_bytes(), 11);
    }

    #[test]
    fn load_store_round_trip_all_sizes() {
        let mut mem = GuestMemory::new();
        let buf = mem.alloc(64);
        for &size in &[1u8, 2, 4, 8] {
            let value = 0x1122_3344_5566_7788u64;
            mem.store(buf, size, value);
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * size)) - 1
            };
            assert_eq!(mem.load(buf, size), value & mask, "size {size}");
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = GuestMemory::new();
        mem.store(0x100, 4, 0x0A0B_0C0D);
        assert_eq!(mem.load_u8(0x100), 0x0D);
        assert_eq!(mem.load_u8(0x103), 0x0A);
    }

    #[test]
    fn cross_page_access_works() {
        let mut mem = GuestMemory::new();
        let addr = (1 << PAGE_BITS) - 4; // straddles the page boundary
        mem.store(addr, 8, u64::MAX);
        assert_eq!(mem.load(addr, 8), u64::MAX);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = GuestMemory::new();
        assert_eq!(mem.load(0xdead_beef, 8), 0);
    }

    #[test]
    #[should_panic(expected = "bad access size")]
    fn invalid_size_panics() {
        let mem = GuestMemory::new();
        let _ = mem.load(0, 3);
    }
}
