//! Seeded random guest-program generation for differential testing.
//!
//! [`GenProgram`] is a tiny intermediate representation on top of the
//! [`ProgramBuilder`](crate::ProgramBuilder): a list of functions whose
//! bodies are flat vectors of [`GenInst`]s. The representation is chosen
//! so that **dropping any subset of instructions keeps the program
//! verifier-valid** — registers default to zero, calls pass the same
//! fixed argument layout everywhere, and recursion guards are emitted as
//! part of the [`GenInst::SelfCall`] lowering — which is exactly what a
//! delta-debugging shrinker needs.
//!
//! Generated programs exercise the behaviours the differential oracle
//! cares about: call trees (calls form a DAG over the function list),
//! bounded self-recursion driven by a depth argument, aliasing loads and
//! stores into a handful of shared buffers (every function receives every
//! buffer base as an argument), hot-offset reuse patterns, and a buffer
//! large enough to span several shadow-table chunks so constrained-memory
//! replays actually evict.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::program::{FuncId, Program};

/// Access sizes the generator draws from.
const SIZES: [u8; 4] = [1, 2, 4, 8];

/// Largest buffer: 4 shadow-table chunks (chunk = 4 KiB of address
/// space), so chunk-limited replays exercise eviction.
const BIG_BUFFER: u64 = 16 * 1024;

/// One instruction of a generated function body.
///
/// Register operands index a small *general* register file (`g0..g5`);
/// the lowering maps them above the fixed argument registers. Every
/// variant lowers to a self-contained instruction sequence, so any
/// subset of a body remains verifier-valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenInst {
    /// `g[dst] = value`
    Imm {
        /// Destination general register.
        dst: u8,
        /// Immediate value.
        value: u64,
    },
    /// `g[dst] = g[src]`
    Mov {
        /// Destination general register.
        dst: u8,
        /// Source general register.
        src: u8,
    },
    /// Integer ALU op (never `Div`/`Rem`, which can trap).
    Alu {
        /// Index into the generator's ALU op table.
        op: u8,
        /// Destination general register.
        dst: u8,
        /// First operand.
        a: u8,
        /// Second operand.
        b: u8,
    },
    /// Floating-point ALU op.
    Falu {
        /// Index into the generator's FALU op table.
        op: u8,
        /// Destination general register.
        dst: u8,
        /// First operand.
        a: u8,
        /// Second operand.
        b: u8,
    },
    /// `g[dst] = mem[buf + offset]`
    Load {
        /// Destination general register.
        dst: u8,
        /// Buffer index.
        buf: u8,
        /// Byte offset into the buffer.
        offset: u32,
        /// Access size in bytes (1/2/4/8).
        size: u8,
    },
    /// `mem[buf + offset] = g[src]`
    Store {
        /// Source general register.
        src: u8,
        /// Buffer index.
        buf: u8,
        /// Byte offset into the buffer.
        offset: u32,
        /// Access size in bytes (1/2/4/8).
        size: u8,
    },
    /// Call a strictly higher-indexed function, forwarding the shared
    /// buffer bases and the current depth budget.
    Call {
        /// Index into [`GenProgram::funcs`]; always greater than the
        /// calling function's own index.
        callee: u8,
    },
    /// Guarded self-recursion: `if depth > 0 { depth -= 1; self(...) }`.
    SelfCall,
    /// Spawn a guest thread running a strictly higher-indexed function
    /// with the same shared-buffer argument layout as [`GenInst::Call`],
    /// so spawned threads alias the same memory as every other function
    /// — the cross-thread communication the profiler must classify.
    Spawn {
        /// Index into [`GenProgram::funcs`]; always greater than the
        /// spawning function's own index.
        callee: u8,
        /// Handle register slot the thread handle is stored into.
        handle: u8,
    },
    /// Join the thread whose handle sits in a handle register slot.
    /// Slots default to zero, and joining handle 0 is a no-op, so a
    /// `Join` whose `Spawn` was delta-minimized away stays valid.
    Join {
        /// Handle register slot to read.
        handle: u8,
    },
}

/// A generated function: a name and a flat body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenFunc {
    /// Function name (unique within the program).
    pub name: String,
    /// Straight-line body; control flow exists only inside the
    /// [`GenInst::SelfCall`] lowering.
    pub body: Vec<GenInst>,
}

/// A randomly generated guest program in shrinkable IR form.
///
/// `funcs[0]` is the entry point; it allocates the shared buffers and
/// seeds the depth budget before running its own body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenProgram {
    /// Byte sizes of the shared buffers (allocated by the entry).
    pub buffers: Vec<u64>,
    /// Initial self-recursion depth budget passed down every call.
    pub depth: u64,
    /// Seed for the interpreter's guest-thread scheduler. Equal to the
    /// generation seed, carried on the program so shrunk copies replay
    /// the same interleaving (`drop_range` clones it unchanged).
    pub schedule_seed: u64,
    /// The functions; `funcs[0]` is the entry.
    pub funcs: Vec<GenFunc>,
}

impl GenProgram {
    /// Generates a single-threaded program from `seed`. The same seed
    /// always yields the same program. Equivalent to
    /// [`GenProgram::generate_mt`] with one thread.
    pub fn generate(seed: u64) -> Self {
        Self::generate_mt(seed, 1)
    }

    /// Generates a program from `seed` whose entry spawns `threads - 1`
    /// guest threads (and joins each of them). All injection draws happen
    /// strictly after the base program's draws, so
    /// `generate_mt(seed, 1)` is bit-identical to [`GenProgram::generate`]
    /// and raising the thread count never reshuffles the underlying
    /// program. Spawned threads receive the shared buffer bases through
    /// the standard argument layout, so every thread aliases the same
    /// memory — the cross-thread traffic the profiler must classify.
    pub fn generate_mt(seed: u64, threads: u32) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_bufs = rng.gen_range(2..5usize);
        let mut buffers = vec![BIG_BUFFER];
        for _ in 1..n_bufs {
            buffers.push(u64::from(rng.gen_range(64..2048u32)));
        }
        let n_funcs = rng.gen_range(2..6usize);
        let depth = rng.gen_range(0..4u64);

        // Per-buffer hot offsets: a small set the whole program keeps
        // coming back to, so repeat reads and cross-function reuse occur
        // often instead of almost never.
        let hot: Vec<Vec<u32>> = buffers
            .iter()
            .map(|&size| {
                let span = u32::try_from(size).expect("buffer fits u32") - 8;
                (0..4).map(|_| rng.gen_range(0..span + 1)).collect()
            })
            .collect();

        let mut funcs = Vec::with_capacity(n_funcs);
        for idx in 0..n_funcs {
            let name = if idx == 0 {
                "main".to_owned()
            } else {
                format!("f{idx}")
            };
            let recursive = idx > 0 && rng.gen_bool(0.4);
            let body_len = rng.gen_range(4..24usize);
            let mut body = Vec::with_capacity(body_len);
            let mut calls = 0;
            let mut selfcalls = 0;
            for _ in 0..body_len {
                body.push(Self::random_inst(
                    &mut rng,
                    idx,
                    n_funcs,
                    &buffers,
                    &hot,
                    recursive,
                    &mut calls,
                    &mut selfcalls,
                ));
            }
            funcs.push(GenFunc { name, body });
        }
        let mut prog = GenProgram {
            buffers,
            depth,
            schedule_seed: seed,
            funcs,
        };
        // Thread injection: every draw below happens after the base
        // program is fully generated, preserving single-thread identity.
        // Each extra thread gets a Spawn at a random point in the entry
        // body and a Join strictly after it, rotating through the handle
        // register slots.
        for t in 1..threads {
            let callee = rng.gen_range(1..prog.funcs.len());
            let handle = u8::try_from((t - 1) % u32::from(HANDLE_SLOTS)).expect("few slots");
            let main = &mut prog.funcs[0].body;
            let spawn_at = rng.gen_range(0..main.len() + 1);
            main.insert(
                spawn_at,
                GenInst::Spawn {
                    callee: u8::try_from(callee).expect("few functions"),
                    handle,
                },
            );
            let join_at = rng.gen_range(spawn_at + 1..main.len() + 1);
            main.insert(join_at, GenInst::Join { handle });
        }
        prog
    }

    #[allow(clippy::too_many_arguments)]
    fn random_inst(
        rng: &mut SmallRng,
        func_idx: usize,
        n_funcs: usize,
        buffers: &[u64],
        hot: &[Vec<u32>],
        recursive: bool,
        calls: &mut u32,
        selfcalls: &mut u32,
    ) -> GenInst {
        let reg = |rng: &mut SmallRng| rng.gen_range(0..GENERAL_REGS);
        loop {
            match rng.gen_range(0..10u32) {
                0 => {
                    return GenInst::Imm {
                        dst: reg(rng),
                        value: rng.gen_range(0..1024u64),
                    }
                }
                1 => {
                    return GenInst::Mov {
                        dst: reg(rng),
                        src: reg(rng),
                    }
                }
                2 => {
                    return GenInst::Alu {
                        op: rng.gen_range(0..ALU_OPS_N),
                        dst: reg(rng),
                        a: reg(rng),
                        b: reg(rng),
                    }
                }
                3 => {
                    return GenInst::Falu {
                        op: rng.gen_range(0..FALU_OPS_N),
                        dst: reg(rng),
                        a: reg(rng),
                        b: reg(rng),
                    }
                }
                4 | 5 => {
                    let (buf, offset, size) = Self::random_access(rng, buffers, hot);
                    return GenInst::Load {
                        dst: reg(rng),
                        buf,
                        offset,
                        size,
                    };
                }
                6 | 7 => {
                    let (buf, offset, size) = Self::random_access(rng, buffers, hot);
                    return GenInst::Store {
                        src: reg(rng),
                        buf,
                        offset,
                        size,
                    };
                }
                8 => {
                    // Calls form a DAG: only strictly higher-indexed
                    // callees, at most two per body.
                    if func_idx + 1 < n_funcs && *calls < 2 {
                        *calls += 1;
                        let callee = rng.gen_range(func_idx + 1..n_funcs);
                        return GenInst::Call {
                            callee: u8::try_from(callee).expect("few functions"),
                        };
                    }
                }
                _ => {
                    if recursive && *selfcalls < 1 {
                        *selfcalls += 1;
                        return GenInst::SelfCall;
                    }
                }
            }
        }
    }

    fn random_access(rng: &mut SmallRng, buffers: &[u64], hot: &[Vec<u32>]) -> (u8, u32, u8) {
        // Some accesses deliberately straddle a 4 KiB shadow-chunk split:
        // buffer 0 is the first heap allocation, so `HEAP_BASE` alignment
        // makes its offsets 4096/8192/12288 exact chunk boundaries. These
        // multi-chunk accesses pit the ranged shadow hot path against the
        // per-byte oracle in `sigil diff` / `tests/differential.rs`.
        if rng.gen_bool(0.125) {
            let boundary = 4096 * rng.gen_range(1..4u32);
            let size = SIZES[rng.gen_range(1..SIZES.len())]; // >= 2 bytes
            let back = rng.gen_range(1..u32::from(size));
            return (0, boundary - back, size);
        }
        let buf = rng.gen_range(0..buffers.len());
        let size = SIZES[rng.gen_range(0..SIZES.len())];
        let offset = if rng.gen_bool(0.6) {
            hot[buf][rng.gen_range(0..hot[buf].len())]
        } else {
            let span = u32::try_from(buffers[buf]).expect("buffer fits u32") - 8;
            rng.gen_range(0..span + 1)
        };
        (u8::try_from(buf).expect("few buffers"), offset, size)
    }

    /// Total instruction count across all bodies (the shrinker's index
    /// space).
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.body.len()).sum()
    }

    /// Returns a copy with `count` instructions removed starting at flat
    /// index `start` (indices run through `funcs[0].body`, then
    /// `funcs[1].body`, …). Out-of-range portions are ignored.
    pub fn drop_range(&self, start: usize, count: usize) -> GenProgram {
        let mut out = self.clone();
        let mut flat = 0usize;
        let end = start.saturating_add(count);
        for func in &mut out.funcs {
            let len = func.body.len();
            let lo = start.saturating_sub(flat).min(len);
            let hi = end.saturating_sub(flat).min(len);
            if lo < hi {
                func.body.drain(lo..hi);
            }
            flat += len;
        }
        out
    }

    /// Lowers the IR to a verified [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if the lowering produces an invalid program — that would be
    /// a bug in the generator, never in a caller.
    pub fn build(&self) -> Program {
        let n_bufs = u16::try_from(self.buffers.len()).expect("few buffers");
        let layout = RegLayout { n_bufs };
        let mut pb = ProgramBuilder::new();
        let ids: Vec<FuncId> = self.funcs.iter().map(|f| pb.declare(&f.name)).collect();
        for (idx, func) in self.funcs.iter().enumerate() {
            let mut fb = pb.define(ids[idx], layout.n_regs());
            if idx == 0 {
                for (b, &size) in self.buffers.iter().enumerate() {
                    let reg = layout.buf(u8::try_from(b).expect("few buffers"));
                    // alloc_imm clobbers the register with the size first,
                    // which is fine: buffer bases are only read afterwards.
                    fb.alloc_imm(reg, size);
                }
                fb.imm(layout.depth(), self.depth);
            }
            for inst in &func.body {
                lower_inst(&mut fb, &layout, inst, &ids, idx);
            }
            fb.ret();
            fb.finish();
        }
        pb.set_entry(ids[0]);
        pb.build().expect("generated programs verify")
    }
}

/// How many general registers the bodies address.
const GENERAL_REGS: u8 = 6;

/// How many thread-handle register slots the layout reserves. Spawns
/// rotate through them, so at most this many outstanding handles are
/// distinguishable — plenty for the differential thread axis (≤ 4
/// guest threads).
const HANDLE_SLOTS: u8 = 4;

/// ALU ops the generator draws from — excludes `Div`/`Rem`, which trap
/// on zero divisors.
const ALU_OPS_N: u8 = 10;
const ALU_OPS: [crate::AluOp; ALU_OPS_N as usize] = [
    crate::AluOp::Add,
    crate::AluOp::Sub,
    crate::AluOp::Mul,
    crate::AluOp::And,
    crate::AluOp::Or,
    crate::AluOp::Xor,
    crate::AluOp::Shl,
    crate::AluOp::Shr,
    crate::AluOp::CmpLt,
    crate::AluOp::CmpEq,
];

const FALU_OPS_N: u8 = 3;
const FALU_OPS: [crate::FaluOp; FALU_OPS_N as usize] = [
    crate::FaluOp::FAdd,
    crate::FaluOp::FSub,
    crate::FaluOp::FMul,
];

/// Fixed register layout shared by every generated function.
///
/// `r0..rB-1` hold the buffer bases, `rB` the depth budget (both passed
/// as call arguments in this order), then six general registers, two
/// scratch registers for the `SelfCall` guard, and [`HANDLE_SLOTS`]
/// thread-handle slots. Handle slots start at zero and joining handle 0
/// is a no-op, so a `Join` survives its `Spawn` being shrunk away.
struct RegLayout {
    n_bufs: u16,
}

impl RegLayout {
    fn buf(&self, b: u8) -> u16 {
        u16::from(b)
    }
    fn depth(&self) -> u16 {
        self.n_bufs
    }
    fn general(&self, g: u8) -> u16 {
        self.n_bufs + 1 + u16::from(g)
    }
    fn scratch(&self, s: u8) -> u16 {
        self.n_bufs + 1 + u16::from(GENERAL_REGS) + u16::from(s)
    }
    fn handle(&self, h: u8) -> u16 {
        self.n_bufs + 1 + u16::from(GENERAL_REGS) + 2 + u16::from(h % HANDLE_SLOTS)
    }
    fn n_regs(&self) -> u16 {
        self.n_bufs + 1 + u16::from(GENERAL_REGS) + 2 + u16::from(HANDLE_SLOTS)
    }
    /// The argument list every call forwards: all buffers, then depth.
    fn args(&self) -> Vec<u16> {
        (0..self.n_bufs).chain([self.depth()]).collect()
    }
}

fn lower_inst(
    fb: &mut FunctionBuilder<'_>,
    layout: &RegLayout,
    inst: &GenInst,
    ids: &[FuncId],
    self_idx: usize,
) {
    match *inst {
        GenInst::Imm { dst, value } => fb.imm(layout.general(dst), value),
        GenInst::Mov { dst, src } => fb.mov(layout.general(dst), layout.general(src)),
        GenInst::Alu { op, dst, a, b } => fb.alu(
            ALU_OPS[usize::from(op)],
            layout.general(dst),
            layout.general(a),
            layout.general(b),
        ),
        GenInst::Falu { op, dst, a, b } => fb.falu(
            FALU_OPS[usize::from(op)],
            layout.general(dst),
            layout.general(a),
            layout.general(b),
        ),
        GenInst::Load {
            dst,
            buf,
            offset,
            size,
        } => fb.load(
            layout.general(dst),
            layout.buf(buf),
            i64::from(offset),
            size,
        ),
        GenInst::Store {
            src,
            buf,
            offset,
            size,
        } => fb.store(
            layout.general(src),
            layout.buf(buf),
            i64::from(offset),
            size,
        ),
        GenInst::Call { callee } => {
            fb.call(ids[usize::from(callee)], &layout.args(), None);
        }
        GenInst::Spawn { callee, handle } => {
            fb.spawn(
                ids[usize::from(callee)],
                &layout.args(),
                Some(layout.handle(handle)),
            );
        }
        GenInst::Join { handle } => fb.join(layout.handle(handle)),
        GenInst::SelfCall => {
            // if 0 < depth { depth -= 1; self(bufs..., depth) }
            let s1 = layout.scratch(0);
            let s2 = layout.scratch(1);
            fb.imm(s1, 0);
            fb.cmplt(s1, s1, layout.depth());
            let rec = fb.block();
            let cont = fb.block();
            fb.br(s1, rec, cont);
            fb.switch_to(rec);
            fb.imm(s2, 1);
            fb.sub(layout.depth(), layout.depth(), s2);
            fb.call(ids[self_idx], &layout.args(), None);
            fb.jmp(cont);
            fb.switch_to(cont);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::observer::CountingObserver;
    use sigil_trace::Engine;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(GenProgram::generate(42), GenProgram::generate(42));
        assert_ne!(GenProgram::generate(1), GenProgram::generate(2));
    }

    #[test]
    fn generated_programs_build_and_run() {
        for seed in 0..50 {
            let gen = GenProgram::generate(seed);
            let program = gen.build();
            let mut engine = Engine::new(CountingObserver::new());
            let result = crate::Interpreter::new(&program)
                .with_fuel(2_000_000)
                .run(&mut engine);
            assert!(result.is_ok(), "seed {seed} trapped: {result:?}");
            let counts = engine.finish().into_counts();
            assert_eq!(counts.calls, counts.returns, "seed {seed} unbalanced");
        }
    }

    #[test]
    fn generator_emits_chunk_straddling_accesses() {
        // The differential harness leans on these to pit the ranged
        // shadow hot path against the per-byte oracle: accesses into
        // buffer 0 whose byte range crosses a 4 KiB chunk boundary.
        let mut straddling = 0usize;
        for seed in 0..20 {
            for func in &GenProgram::generate(seed).funcs {
                for inst in &func.body {
                    let (buf, offset, size) = match *inst {
                        GenInst::Load {
                            buf, offset, size, ..
                        }
                        | GenInst::Store {
                            buf, offset, size, ..
                        } => (buf, offset, size),
                        _ => continue,
                    };
                    let (start, end) = (u64::from(offset), u64::from(offset) + u64::from(size));
                    if buf == 0 && start / 4096 != (end - 1) / 4096 {
                        straddling += 1;
                    }
                }
            }
        }
        assert!(
            straddling >= 10,
            "only {straddling} straddling accesses across 20 seeds"
        );
    }

    #[test]
    fn chunk_straddling_accesses_also_straddle_shards() {
        // Sharded replay routes each 4 KiB chunk to shard `key % N`, so
        // an access spanning consecutive chunks k and k+1 always lands
        // on two *different* shards for every shard count N >= 2 — the
        // generator's existing chunk-straddling accesses double as
        // shard-boundary coverage for the whole differential shard axis,
        // with no changes to its RNG draw order (which would reshuffle
        // every committed seed). Pin both halves of that argument.
        let mut cross_shard = 0usize;
        for seed in 0..20 {
            for func in &GenProgram::generate(seed).funcs {
                for inst in &func.body {
                    let (buf, offset, size) = match *inst {
                        GenInst::Load {
                            buf, offset, size, ..
                        }
                        | GenInst::Store {
                            buf, offset, size, ..
                        } => (buf, offset, size),
                        _ => continue,
                    };
                    let (start, end) = (u64::from(offset), u64::from(offset) + u64::from(size));
                    let (first, last) = (start / 4096, (end - 1) / 4096);
                    if buf != 0 || first == last {
                        continue;
                    }
                    // Generated straddles span exactly one boundary...
                    assert_eq!(last, first + 1, "seed {seed}: straddle wider than 2 chunks");
                    // ...and consecutive chunk keys always shard apart.
                    for shards in 2..=8u64 {
                        assert_ne!(first % shards, last % shards);
                    }
                    cross_shard += 1;
                }
            }
        }
        assert!(
            cross_shard >= 10,
            "only {cross_shard} cross-shard accesses across 20 seeds"
        );
    }

    #[test]
    fn drop_range_shrinks_and_still_builds() {
        let gen = GenProgram::generate(7);
        let n = gen.inst_count();
        assert!(n > 0);
        for start in 0..n {
            let smaller = gen.drop_range(start, 3);
            assert!(smaller.inst_count() < n);
            let program = smaller.build();
            let mut engine = Engine::new(CountingObserver::new());
            crate::Interpreter::new(&program)
                .with_fuel(2_000_000)
                .run(&mut engine)
                .expect("shrunk program runs");
            engine.finish();
        }
    }

    #[test]
    fn single_thread_generation_is_bit_identical_to_generate() {
        // The thread axis must not reshuffle committed seeds: with one
        // thread, generate_mt takes zero extra RNG draws.
        for seed in 0..30 {
            assert_eq!(GenProgram::generate(seed), GenProgram::generate_mt(seed, 1));
        }
    }

    #[test]
    fn multithreaded_generation_is_deterministic_and_balanced() {
        for seed in 0..20 {
            let a = GenProgram::generate_mt(seed, 4);
            assert_eq!(a, GenProgram::generate_mt(seed, 4));
            assert_eq!(a.schedule_seed, seed);
            let main = &a.funcs[0].body;
            let spawns: Vec<usize> = main
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, GenInst::Spawn { .. }))
                .map(|(p, _)| p)
                .collect();
            let joins: Vec<usize> = main
                .iter()
                .enumerate()
                .filter(|(_, i)| matches!(i, GenInst::Join { .. }))
                .map(|(p, _)| p)
                .collect();
            assert_eq!(spawns.len(), 3, "seed {seed}: expected 3 spawns");
            assert_eq!(joins.len(), 3, "seed {seed}: expected 3 joins");
            // Every handle slot's spawn precedes its join, so the join
            // always observes the live handle.
            for (handle, spawn_at) in main.iter().enumerate().filter_map(|(p, i)| match *i {
                GenInst::Spawn { handle, .. } => Some((handle, p)),
                _ => None,
            }) {
                let join_at = main
                    .iter()
                    .position(|i| matches!(*i, GenInst::Join { handle: h } if h == handle))
                    .expect("matching join");
                assert!(spawn_at < join_at, "seed {seed}: join before spawn");
            }
        }
    }

    #[test]
    fn multithreaded_programs_build_and_run() {
        for seed in 0..30 {
            for threads in [2u32, 4] {
                let gen = GenProgram::generate_mt(seed, threads);
                let program = gen.build();
                let mut engine = Engine::new(CountingObserver::new());
                let result = crate::Interpreter::new(&program)
                    .with_fuel(4_000_000)
                    .with_schedule_seed(gen.schedule_seed)
                    .run(&mut engine);
                assert!(
                    result.is_ok(),
                    "seed {seed} threads {threads} trapped: {result:?}"
                );
                let counts = engine.finish().into_counts();
                assert_eq!(
                    counts.calls, counts.returns,
                    "seed {seed} threads {threads} unbalanced"
                );
            }
        }
    }

    #[test]
    fn shrunk_multithreaded_programs_stay_valid() {
        // ddmin may drop a Spawn while keeping its Join (join of the
        // zero-initialised handle is a no-op) or vice versa (the spawned
        // thread just runs to completion unjoined). Every drop window
        // must still build and run trap-free.
        let gen = GenProgram::generate_mt(7, 4);
        let n = gen.inst_count();
        for start in 0..n {
            let smaller = gen.drop_range(start, 3);
            assert!(smaller.inst_count() < n);
            assert_eq!(smaller.schedule_seed, gen.schedule_seed);
            let program = smaller.build();
            let mut engine = Engine::new(CountingObserver::new());
            crate::Interpreter::new(&program)
                .with_fuel(4_000_000)
                .with_schedule_seed(smaller.schedule_seed)
                .run(&mut engine)
                .expect("shrunk multithreaded program runs");
            let counts = engine.finish().into_counts();
            assert_eq!(counts.calls, counts.returns, "start {start} unbalanced");
        }
    }

    #[test]
    fn drop_everything_leaves_empty_main() {
        let gen = GenProgram::generate(3);
        let empty = gen.drop_range(0, gen.inst_count());
        assert_eq!(empty.inst_count(), 0);
        let program = empty.build();
        let mut engine = Engine::new(CountingObserver::new());
        crate::Interpreter::new(&program)
            .run(&mut engine)
            .expect("empty program runs");
        engine.finish();
    }
}
