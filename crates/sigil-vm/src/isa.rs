//! The guest instruction set.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::program::{BlockId, FuncId};

/// A guest register index.
///
/// Each function declares how many registers it uses; the verifier checks
/// that every instruction stays within that count.
pub type Reg = u16;

/// Integer ALU operations.
///
/// `Mul`/`Div`/`Rem` are charged as [`sigil_trace::OpClass::IntMulDiv`],
/// all others as [`sigil_trace::OpClass::IntArith`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero traps.
    Div,
    /// Unsigned remainder; division by zero traps.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 64).
    Shl,
    /// Logical shift right (modulo 64).
    Shr,
    /// Set to 1 if `a < b` (unsigned), else 0.
    CmpLt,
    /// Set to 1 if `a == b`, else 0.
    CmpEq,
}

impl AluOp {
    /// Mnemonic for the disassembler.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpEq => "cmpeq",
        }
    }

    /// Whether this op is charged as a multiply/divide.
    pub const fn is_muldiv(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }
}

/// Floating-point ALU operations over f64 values stored bit-cast in
/// registers. All are charged as [`sigil_trace::OpClass::FloatArith`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaluOp {
    /// Addition.
    FAdd,
    /// Subtraction.
    FSub,
    /// Multiplication.
    FMul,
    /// Division.
    FDiv,
    /// Set to 1 if `a < b`, else 0 (result is an integer register value).
    FCmpLt,
    /// Square root of `a` (operand `b` ignored).
    FSqrt,
}

impl FaluOp {
    /// Mnemonic for the disassembler.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FaluOp::FAdd => "fadd",
            FaluOp::FSub => "fsub",
            FaluOp::FMul => "fmul",
            FaluOp::FDiv => "fdiv",
            FaluOp::FCmpLt => "fcmplt",
            FaluOp::FSqrt => "fsqrt",
        }
    }
}

/// A non-terminator guest instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = value`
    Imm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: u64,
    },
    /// `dst = src`
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = a <op> b` (integer).
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = a <op> b` (floating point, f64 bit-cast).
    Falu {
        /// Operation.
        op: FaluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = mem[base + offset .. +size]` (little endian, size ∈ {1,2,4,8}).
    Load {
        /// Destination register.
        dst: Reg,
        /// Base-address register.
        base: Reg,
        /// Signed byte offset from the base.
        offset: i64,
        /// Access width in bytes.
        size: u8,
    },
    /// `mem[base + offset .. +size] = src` (little endian).
    Store {
        /// Source register.
        src: Reg,
        /// Base-address register.
        base: Reg,
        /// Signed byte offset from the base.
        offset: i64,
        /// Access width in bytes.
        size: u8,
    },
    /// `dst = alloc(size_reg)` — in-guest heap allocation.
    Alloc {
        /// Destination register (receives the new address).
        dst: Reg,
        /// Register holding the allocation size in bytes.
        size: Reg,
    },
    /// `call func(args...)`, optionally storing the return value.
    Call {
        /// Callee.
        func: FuncId,
        /// Registers copied into the callee's `r0..rN`.
        args: Vec<Reg>,
        /// Register receiving the callee's return value, if any.
        dst: Option<Reg>,
    },
    /// Start a new guest thread running `func(args...)`, optionally
    /// storing the non-zero thread handle. The spawned thread's entry
    /// call event is emitted when the scheduler first runs it, so the
    /// interleaved trace stays causally ordered.
    Spawn {
        /// Entry function of the new thread.
        func: FuncId,
        /// Registers copied into the thread's `r0..rN`.
        args: Vec<Reg>,
        /// Register receiving the thread handle, if any.
        dst: Option<Reg>,
    },
    /// Block until the thread whose handle is in `src` finishes.
    ///
    /// Joining handle 0 (the main thread), the current thread, an
    /// unknown handle, or an already-finished thread is a no-op — so a
    /// `Join` stays valid when the matching `Spawn` is delta-minimized
    /// away.
    Join {
        /// Register holding the thread handle.
        src: Reg,
    },
}

/// A block terminator. Every basic block ends with exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch: if `cond != 0` go to `then_blk` else `else_blk`.
    ///
    /// Emits a [`sigil_trace::RuntimeEvent::Branch`] whose site identifies
    /// this static branch.
    Br {
        /// Condition register.
        cond: Reg,
        /// Target when the condition is non-zero.
        then_blk: BlockId,
        /// Target when the condition is zero.
        else_blk: BlockId,
    },
    /// Return to the caller, optionally with a value.
    Ret {
        /// Register holding the return value, if any.
        value: Option<Reg>,
    },
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jmp { target } => write!(f, "jmp b{}", target.0),
            Terminator::Br {
                cond,
                then_blk,
                else_blk,
            } => write!(f, "br r{cond} ? b{} : b{}", then_blk.0, else_blk.0),
            Terminator::Ret { value: Some(r) } => write!(f, "ret r{r}"),
            Terminator::Ret { value: None } => f.write_str("ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn muldiv_classification() {
        assert!(AluOp::Mul.is_muldiv());
        assert!(AluOp::Div.is_muldiv());
        assert!(AluOp::Rem.is_muldiv());
        assert!(!AluOp::Add.is_muldiv());
        assert!(!AluOp::CmpLt.is_muldiv());
    }

    #[test]
    fn mnemonics_are_distinct() {
        let all = [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::CmpLt,
            AluOp::CmpEq,
        ];
        let mut names: Vec<_> = all.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn terminator_display() {
        let t = Terminator::Br {
            cond: 3,
            then_blk: BlockId(1),
            else_blk: BlockId(2),
        };
        assert_eq!(t.to_string(), "br r3 ? b1 : b2");
        assert_eq!(Terminator::Ret { value: None }.to_string(), "ret");
    }
}
