//! Guest program structure: functions of basic blocks.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::isa::{Inst, Terminator};

/// Index of a function within a [`Program`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Index of a basic block within a [`VmFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// Control transfer ending the block. `None` only while under
    /// construction; the verifier rejects unterminated blocks.
    pub term: Option<Terminator>,
}

impl Block {
    /// Creates an empty, unterminated block.
    pub fn new() -> Self {
        Block {
            insts: Vec::new(),
            term: None,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// One guest function: a named CFG with a declared register file size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmFunction {
    /// Function name (registered in the trace symbol table at run time).
    pub name: String,
    /// Number of registers `r0..r{n_regs-1}` the function may use.
    /// Arguments arrive in `r0..r{n_args-1}`.
    pub n_regs: u16,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl VmFunction {
    /// Creates a function with a single empty entry block.
    pub fn new(name: impl Into<String>, n_regs: u16) -> Self {
        VmFunction {
            name: name.into(),
            n_regs,
            blocks: vec![Block::new()],
        }
    }

    /// The entry block id (always block 0).
    pub const fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A complete guest program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// All functions. Function 0 is `main` by convention of
    /// [`crate::ProgramBuilder`]; [`Program::entry_point`] records it
    /// explicitly.
    pub functions: Vec<VmFunction>,
    /// The function where execution starts.
    pub entry: FuncId,
}

impl Program {
    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(u32::try_from(i).expect("function count fits u32")))
    }

    /// The function executed first.
    pub fn entry_point(&self) -> FuncId {
        self.entry
    }

    /// Borrow a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &VmFunction {
        &self.functions[id.index()]
    }

    /// Total static instruction count.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(VmFunction::inst_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_function_has_entry_block() {
        let f = VmFunction::new("f", 2);
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 0);
    }

    #[test]
    fn function_lookup_by_name() {
        let mut p = Program::default();
        p.functions.push(VmFunction::new("main", 1));
        p.functions.push(VmFunction::new("kernel", 1));
        assert_eq!(p.function_by_name("kernel"), Some(FuncId(1)));
        assert_eq!(p.function_by_name("missing"), None);
        assert_eq!(p.function(FuncId(1)).name, "kernel");
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(FuncId(3).to_string(), "f3");
        assert_eq!(BlockId(7).to_string(), "b7");
    }
}
