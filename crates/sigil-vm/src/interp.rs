//! The guest interpreter: executes a program while emitting trace events.

use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use sigil_trace::{Engine, ExecutionObserver, FunctionId, OpClass, ThreadId};

use crate::isa::{AluOp, FaluOp, Inst, Terminator};
use crate::memory::GuestMemory;
use crate::program::{BlockId, FuncId, Program};

/// A dynamic guest failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Function in which the division executed.
        func: FuncId,
    },
    /// Call depth exceeded the interpreter limit.
    StackOverflow {
        /// The configured maximum depth.
        max_depth: usize,
    },
    /// The fuel budget was exhausted (likely an unbounded loop).
    OutOfFuel {
        /// The configured fuel budget.
        fuel: u64,
    },
    /// Every live guest thread is blocked in a `join` cycle.
    Deadlock,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivideByZero { func } => write!(f, "guest divided by zero in {func}"),
            Trap::StackOverflow { max_depth } => {
                write!(f, "guest exceeded call depth {max_depth}")
            }
            Trap::OutOfFuel { fuel } => write!(f, "guest exhausted fuel budget of {fuel}"),
            Trap::Deadlock => f.write_str("guest deadlocked: every live thread blocked on a join"),
        }
    }
}

impl Error for Trap {}

struct Frame {
    func: FuncId,
    regs: Vec<u64>,
    block: BlockId,
    ip: usize,
    ret_dst: Option<u16>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    Runnable,
    /// Waiting for the thread at this index to finish.
    Blocked(usize),
    Done,
}

/// One guest thread: its own call stack, scheduler state, and (for
/// threads that have never run) the deferred entry call.
struct ThreadCtx {
    stack: Vec<Frame>,
    status: ThreadStatus,
    /// `(entry function, argument registers)` of a spawned thread that
    /// the scheduler has not yet run. The entry `Call` event is emitted
    /// on first schedule, after the `ThreadSwitch`, so the interleaved
    /// trace stays causally ordered.
    pending_entry: Option<(FuncId, Vec<u64>)>,
}

/// Scheduler quantum bounds, in executed guest instructions.
const MIN_QUANTUM: u64 = 4;
const MAX_QUANTUM: u64 = 24;

/// Executes a verified [`Program`], emitting one [`sigil_trace`] event per
/// executed primitive — exactly what Valgrind's instrumentation exposes.
///
/// Event mapping:
///
/// | guest action | emitted events |
/// |---|---|
/// | `Imm`/`Mov`/`Alloc` | `Op(Agu, 1)` |
/// | `Alu` | `Op(IntArith/IntMulDiv, 1)` |
/// | `Falu` | `Op(FloatArith, 1)` |
/// | `Load` | `Op(Agu, 1)` + `Read` |
/// | `Store` | `Op(Agu, 1)` + `Write` |
/// | `Call`/entry | `Call` |
/// | `Ret` | `Return` |
/// | `Br` | `Branch { site, taken }` |
/// | `Spawn`/`Join` | `Op(Agu, 1)` |
/// | scheduler switch | `ThreadSwitch` |
///
/// # Threads
///
/// `Spawn` starts a new guest thread; a seeded scheduler interleaves all
/// runnable threads in random quanta of [`MIN_QUANTUM`] to [`MAX_QUANTUM`]
/// instructions, producing **one deterministic total order** per
/// `(program, schedule seed)` pair, lowered to `ThreadSwitch` events.
/// The RNG is consulted only when more than one thread is runnable, so
/// single-threaded programs emit byte-identical streams for every seed.
/// All threads share the fuel budget and guest memory; the program ends
/// when every thread has finished, returning the main thread's value. A
/// trap on any thread unwinds the open frames of *every* thread
/// (switching to each first) so the trace stays balanced.
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    fuel: u64,
    max_depth: usize,
    schedule_seed: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with default limits (1 G fuel, depth 1024)
    /// and schedule seed 0.
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            fuel: 1_000_000_000,
            max_depth: 1024,
            schedule_seed: 0,
        }
    }

    /// Sets the fuel budget: the maximum number of executed instructions.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Sets the maximum call depth.
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the thread-scheduler seed. Programs that never spawn are
    /// unaffected; multithreaded programs get a different (but still
    /// deterministic) interleaving per seed.
    #[must_use]
    pub fn with_schedule_seed(mut self, seed: u64) -> Self {
        self.schedule_seed = seed;
        self
    }

    /// Runs the program to completion with fresh guest memory.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on divide-by-zero, stack overflow, fuel
    /// exhaustion, or join deadlock.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) -> Result<Option<u64>, Trap> {
        let mut memory = GuestMemory::new();
        self.run_with_memory(engine, &mut memory)
    }

    /// Runs the program against caller-provided guest memory (e.g. with
    /// pre-initialized input buffers). Guest memory is shared by all
    /// guest threads.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on divide-by-zero, stack overflow, fuel
    /// exhaustion, or join deadlock.
    pub fn run_with_memory<O: ExecutionObserver>(
        &self,
        engine: &mut Engine<O>,
        memory: &mut GuestMemory,
    ) -> Result<Option<u64>, Trap> {
        // Register guest function names with the trace symbol table.
        let fn_ids: Vec<FunctionId> = self
            .program
            .functions
            .iter()
            .map(|f| engine.symbols_mut().intern(&f.name))
            .collect();

        let entry = self.program.entry_point();
        let mut threads = vec![ThreadCtx {
            stack: vec![Frame {
                func: entry,
                regs: vec![0; usize::from(self.program.function(entry).n_regs)],
                block: BlockId(0),
                ip: 0,
                ret_dst: None,
            }],
            status: ThreadStatus::Runnable,
            pending_entry: None,
        }];
        engine.call(fn_ids[entry.index()]);

        let mut rng = SmallRng::seed_from_u64(self.schedule_seed);
        let mut fuel = self.fuel;
        let mut final_ret: Option<u64> = None;
        let mut cur = 0usize;
        let mut quantum: u64 = 0;

        'exec: loop {
            // Wake joins whose target has finished.
            for i in 0..threads.len() {
                let ThreadStatus::Blocked(target) = threads[i].status else {
                    continue;
                };
                if threads[target].status == ThreadStatus::Done {
                    threads[i].status = ThreadStatus::Runnable;
                }
            }
            let runnable: Vec<usize> = threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == ThreadStatus::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                if threads.iter().all(|t| t.status == ThreadStatus::Done) {
                    break;
                }
                unwind_all(engine, &mut threads);
                return Err(Trap::Deadlock);
            }
            if quantum == 0 || threads[cur].status != ThreadStatus::Runnable {
                if runnable.len() == 1 {
                    // No choice: don't touch the RNG, so single-threaded
                    // programs are byte-identical across seeds. Quantum
                    // stays 0 so a newly runnable thread forces a draw.
                    cur = runnable[0];
                } else {
                    cur = runnable[rng.gen_range(0..runnable.len())];
                    quantum = rng.gen_range(MIN_QUANTUM..MAX_QUANTUM + 1);
                }
                engine.switch_thread(ThreadId::from_raw(
                    u32::try_from(cur).expect("thread count fits u32"),
                ));
                if let Some((func, regs)) = threads[cur].pending_entry.take() {
                    threads[cur].stack.push(Frame {
                        func,
                        regs,
                        block: BlockId(0),
                        ip: 0,
                        ret_dst: None,
                    });
                    engine.call(fn_ids[func.index()]);
                }
            }
            quantum = quantum.saturating_sub(1);

            if fuel == 0 {
                // Unwind open frames so the trace stays balanced.
                unwind_all(engine, &mut threads);
                return Err(Trap::OutOfFuel { fuel: self.fuel });
            }
            fuel -= 1;

            let (fid, bid, ip, depth) = {
                let ctx = &threads[cur];
                let frame = ctx.stack.last().expect("runnable thread has a frame");
                (frame.func, frame.block, frame.ip, ctx.stack.len())
            };
            let func = self.program.function(fid);
            let block = &func.blocks[bid.index()];

            if ip < block.insts.len() {
                threads[cur].stack.last_mut().expect("frame").ip += 1;
                match &block.insts[ip] {
                    Inst::Imm { dst, value } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        frame.regs[usize::from(*dst)] = *value;
                        engine.op(OpClass::Agu, 1);
                    }
                    Inst::Mov { dst, src } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        frame.regs[usize::from(*dst)] = frame.regs[usize::from(*src)];
                        engine.op(OpClass::Agu, 1);
                    }
                    Inst::Alu { op, dst, a, b } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        let va = frame.regs[usize::from(*a)];
                        let vb = frame.regs[usize::from(*b)];
                        let result = match op {
                            AluOp::Add => va.wrapping_add(vb),
                            AluOp::Sub => va.wrapping_sub(vb),
                            AluOp::Mul => va.wrapping_mul(vb),
                            AluOp::Div | AluOp::Rem if vb == 0 => {
                                unwind_all(engine, &mut threads);
                                return Err(Trap::DivideByZero { func: fid });
                            }
                            AluOp::Div => va / vb,
                            AluOp::Rem => va % vb,
                            AluOp::And => va & vb,
                            AluOp::Or => va | vb,
                            AluOp::Xor => va ^ vb,
                            AluOp::Shl => va.wrapping_shl((vb % 64) as u32),
                            AluOp::Shr => va.wrapping_shr((vb % 64) as u32),
                            AluOp::CmpLt => u64::from(va < vb),
                            AluOp::CmpEq => u64::from(va == vb),
                        };
                        frame.regs[usize::from(*dst)] = result;
                        let class = if op.is_muldiv() {
                            OpClass::IntMulDiv
                        } else {
                            OpClass::IntArith
                        };
                        engine.op(class, 1);
                    }
                    Inst::Falu { op, dst, a, b } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        let fa = f64::from_bits(frame.regs[usize::from(*a)]);
                        let fb = f64::from_bits(frame.regs[usize::from(*b)]);
                        let result = match op {
                            FaluOp::FAdd => (fa + fb).to_bits(),
                            FaluOp::FSub => (fa - fb).to_bits(),
                            FaluOp::FMul => (fa * fb).to_bits(),
                            FaluOp::FDiv => (fa / fb).to_bits(),
                            FaluOp::FCmpLt => u64::from(fa < fb),
                            FaluOp::FSqrt => fa.sqrt().to_bits(),
                        };
                        frame.regs[usize::from(*dst)] = result;
                        engine.op(OpClass::FloatArith, 1);
                    }
                    Inst::Load {
                        dst,
                        base,
                        offset,
                        size,
                    } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        let addr = frame.regs[usize::from(*base)].wrapping_add_signed(*offset);
                        engine.op(OpClass::Agu, 1);
                        engine.read(addr, u32::from(*size));
                        frame.regs[usize::from(*dst)] = memory.load(addr, *size);
                    }
                    Inst::Store {
                        src,
                        base,
                        offset,
                        size,
                    } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        let addr = frame.regs[usize::from(*base)].wrapping_add_signed(*offset);
                        engine.op(OpClass::Agu, 1);
                        engine.write(addr, u32::from(*size));
                        memory.store(addr, *size, frame.regs[usize::from(*src)]);
                    }
                    Inst::Alloc { dst, size } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        let bytes = frame.regs[usize::from(*size)];
                        frame.regs[usize::from(*dst)] = memory.alloc(bytes);
                        engine.op(OpClass::Agu, 1);
                    }
                    Inst::Call { func, args, dst } => {
                        if depth >= self.max_depth {
                            unwind_all(engine, &mut threads);
                            return Err(Trap::StackOverflow {
                                max_depth: self.max_depth,
                            });
                        }
                        let callee = self.program.function(*func);
                        let mut regs = vec![0u64; usize::from(callee.n_regs)];
                        {
                            let frame = threads[cur].stack.last().expect("frame");
                            for (i, &arg) in args.iter().enumerate() {
                                regs[i] = frame.regs[usize::from(arg)];
                            }
                        }
                        threads[cur].stack.push(Frame {
                            func: *func,
                            regs,
                            block: BlockId(0),
                            ip: 0,
                            ret_dst: *dst,
                        });
                        engine.call(fn_ids[func.index()]);
                        continue 'exec;
                    }
                    Inst::Spawn { func, args, dst } => {
                        let callee = self.program.function(*func);
                        let mut regs = vec![0u64; usize::from(callee.n_regs)];
                        {
                            let frame = threads[cur].stack.last().expect("frame");
                            for (i, &arg) in args.iter().enumerate() {
                                regs[i] = frame.regs[usize::from(arg)];
                            }
                        }
                        let handle = threads.len() as u64;
                        threads.push(ThreadCtx {
                            stack: Vec::new(),
                            status: ThreadStatus::Runnable,
                            pending_entry: Some((*func, regs)),
                        });
                        if let Some(dst) = dst {
                            let frame = threads[cur].stack.last_mut().expect("frame");
                            frame.regs[usize::from(*dst)] = handle;
                        }
                        engine.op(OpClass::Agu, 1);
                    }
                    Inst::Join { src } => {
                        let frame = threads[cur].stack.last().expect("frame");
                        let handle = frame.regs[usize::from(*src)] as usize;
                        engine.op(OpClass::Agu, 1);
                        // Handle 0 (main), self, unknown, or finished: a
                        // no-op — shrunk programs with a dangling join
                        // stay valid.
                        if handle != 0
                            && handle != cur
                            && handle < threads.len()
                            && threads[handle].status != ThreadStatus::Done
                        {
                            threads[cur].status = ThreadStatus::Blocked(handle);
                        }
                    }
                }
            } else {
                let term = block.term.expect("verified program has terminators");
                match term {
                    Terminator::Jmp { target } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        frame.block = target;
                        frame.ip = 0;
                    }
                    Terminator::Br {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        let frame = threads[cur].stack.last_mut().expect("frame");
                        let taken = frame.regs[usize::from(cond)] != 0;
                        let site = (u64::from(fid.0) << 24) | u64::from(bid.0);
                        engine.branch(site, taken);
                        frame.block = if taken { then_blk } else { else_blk };
                        frame.ip = 0;
                    }
                    Terminator::Ret { value } => {
                        let ctx = &mut threads[cur];
                        let frame = ctx.stack.last().expect("frame");
                        let ret_val = value.map(|r| frame.regs[usize::from(r)]);
                        let ret_dst = frame.ret_dst;
                        ctx.stack.pop();
                        engine.ret();
                        match ctx.stack.last_mut() {
                            Some(caller) => {
                                if let (Some(dst), Some(v)) = (ret_dst, ret_val) {
                                    caller.regs[usize::from(dst)] = v;
                                }
                            }
                            None => {
                                ctx.status = ThreadStatus::Done;
                                if cur == 0 {
                                    final_ret = ret_val;
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(final_ret)
    }
}

/// Pops every open frame of every thread (switching to each first) so a
/// trap leaves the trace balanced. Never-scheduled spawned threads have
/// no entry call to undo; their pending entry is simply dropped.
fn unwind_all<O: ExecutionObserver>(engine: &mut Engine<O>, threads: &mut [ThreadCtx]) {
    for (i, ctx) in threads.iter_mut().enumerate() {
        ctx.pending_entry = None;
        ctx.status = ThreadStatus::Done;
        if ctx.stack.is_empty() {
            continue;
        }
        engine.switch_thread(ThreadId::from_raw(
            u32::try_from(i).expect("thread count fits u32"),
        ));
        while ctx.stack.pop().is_some() {
            engine.ret();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use sigil_trace::observer::{CountingObserver, RecordingObserver};

    fn run_program(
        program: &Program,
    ) -> (
        Result<Option<u64>, Trap>,
        sigil_trace::observer::EventCounts,
    ) {
        let mut engine = Engine::new(CountingObserver::new());
        engine.set_strict(false);
        let result = Interpreter::new(program).run(&mut engine);
        let counts = engine.finish().into_counts();
        (result, counts)
    }

    #[test]
    fn arithmetic_and_return_value() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 2);
        f.imm(0, 6);
        f.imm(1, 7);
        f.mul(0, 0, 1);
        f.ret_reg(0);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some(42)));
        assert_eq!(counts.calls, 1);
        assert_eq!(counts.returns, 1);
    }

    #[test]
    fn loads_and_stores_hit_guest_memory() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 3);
        let buf = f.alloc_imm(0, 16);
        f.imm(1, 0x55);
        f.store(1, buf, 8, 8);
        f.load(2, buf, 8, 8);
        f.ret_reg(2);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some(0x55)));
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.writes, 1);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double");
        let mut main = pb.function("main", 2);
        main.imm(0, 10);
        main.call(double, &[0], Some(1));
        main.ret_reg(1);
        main.finish();
        let mut d = pb.define(double, 2);
        d.imm(1, 2);
        d.mul(0, 0, 1);
        d.ret_reg(0);
        d.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some(20)));
        assert_eq!(counts.calls, 2);
        assert_eq!(counts.returns, 2);
    }

    #[test]
    fn loop_iterates_expected_count() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 4);
        f.imm(2, 0);
        f.loop_range(0, 1, 0, 100, |f| {
            f.add(2, 2, 0);
        });
        f.ret_reg(2);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some((0..100u64).sum())));
        // 101 header branches: 100 taken + 1 exit.
        assert_eq!(counts.branches, 101);
    }

    #[test]
    fn float_arithmetic() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 3);
        f.fimm(0, 2.5);
        f.fimm(1, 4.0);
        f.falu(FaluOp::FMul, 2, 0, 1);
        f.ret_reg(2);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, _) = run_program(&p);
        assert_eq!(result.map(|v| v.map(f64::from_bits)), Ok(Some(10.0)));
    }

    #[test]
    fn divide_by_zero_traps_and_balances_trace() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 2);
        f.imm(0, 1);
        f.imm(1, 0);
        f.alu(AluOp::Div, 0, 0, 1);
        f.ret();
        f.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).run(&mut engine);
        assert!(matches!(result, Err(Trap::DivideByZero { .. })));
        assert!(engine.validate().is_ok(), "trap unwound all frames");
        let counts = engine.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 1);
        let spin = f.block();
        f.jmp(spin);
        f.switch_to(spin);
        f.jmp(spin);
        f.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).with_fuel(1000).run(&mut engine);
        assert_eq!(result, Err(Trap::OutOfFuel { fuel: 1000 }));
        assert!(engine.validate().is_ok());
    }

    #[test]
    fn recursion_overflow_traps() {
        let mut pb = ProgramBuilder::new();
        let rec = pb.declare("rec");
        let mut r = pb.define(rec, 1);
        r.call(rec, &[], None);
        r.ret();
        r.finish();
        pb.set_entry(rec);
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).with_max_depth(32).run(&mut engine);
        assert_eq!(result, Err(Trap::StackOverflow { max_depth: 32 }));
        assert!(engine.validate().is_ok());
    }

    #[test]
    fn event_order_matches_program_order() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 2);
        let buf = f.alloc_imm(0, 8);
        f.imm(1, 1);
        f.store(1, buf, 0, 8);
        f.load(1, buf, 0, 8);
        f.ret();
        f.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(RecordingObserver::new());
        Interpreter::new(&p).run(&mut engine).expect("no trap");
        let events = engine.finish().into_events();
        let mut write_pos = None;
        let mut read_pos = None;
        for (i, ev) in events.iter().enumerate() {
            match ev {
                sigil_trace::RuntimeEvent::Write { .. } => write_pos = Some(i),
                sigil_trace::RuntimeEvent::Read { .. } => read_pos = Some(i),
                _ => {}
            }
        }
        assert!(write_pos.expect("write seen") < read_pos.expect("read seen"));
    }

    #[test]
    fn trap_messages_are_descriptive() {
        assert!(Trap::DivideByZero { func: FuncId(2) }
            .to_string()
            .contains("f2"));
        assert!(Trap::OutOfFuel { fuel: 9 }.to_string().contains('9'));
        assert!(Trap::Deadlock.to_string().contains("join"));
    }

    /// main allocates a buffer, spawns a worker that fills it, joins,
    /// and reads the worker's value back through shared guest memory.
    fn spawn_join_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let worker = pb.declare("worker");
        let mut main = pb.function("main", 3);
        let buf = main.alloc_imm(0, 8);
        main.spawn(worker, &[0], Some(1));
        main.join(1);
        main.load(2, buf, 0, 8);
        main.ret_reg(2);
        main.finish();
        let mut w = pb.define(worker, 2);
        w.imm(1, 0x2a);
        w.store(1, 0, 0, 8);
        w.ret();
        w.finish();
        pb.build().expect("verifies")
    }

    #[test]
    fn spawn_join_round_trips_through_shared_memory() {
        let p = spawn_join_program();
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).run(&mut engine);
        assert_eq!(result, Ok(Some(0x2a)), "join ordered the worker's store");
        assert!(engine.validate().is_ok());
        let counts = engine.finish().into_counts();
        assert_eq!(counts.calls, 2, "main + deferred worker entry");
        assert_eq!(counts.returns, 2);
    }

    #[test]
    fn same_schedule_seed_gives_identical_streams() {
        let p = spawn_join_program();
        let record = |seed: u64| {
            let mut engine = Engine::new(RecordingObserver::new());
            Interpreter::new(&p)
                .with_schedule_seed(seed)
                .run(&mut engine)
                .expect("no trap");
            engine.finish().into_events()
        };
        assert_eq!(record(7), record(7));
        assert_eq!(record(123), record(123));
    }

    #[test]
    fn single_threaded_streams_ignore_schedule_seed() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 3);
        let buf = f.alloc_imm(0, 16);
        f.imm(1, 9);
        f.store(1, buf, 0, 8);
        f.load(2, buf, 0, 8);
        f.ret_reg(2);
        f.finish();
        let p = pb.build().expect("verifies");
        let record = |seed: u64| {
            let mut engine = Engine::new(RecordingObserver::new());
            Interpreter::new(&p)
                .with_schedule_seed(seed)
                .run(&mut engine)
                .expect("no trap");
            engine.finish().into_events()
        };
        let baseline = record(0);
        assert!(!baseline
            .iter()
            .any(|e| matches!(e, sigil_trace::RuntimeEvent::ThreadSwitch { .. })));
        assert_eq!(baseline, record(0xdead_beef));
    }

    #[test]
    fn join_of_unknown_done_or_main_handle_is_noop() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 1);
        f.imm(0, 99);
        f.join(0); // unknown handle
        f.imm(0, 0);
        f.join(0); // main/self handle
        f.imm(0, 7);
        f.ret_reg(0);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, _) = run_program(&p);
        assert_eq!(result, Ok(Some(7)));
    }

    #[test]
    fn mutual_join_cycle_deadlocks_and_unwinds() {
        // main spawns A (handle 1); A spawns B (handle 2) and joins it;
        // B joins A. B can never see A done (A waits on B), and vice
        // versa, so the cycle closes under every interleaving.
        let mut pb = ProgramBuilder::new();
        let wa = pb.declare("wa");
        let wb = pb.declare("wb");
        let mut main = pb.function("main", 1);
        main.spawn(wa, &[], None);
        main.ret();
        main.finish();
        let mut a = pb.define(wa, 1);
        a.spawn(wb, &[], Some(0));
        a.join(0);
        a.ret();
        a.finish();
        let mut b = pb.define(wb, 1);
        b.imm(0, 1);
        b.join(0);
        b.ret();
        b.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).run(&mut engine);
        assert_eq!(result, Err(Trap::Deadlock));
        assert!(engine.validate().is_ok(), "deadlock unwound all threads");
        let counts = engine.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn trap_on_one_thread_unwinds_every_thread() {
        // A worker spins forever; main joins it; fuel runs out with open
        // frames on both threads.
        let mut pb = ProgramBuilder::new();
        let spin = pb.declare("spin");
        let mut main = pb.function("main", 1);
        main.spawn(spin, &[], Some(0));
        main.join(0);
        main.ret();
        main.finish();
        let mut s = pb.define(spin, 1);
        let lp = s.block();
        s.jmp(lp);
        s.switch_to(lp);
        s.jmp(lp);
        s.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).with_fuel(5000).run(&mut engine);
        assert_eq!(result, Err(Trap::OutOfFuel { fuel: 5000 }));
        assert!(engine.validate().is_ok());
        let counts = engine.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn never_scheduled_spawn_still_balances_on_trap() {
        // main spawns a worker and immediately divides by zero: the
        // worker's entry call was never emitted, so there is nothing to
        // unwind on its thread.
        let mut pb = ProgramBuilder::new();
        let w = pb.declare("w");
        let mut main = pb.function("main", 2);
        main.spawn(w, &[], None);
        main.imm(0, 1);
        main.imm(1, 0);
        main.alu(AluOp::Div, 0, 0, 1);
        main.ret();
        main.finish();
        let mut wf = pb.define(w, 1);
        wf.ret();
        wf.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).run(&mut engine);
        assert!(matches!(result, Err(Trap::DivideByZero { .. })));
        assert!(engine.validate().is_ok());
        let counts = engine.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }
}
