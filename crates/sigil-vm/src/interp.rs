//! The guest interpreter: executes a program while emitting trace events.

use std::error::Error;
use std::fmt;

use sigil_trace::{Engine, ExecutionObserver, FunctionId, OpClass};

use crate::isa::{AluOp, FaluOp, Inst, Terminator};
use crate::memory::GuestMemory;
use crate::program::{BlockId, FuncId, Program};

/// A dynamic guest failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Function in which the division executed.
        func: FuncId,
    },
    /// Call depth exceeded the interpreter limit.
    StackOverflow {
        /// The configured maximum depth.
        max_depth: usize,
    },
    /// The fuel budget was exhausted (likely an unbounded loop).
    OutOfFuel {
        /// The configured fuel budget.
        fuel: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivideByZero { func } => write!(f, "guest divided by zero in {func}"),
            Trap::StackOverflow { max_depth } => {
                write!(f, "guest exceeded call depth {max_depth}")
            }
            Trap::OutOfFuel { fuel } => write!(f, "guest exhausted fuel budget of {fuel}"),
        }
    }
}

impl Error for Trap {}

struct Frame {
    func: FuncId,
    regs: Vec<u64>,
    block: BlockId,
    ip: usize,
    ret_dst: Option<u16>,
}

/// Executes a verified [`Program`], emitting one [`sigil_trace`] event per
/// executed primitive — exactly what Valgrind's instrumentation exposes.
///
/// Event mapping:
///
/// | guest action | emitted events |
/// |---|---|
/// | `Imm`/`Mov`/`Alloc` | `Op(Agu, 1)` |
/// | `Alu` | `Op(IntArith/IntMulDiv, 1)` |
/// | `Falu` | `Op(FloatArith, 1)` |
/// | `Load` | `Op(Agu, 1)` + `Read` |
/// | `Store` | `Op(Agu, 1)` + `Write` |
/// | `Call`/entry | `Call` |
/// | `Ret` | `Return` |
/// | `Br` | `Branch { site, taken }` |
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    fuel: u64,
    max_depth: usize,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter with default limits (1 G fuel, depth 1024).
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            fuel: 1_000_000_000,
            max_depth: 1024,
        }
    }

    /// Sets the fuel budget: the maximum number of executed instructions.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Sets the maximum call depth.
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Runs the program to completion with fresh guest memory.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on divide-by-zero, stack overflow, or fuel
    /// exhaustion.
    pub fn run<O: ExecutionObserver>(&self, engine: &mut Engine<O>) -> Result<Option<u64>, Trap> {
        let mut memory = GuestMemory::new();
        self.run_with_memory(engine, &mut memory)
    }

    /// Runs the program against caller-provided guest memory (e.g. with
    /// pre-initialized input buffers).
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on divide-by-zero, stack overflow, or fuel
    /// exhaustion.
    pub fn run_with_memory<O: ExecutionObserver>(
        &self,
        engine: &mut Engine<O>,
        memory: &mut GuestMemory,
    ) -> Result<Option<u64>, Trap> {
        // Register guest function names with the trace symbol table.
        let fn_ids: Vec<FunctionId> = self
            .program
            .functions
            .iter()
            .map(|f| engine.symbols_mut().intern(&f.name))
            .collect();

        let entry = self.program.entry_point();
        let mut stack = vec![Frame {
            func: entry,
            regs: vec![0; usize::from(self.program.function(entry).n_regs)],
            block: BlockId(0),
            ip: 0,
            ret_dst: None,
        }];
        engine.call(fn_ids[entry.index()]);

        let mut fuel = self.fuel;
        let mut final_ret: Option<u64> = None;

        'exec: loop {
            let depth = stack.len();
            let Some(frame) = stack.last_mut() else { break };
            if fuel == 0 {
                // Unwind open frames so the trace stays balanced.
                while stack.pop().is_some() {
                    engine.ret();
                }
                return Err(Trap::OutOfFuel { fuel: self.fuel });
            }
            fuel -= 1;

            let func = self.program.function(frame.func);
            let block = &func.blocks[frame.block.index()];

            if frame.ip < block.insts.len() {
                let inst = &block.insts[frame.ip];
                frame.ip += 1;
                match inst {
                    Inst::Imm { dst, value } => {
                        frame.regs[usize::from(*dst)] = *value;
                        engine.op(OpClass::Agu, 1);
                    }
                    Inst::Mov { dst, src } => {
                        frame.regs[usize::from(*dst)] = frame.regs[usize::from(*src)];
                        engine.op(OpClass::Agu, 1);
                    }
                    Inst::Alu { op, dst, a, b } => {
                        let va = frame.regs[usize::from(*a)];
                        let vb = frame.regs[usize::from(*b)];
                        let result = match op {
                            AluOp::Add => va.wrapping_add(vb),
                            AluOp::Sub => va.wrapping_sub(vb),
                            AluOp::Mul => va.wrapping_mul(vb),
                            AluOp::Div => {
                                if vb == 0 {
                                    let func = frame.func;
                                    while stack.pop().is_some() {
                                        engine.ret();
                                    }
                                    return Err(Trap::DivideByZero { func });
                                }
                                va / vb
                            }
                            AluOp::Rem => {
                                if vb == 0 {
                                    let func = frame.func;
                                    while stack.pop().is_some() {
                                        engine.ret();
                                    }
                                    return Err(Trap::DivideByZero { func });
                                }
                                va % vb
                            }
                            AluOp::And => va & vb,
                            AluOp::Or => va | vb,
                            AluOp::Xor => va ^ vb,
                            AluOp::Shl => va.wrapping_shl((vb % 64) as u32),
                            AluOp::Shr => va.wrapping_shr((vb % 64) as u32),
                            AluOp::CmpLt => u64::from(va < vb),
                            AluOp::CmpEq => u64::from(va == vb),
                        };
                        frame.regs[usize::from(*dst)] = result;
                        let class = if op.is_muldiv() {
                            OpClass::IntMulDiv
                        } else {
                            OpClass::IntArith
                        };
                        engine.op(class, 1);
                    }
                    Inst::Falu { op, dst, a, b } => {
                        let fa = f64::from_bits(frame.regs[usize::from(*a)]);
                        let fb = f64::from_bits(frame.regs[usize::from(*b)]);
                        let result = match op {
                            FaluOp::FAdd => (fa + fb).to_bits(),
                            FaluOp::FSub => (fa - fb).to_bits(),
                            FaluOp::FMul => (fa * fb).to_bits(),
                            FaluOp::FDiv => (fa / fb).to_bits(),
                            FaluOp::FCmpLt => u64::from(fa < fb),
                            FaluOp::FSqrt => fa.sqrt().to_bits(),
                        };
                        frame.regs[usize::from(*dst)] = result;
                        engine.op(OpClass::FloatArith, 1);
                    }
                    Inst::Load {
                        dst,
                        base,
                        offset,
                        size,
                    } => {
                        let addr = frame.regs[usize::from(*base)].wrapping_add_signed(*offset);
                        engine.op(OpClass::Agu, 1);
                        engine.read(addr, u32::from(*size));
                        frame.regs[usize::from(*dst)] = memory.load(addr, *size);
                    }
                    Inst::Store {
                        src,
                        base,
                        offset,
                        size,
                    } => {
                        let addr = frame.regs[usize::from(*base)].wrapping_add_signed(*offset);
                        engine.op(OpClass::Agu, 1);
                        engine.write(addr, u32::from(*size));
                        memory.store(addr, *size, frame.regs[usize::from(*src)]);
                    }
                    Inst::Alloc { dst, size } => {
                        let bytes = frame.regs[usize::from(*size)];
                        frame.regs[usize::from(*dst)] = memory.alloc(bytes);
                        engine.op(OpClass::Agu, 1);
                    }
                    Inst::Call { func, args, dst } => {
                        if depth >= self.max_depth {
                            while stack.pop().is_some() {
                                engine.ret();
                            }
                            return Err(Trap::StackOverflow {
                                max_depth: self.max_depth,
                            });
                        }
                        let callee = self.program.function(*func);
                        let mut regs = vec![0u64; usize::from(callee.n_regs)];
                        for (i, &arg) in args.iter().enumerate() {
                            regs[i] = frame.regs[usize::from(arg)];
                        }
                        let ret_dst = *dst;
                        let callee_id = *func;
                        stack.push(Frame {
                            func: callee_id,
                            regs,
                            block: BlockId(0),
                            ip: 0,
                            ret_dst,
                        });
                        engine.call(fn_ids[callee_id.index()]);
                        continue 'exec;
                    }
                }
            } else {
                let term = block.term.expect("verified program has terminators");
                match term {
                    Terminator::Jmp { target } => {
                        frame.block = target;
                        frame.ip = 0;
                    }
                    Terminator::Br {
                        cond,
                        then_blk,
                        else_blk,
                    } => {
                        let taken = frame.regs[usize::from(cond)] != 0;
                        let site = (u64::from(frame.func.0) << 24) | u64::from(frame.block.0);
                        engine.branch(site, taken);
                        frame.block = if taken { then_blk } else { else_blk };
                        frame.ip = 0;
                    }
                    Terminator::Ret { value } => {
                        let ret_val = value.map(|r| frame.regs[usize::from(r)]);
                        let ret_dst = frame.ret_dst;
                        stack.pop();
                        engine.ret();
                        match stack.last_mut() {
                            Some(caller) => {
                                if let (Some(dst), Some(v)) = (ret_dst, ret_val) {
                                    caller.regs[usize::from(dst)] = v;
                                }
                            }
                            None => final_ret = ret_val,
                        }
                    }
                }
            }
        }
        Ok(final_ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use sigil_trace::observer::{CountingObserver, RecordingObserver};

    fn run_program(
        program: &Program,
    ) -> (
        Result<Option<u64>, Trap>,
        sigil_trace::observer::EventCounts,
    ) {
        let mut engine = Engine::new(CountingObserver::new());
        engine.set_strict(false);
        let result = Interpreter::new(program).run(&mut engine);
        let counts = engine.finish().into_counts();
        (result, counts)
    }

    #[test]
    fn arithmetic_and_return_value() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 2);
        f.imm(0, 6);
        f.imm(1, 7);
        f.mul(0, 0, 1);
        f.ret_reg(0);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some(42)));
        assert_eq!(counts.calls, 1);
        assert_eq!(counts.returns, 1);
    }

    #[test]
    fn loads_and_stores_hit_guest_memory() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 3);
        let buf = f.alloc_imm(0, 16);
        f.imm(1, 0x55);
        f.store(1, buf, 8, 8);
        f.load(2, buf, 8, 8);
        f.ret_reg(2);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some(0x55)));
        assert_eq!(counts.reads, 1);
        assert_eq!(counts.writes, 1);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double");
        let mut main = pb.function("main", 2);
        main.imm(0, 10);
        main.call(double, &[0], Some(1));
        main.ret_reg(1);
        main.finish();
        let mut d = pb.define(double, 2);
        d.imm(1, 2);
        d.mul(0, 0, 1);
        d.ret_reg(0);
        d.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some(20)));
        assert_eq!(counts.calls, 2);
        assert_eq!(counts.returns, 2);
    }

    #[test]
    fn loop_iterates_expected_count() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 4);
        f.imm(2, 0);
        f.loop_range(0, 1, 0, 100, |f| {
            f.add(2, 2, 0);
        });
        f.ret_reg(2);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, counts) = run_program(&p);
        assert_eq!(result, Ok(Some((0..100u64).sum())));
        // 101 header branches: 100 taken + 1 exit.
        assert_eq!(counts.branches, 101);
    }

    #[test]
    fn float_arithmetic() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 3);
        f.fimm(0, 2.5);
        f.fimm(1, 4.0);
        f.falu(FaluOp::FMul, 2, 0, 1);
        f.ret_reg(2);
        f.finish();
        let p = pb.build().expect("verifies");
        let (result, _) = run_program(&p);
        assert_eq!(result.map(|v| v.map(f64::from_bits)), Ok(Some(10.0)));
    }

    #[test]
    fn divide_by_zero_traps_and_balances_trace() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 2);
        f.imm(0, 1);
        f.imm(1, 0);
        f.alu(AluOp::Div, 0, 0, 1);
        f.ret();
        f.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).run(&mut engine);
        assert!(matches!(result, Err(Trap::DivideByZero { .. })));
        assert!(engine.validate().is_ok(), "trap unwound all frames");
        let counts = engine.finish().into_counts();
        assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 1);
        let spin = f.block();
        f.jmp(spin);
        f.switch_to(spin);
        f.jmp(spin);
        f.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).with_fuel(1000).run(&mut engine);
        assert_eq!(result, Err(Trap::OutOfFuel { fuel: 1000 }));
        assert!(engine.validate().is_ok());
    }

    #[test]
    fn recursion_overflow_traps() {
        let mut pb = ProgramBuilder::new();
        let rec = pb.declare("rec");
        let mut r = pb.define(rec, 1);
        r.call(rec, &[], None);
        r.ret();
        r.finish();
        pb.set_entry(rec);
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&p).with_max_depth(32).run(&mut engine);
        assert_eq!(result, Err(Trap::StackOverflow { max_depth: 32 }));
        assert!(engine.validate().is_ok());
    }

    #[test]
    fn event_order_matches_program_order() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 2);
        let buf = f.alloc_imm(0, 8);
        f.imm(1, 1);
        f.store(1, buf, 0, 8);
        f.load(1, buf, 0, 8);
        f.ret();
        f.finish();
        let p = pb.build().expect("verifies");
        let mut engine = Engine::new(RecordingObserver::new());
        Interpreter::new(&p).run(&mut engine).expect("no trap");
        let events = engine.finish().into_events();
        let mut write_pos = None;
        let mut read_pos = None;
        for (i, ev) in events.iter().enumerate() {
            match ev {
                sigil_trace::RuntimeEvent::Write { .. } => write_pos = Some(i),
                sigil_trace::RuntimeEvent::Read { .. } => read_pos = Some(i),
                _ => {}
            }
        }
        assert!(write_pos.expect("write seen") < read_pos.expect("read seen"));
    }

    #[test]
    fn trap_messages_are_descriptive() {
        assert!(Trap::DivideByZero { func: FuncId(2) }
            .to_string()
            .contains("f2"));
        assert!(Trap::OutOfFuel { fuel: 9 }.to_string().contains('9'));
    }
}
