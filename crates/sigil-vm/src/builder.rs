//! Fluent construction of guest programs.

use crate::isa::{AluOp, FaluOp, Inst, Reg, Terminator};
use crate::program::{Block, BlockId, FuncId, Program, VmFunction};
use crate::verifier::{verify, VerifyError};

/// Builds a [`Program`] function by function.
///
/// Functions may be *declared* first (obtaining a [`FuncId`] usable in
/// `call` instructions) and *defined* later, enabling mutual recursion.
/// [`ProgramBuilder::build`] runs the verifier.
///
/// # Example
///
/// ```
/// use sigil_vm::ProgramBuilder;
///
/// let mut pb = ProgramBuilder::new();
/// let mut main = pb.function("main", 2);
/// main.imm(0, 21);
/// main.imm(1, 2);
/// main.mul(0, 0, 1);
/// main.ret_reg(0);
/// main.finish();
/// let program = pb.build().expect("verifies");
/// assert_eq!(program.inst_count(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Option<VmFunction>>,
    names: Vec<String>,
    entry: Option<FuncId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a function without defining it, returning an id usable in
    /// call instructions.
    pub fn declare(&mut self, name: &str) -> FuncId {
        let id = FuncId(u32::try_from(self.functions.len()).expect("function count fits u32"));
        self.functions.push(None);
        self.names.push(name.to_owned());
        id
    }

    /// Starts defining a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already defined.
    pub fn define(&mut self, id: FuncId, n_regs: u16) -> FunctionBuilder<'_> {
        assert!(
            self.functions[id.index()].is_none(),
            "function {id} defined twice"
        );
        let func = VmFunction::new(self.names[id.index()].clone(), n_regs);
        FunctionBuilder {
            pb: self,
            id,
            func,
            cur: BlockId(0),
        }
    }

    /// Declares and starts defining a function in one step. The first
    /// function created this way becomes the program entry point unless
    /// [`ProgramBuilder::set_entry`] overrides it.
    pub fn function(&mut self, name: &str, n_regs: u16) -> FunctionBuilder<'_> {
        let id = self.declare(name);
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        self.define(id, n_regs)
    }

    /// Overrides the entry point.
    pub fn set_entry(&mut self, id: FuncId) {
        self.entry = Some(id);
    }

    /// Finishes the program and verifies it.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] if any function is undefined, a block is
    /// unterminated, a register/block/function reference is out of range,
    /// or an access size is invalid.
    pub fn build(self) -> Result<Program, VerifyError> {
        let mut functions = Vec::with_capacity(self.functions.len());
        for (i, slot) in self.functions.into_iter().enumerate() {
            match slot {
                Some(f) => functions.push(f),
                None => {
                    return Err(VerifyError::UndefinedFunction {
                        name: self.names[i].clone(),
                    })
                }
            }
        }
        let entry = self.entry.ok_or(VerifyError::NoEntryPoint)?;
        let program = Program { functions, entry };
        verify(&program)?;
        Ok(program)
    }
}

/// Builds one function's CFG. Obtained from [`ProgramBuilder::function`]
/// or [`ProgramBuilder::define`]; call [`FunctionBuilder::finish`] to
/// commit the function.
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: FuncId,
    func: VmFunction,
    cur: BlockId,
}

impl FunctionBuilder<'_> {
    /// The id of the function under construction.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Creates a new empty block.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId(u32::try_from(self.func.blocks.len()).expect("block count fits u32"));
        self.func.blocks.push(Block::new());
        id
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// Whether the current block already has a terminator.
    pub fn current_is_terminated(&self) -> bool {
        self.func.blocks[self.cur.index()].term.is_some()
    }

    fn push(&mut self, inst: Inst) {
        self.func.blocks[self.cur.index()].insts.push(inst);
    }

    fn terminate(&mut self, term: Terminator) {
        let block = &mut self.func.blocks[self.cur.index()];
        assert!(
            block.term.is_none(),
            "block {} terminated twice",
            self.cur.0
        );
        block.term = Some(term);
    }

    /// `dst = value`
    pub fn imm(&mut self, dst: Reg, value: u64) {
        self.push(Inst::Imm { dst, value });
    }

    /// `dst = value` for an f64 constant (bit-cast into the register).
    pub fn fimm(&mut self, dst: Reg, value: f64) {
        self.push(Inst::Imm {
            dst,
            value: value.to_bits(),
        });
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) {
        self.push(Inst::Mov { dst, src });
    }

    /// Generic integer ALU instruction.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Reg, b: Reg) {
        self.push(Inst::Alu { op, dst, a, b });
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu(AluOp::Add, dst, a, b);
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu(AluOp::Sub, dst, a, b);
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu(AluOp::Mul, dst, a, b);
    }

    /// `dst = a < b` (unsigned)
    pub fn cmplt(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.alu(AluOp::CmpLt, dst, a, b);
    }

    /// Generic floating-point ALU instruction.
    pub fn falu(&mut self, op: FaluOp, dst: Reg, a: Reg, b: Reg) {
        self.push(Inst::Falu { op, dst, a, b });
    }

    /// `dst = mem[base + offset]` of `size` bytes.
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64, size: u8) {
        self.push(Inst::Load {
            dst,
            base,
            offset,
            size,
        });
    }

    /// `mem[base + offset] = src` of `size` bytes.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64, size: u8) {
        self.push(Inst::Store {
            src,
            base,
            offset,
            size,
        });
    }

    /// `dst = alloc(bytes)` with an immediate size; returns `dst` for
    /// convenience (the register now holds the buffer base address).
    pub fn alloc_imm(&mut self, dst: Reg, bytes: u64) -> Reg {
        self.imm(dst, bytes);
        self.push(Inst::Alloc { dst, size: dst });
        dst
    }

    /// `dst = alloc(size_reg)`.
    pub fn alloc(&mut self, dst: Reg, size: Reg) {
        self.push(Inst::Alloc { dst, size });
    }

    /// `dst = func(args...)`.
    pub fn call(&mut self, func: FuncId, args: &[Reg], dst: Option<Reg>) {
        self.push(Inst::Call {
            func,
            args: args.to_vec(),
            dst,
        });
    }

    /// `dst = spawn func(args...)` — start a guest thread, storing its
    /// handle.
    pub fn spawn(&mut self, func: FuncId, args: &[Reg], dst: Option<Reg>) {
        self.push(Inst::Spawn {
            func,
            args: args.to_vec(),
            dst,
        });
    }

    /// `join src` — wait for the thread whose handle is in `src`.
    pub fn join(&mut self, src: Reg) {
        self.push(Inst::Join { src });
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jmp { target });
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Reg, then_blk: BlockId, else_blk: BlockId) {
        self.terminate(Terminator::Br {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Terminates the current block with `ret` (no value).
    pub fn ret(&mut self) {
        self.terminate(Terminator::Ret { value: None });
    }

    /// Terminates the current block with `ret value`.
    pub fn ret_reg(&mut self, value: Reg) {
        self.terminate(Terminator::Ret { value: Some(value) });
    }

    /// Emits a counted loop: `for counter in from..to { body }`.
    ///
    /// Uses `scratch` as a temporary; `counter` and `scratch` must be
    /// distinct registers not clobbered by `body` (the counter may be read
    /// by the body). On exit the insertion point is the loop's exit block.
    ///
    /// # Panics
    ///
    /// Panics if `counter == scratch`.
    pub fn loop_range(
        &mut self,
        counter: Reg,
        scratch: Reg,
        from: u64,
        to: u64,
        body: impl FnOnce(&mut Self),
    ) {
        assert_ne!(counter, scratch, "loop counter and scratch must differ");
        let header = self.block();
        let body_blk = self.block();
        let exit = self.block();
        self.imm(counter, from);
        self.jmp(header);
        self.switch_to(header);
        self.imm(scratch, to);
        self.cmplt(scratch, counter, scratch);
        self.br(scratch, body_blk, exit);
        self.switch_to(body_blk);
        body(self);
        self.imm(scratch, 1);
        self.add(counter, counter, scratch);
        self.jmp(header);
        self.switch_to(exit);
    }

    /// Commits the function to the program builder.
    pub fn finish(self) {
        self.pb.functions[self.id.index()] = Some(self.func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_undefined_function() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        let mut main = pb.function("main", 1);
        main.call(callee, &[], None);
        main.ret();
        main.finish();
        assert!(matches!(
            pb.build(),
            Err(VerifyError::UndefinedFunction { .. })
        ));
    }

    #[test]
    fn build_rejects_empty_program() {
        assert!(matches!(
            ProgramBuilder::new().build(),
            Err(VerifyError::NoEntryPoint)
        ));
    }

    #[test]
    fn first_function_is_entry_by_default() {
        let mut pb = ProgramBuilder::new();
        let mut main = pb.function("main", 1);
        main.ret();
        main.finish();
        let p = pb.build().expect("verifies");
        assert_eq!(p.function(p.entry_point()).name, "main");
    }

    #[test]
    fn mutual_recursion_via_declare_define() {
        let mut pb = ProgramBuilder::new();
        let even = pb.declare("even");
        let odd = pb.declare("odd");
        let mut fe = pb.define(even, 2);
        fe.call(odd, &[0], Some(0));
        fe.ret_reg(0);
        fe.finish();
        let mut fo = pb.define(odd, 2);
        fo.imm(0, 1);
        fo.ret_reg(0);
        fo.finish();
        pb.set_entry(even);
        assert!(pb.build().is_ok());
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("f", 1);
        f.ret();
        f.ret();
    }

    #[test]
    fn loop_range_builds_verifiable_cfg() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("f", 4);
        f.imm(2, 0);
        f.loop_range(0, 1, 0, 10, |f| {
            f.add(2, 2, 0);
        });
        f.ret_reg(2);
        f.finish();
        assert!(pb.build().is_ok());
    }
}
