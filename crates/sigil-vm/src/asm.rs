//! A textual assembly format for guest programs.
//!
//! Lets guest programs be written, stored and loaded as plain text (the
//! `sigil run` CLI command executes such files under the profiler),
//! mirroring how the original tool profiles arbitrary on-disk binaries.
//!
//! # Syntax
//!
//! ```text
//! ; comments run to end of line
//! fn main regs=4            ; function header; first fn is the entry
//!   r0 = 6
//!   r1 = 7
//!   r0 = mul r0, r1
//!   r2 = alloc r0
//!   store8 [r2+0], r1
//!   r3 = load8 [r2+0]
//!   call helper(r3) -> r3
//!   ret r3
//!
//! fn helper regs=1
//!   ret r0
//! ```
//!
//! Blocks are introduced with `label:` lines; `jmp label`,
//! `br rN ? label : label` transfer control. Every function body is a
//! sequence of instructions in block order; the entry block is implicit.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::builder::{FunctionBuilder, ProgramBuilder};
use crate::isa::{AluOp, FaluOp, Reg};
use crate::program::{BlockId, FuncId, Program};
use crate::verifier::VerifyError;

/// A parse or verification failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-program errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for AsmError {}

impl From<VerifyError> for AsmError {
    fn from(e: VerifyError) -> Self {
        AsmError::new(0, e.to_string())
    }
}

fn parse_reg(token: &str, line: usize) -> Result<Reg, AsmError> {
    let rest = token
        .strip_prefix('r')
        .ok_or_else(|| AsmError::new(line, format!("expected register, got `{token}`")))?;
    rest.parse()
        .map_err(|_| AsmError::new(line, format!("bad register `{token}`")))
}

fn parse_imm(token: &str, line: usize) -> Result<u64, AsmError> {
    let parsed = if let Some(hex) = token.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(float) = token.strip_suffix('f') {
        float.parse::<f64>().ok().map(f64::to_bits)
    } else {
        token.parse().ok()
    };
    parsed.ok_or_else(|| AsmError::new(line, format!("bad immediate `{token}`")))
}

/// Parses `[rN+OFF]` / `[rN-OFF]` into (base, offset).
fn parse_mem(token: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let inner = token
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError::new(line, format!("expected [rN+off], got `{token}`")))?;
    let (reg_part, off) = if let Some(pos) = inner.find(['+', '-']) {
        let (r, o) = inner.split_at(pos);
        let off: i64 = o
            .parse()
            .map_err(|_| AsmError::new(line, format!("bad offset in `{token}`")))?;
        (r, off)
    } else {
        (inner, 0)
    };
    Ok((parse_reg(reg_part.trim(), line)?, off))
}

fn alu_op(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "cmplt" => AluOp::CmpLt,
        "cmpeq" => AluOp::CmpEq,
        _ => return None,
    })
}

fn falu_op(name: &str) -> Option<FaluOp> {
    Some(match name {
        "fadd" => FaluOp::FAdd,
        "fsub" => FaluOp::FSub,
        "fmul" => FaluOp::FMul,
        "fdiv" => FaluOp::FDiv,
        "fcmplt" => FaluOp::FCmpLt,
        "fsqrt" => FaluOp::FSqrt,
        _ => return None,
    })
}

struct FnSource<'a> {
    name: &'a str,
    n_regs: u16,
    /// `(line_number, text)` pairs of the body.
    body: Vec<(usize, &'a str)>,
}

/// Splits the source into per-function chunks.
fn split_functions(source: &str) -> Result<Vec<FnSource<'_>>, AsmError> {
    let mut functions: Vec<FnSource<'_>> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix("fn ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| AsmError::new(line_no, "missing function name"))?;
            let regs_part = parts
                .next()
                .and_then(|p| p.strip_prefix("regs="))
                .ok_or_else(|| AsmError::new(line_no, "missing `regs=N`"))?;
            let n_regs: u16 = regs_part
                .parse()
                .map_err(|_| AsmError::new(line_no, format!("bad register count `{regs_part}`")))?;
            functions.push(FnSource {
                name,
                n_regs,
                body: Vec::new(),
            });
        } else {
            let current = functions
                .last_mut()
                .ok_or_else(|| AsmError::new(line_no, "instruction before any `fn` header"))?;
            current.body.push((line_no, text));
        }
    }
    if functions.is_empty() {
        return Err(AsmError::new(0, "no functions defined"));
    }
    Ok(functions)
}

/// Assembles `source` into a verified [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending source line on parse
/// failure, or the verifier diagnostic on semantic failure.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let functions = split_functions(source)?;
    let mut pb = ProgramBuilder::new();
    let mut ids: HashMap<&str, FuncId> = HashMap::new();
    for f in &functions {
        if ids.contains_key(f.name) {
            return Err(AsmError::new(
                0,
                format!("function `{}` defined twice", f.name),
            ));
        }
        ids.insert(f.name, pb.declare(f.name));
    }
    pb.set_entry(ids[functions[0].name]);

    for f in &functions {
        let mut fb = pb.define(ids[f.name], f.n_regs);
        // Pre-scan labels so forward branches resolve.
        let mut labels: HashMap<&str, BlockId> = HashMap::new();
        for &(line_no, text) in &f.body {
            if let Some(label) = text.strip_suffix(':') {
                if labels.insert(label, fb.block()).is_some() {
                    return Err(AsmError::new(line_no, format!("duplicate label `{label}`")));
                }
            }
        }
        let lookup = |label: &str, line: usize| -> Result<BlockId, AsmError> {
            labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::new(line, format!("unknown label `{label}`")))
        };
        for &(line_no, text) in &f.body {
            if let Some(label) = text.strip_suffix(':') {
                // Fall through into the labelled block if the previous one
                // is still open.
                let target = labels[label];
                if !fb.current_is_terminated() {
                    fb.jmp(target);
                }
                fb.switch_to(target);
                continue;
            }
            parse_instruction(&mut fb, &ids, text, line_no, &lookup)?;
        }
        fb.finish();
    }
    pb.build().map_err(AsmError::from)
}

fn parse_instruction(
    fb: &mut FunctionBuilder<'_>,
    ids: &HashMap<&str, FuncId>,
    text: &str,
    line: usize,
    lookup: &dyn Fn(&str, usize) -> Result<BlockId, AsmError>,
) -> Result<(), AsmError> {
    let tokens: Vec<String> = text
        .replace(',', " ")
        .split_whitespace()
        .map(str::to_owned)
        .collect();
    let tok = |i: usize| -> Result<&str, AsmError> {
        tokens
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| AsmError::new(line, format!("truncated instruction `{text}`")))
    };

    match tok(0)? {
        "jmp" => fb.jmp(lookup(tok(1)?, line)?),
        "br" => {
            // br rC ? then : else
            let cond = parse_reg(tok(1)?, line)?;
            if tok(2)? != "?" || tok(4)? != ":" {
                return Err(AsmError::new(line, "expected `br rN ? label : label`"));
            }
            let then_blk = lookup(tok(3)?, line)?;
            let else_blk = lookup(tok(5)?, line)?;
            fb.br(cond, then_blk, else_blk);
        }
        "ret" => match tokens.get(1) {
            Some(value) => fb.ret_reg(parse_reg(value, line)?),
            None => fb.ret(),
        },
        "call" | "spawn" => {
            parse_call(fb, ids, &tokens.join(" "), line)?;
        }
        "join" => fb.join(parse_reg(tok(1)?, line)?),
        first if first.starts_with("store") => {
            // storeN [rB+off], rS
            let size: u8 = first[5..]
                .parse()
                .map_err(|_| AsmError::new(line, format!("bad store width `{first}`")))?;
            let (base, offset) = parse_mem(tok(1)?, line)?;
            let src = parse_reg(tok(2)?, line)?;
            fb.store(src, base, offset, size);
        }
        dst_tok if dst_tok.starts_with('r') && tokens.get(1).map(String::as_str) == Some("=") => {
            let dst = parse_reg(dst_tok, line)?;
            let rhs = tok(2)?;
            if let Some(op) = alu_op(rhs) {
                fb.alu(
                    op,
                    dst,
                    parse_reg(tok(3)?, line)?,
                    parse_reg(tok(4)?, line)?,
                );
            } else if let Some(op) = falu_op(rhs) {
                fb.falu(
                    op,
                    dst,
                    parse_reg(tok(3)?, line)?,
                    parse_reg(tok(4)?, line)?,
                );
            } else if let Some(width) = rhs.strip_prefix("load") {
                let size: u8 = width
                    .parse()
                    .map_err(|_| AsmError::new(line, format!("bad load width `{rhs}`")))?;
                let (base, offset) = parse_mem(tok(3)?, line)?;
                fb.load(dst, base, offset, size);
            } else if rhs == "alloc" {
                fb.alloc(dst, parse_reg(tok(3)?, line)?);
            } else if rhs == "call" || rhs == "spawn" {
                parse_call(fb, ids, &tokens.join(" "), line)?;
            } else if rhs.starts_with('r') {
                fb.mov(dst, parse_reg(rhs, line)?);
            } else {
                fb.imm(dst, parse_imm(rhs, line)?);
            }
        }
        other => {
            return Err(AsmError::new(
                line,
                format!("unknown instruction `{other}`"),
            ))
        }
    }
    Ok(())
}

/// Parses `call name(r1, r2) [-> rD]` or `rD = call name(r1)`; the
/// `spawn` keyword uses the same grammar and lowers to [`Inst::Spawn`](crate::isa::Inst::Spawn).
fn parse_call(
    fb: &mut FunctionBuilder<'_>,
    ids: &HashMap<&str, FuncId>,
    text: &str,
    line: usize,
) -> Result<(), AsmError> {
    let is_kw = |s: &str| s.starts_with("call") || s.starts_with("spawn");
    let (dst, rest) = match text.split_once("=") {
        Some((lhs, rhs)) if lhs.trim().starts_with('r') && is_kw(rhs.trim()) => {
            (Some(parse_reg(lhs.trim(), line)?), rhs.trim())
        }
        _ => match text.split_once("->") {
            Some((lhs, rhs)) => (Some(parse_reg(rhs.trim(), line)?), lhs.trim()),
            None => (None, text),
        },
    };
    let spawns = rest.starts_with("spawn");
    let body = rest
        .strip_prefix("call")
        .or_else(|| rest.strip_prefix("spawn"))
        .ok_or_else(|| AsmError::new(line, "expected `call` or `spawn`"))?
        .trim();
    let open = body
        .find('(')
        .ok_or_else(|| AsmError::new(line, "call needs `(`"))?;
    let close = body
        .rfind(')')
        .ok_or_else(|| AsmError::new(line, "call needs `)`"))?;
    let name = body[..open].trim();
    let func = ids
        .get(name)
        .copied()
        .ok_or_else(|| AsmError::new(line, format!("unknown function `{name}`")))?;
    let args: Vec<Reg> = body[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_reg(s, line))
        .collect::<Result<_, _>>()?;
    if spawns {
        fb.spawn(func, &args, dst);
    } else {
        fb.call(func, &args, dst);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;
    use sigil_trace::observer::CountingObserver;
    use sigil_trace::Engine;

    fn run(source: &str) -> Option<u64> {
        let program = assemble(source).expect("assembles");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&program)
            .run(&mut engine)
            .expect("no trap");
        let _ = engine.finish();
        result
    }

    #[test]
    fn arithmetic_program() {
        let result = run("fn main regs=2\n  r0 = 6\n  r1 = 7\n  r0 = mul r0, r1\n  ret r0\n");
        assert_eq!(result, Some(42));
    }

    #[test]
    fn memory_and_calls() {
        let src = r"
; doubles a value through memory
fn main regs=4
  r0 = 8
  r0 = alloc r0
  r1 = 21
  store8 [r0+0], r1
  r2 = load8 [r0+0]
  call double(r2) -> r3
  ret r3

fn double regs=2
  r1 = 2
  r0 = mul r0, r1
  ret r0
";
        assert_eq!(run(src), Some(42));
    }

    #[test]
    fn branches_and_labels() {
        let src = r"
fn main regs=3
  r0 = 0
  r1 = 0
loop:
  r2 = 10
  r2 = cmplt r1, r2
  br r2 ? body : done
body:
  r0 = add r0, r1
  r2 = 1
  r1 = add r1, r2
  jmp loop
done:
  ret r0
";
        assert_eq!(run(src), Some(45));
    }

    #[test]
    fn float_immediates() {
        let src = "fn main regs=3\n  r0 = 2.5f\n  r1 = 4.0f\n  r2 = fmul r0, r1\n  ret r2\n";
        assert_eq!(run(src).map(f64::from_bits), Some(10.0));
    }

    #[test]
    fn hex_immediates_and_mov() {
        let src = "fn main regs=2\n  r0 = 0xff\n  r1 = r0\n  ret r1\n";
        assert_eq!(run(src), Some(255));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "; header\n\nfn main regs=1 ; entry\n  r0 = 5 ; five\n  ret r0\n";
        assert_eq!(run(src), Some(5));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("fn main regs=1\n  r0 = bogus_op r0, r0\n  ret\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let err = assemble("fn main regs=1\n  jmp nowhere\n").unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let err = assemble("fn main regs=1\n  call missing()\n  ret\n").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn verifier_failures_surface() {
        // r5 out of range for regs=2.
        let err = assemble("fn main regs=2\n  r5 = 1\n  ret\n").unwrap_err();
        assert!(err.message.contains("register"));
    }

    #[test]
    fn instruction_before_fn_rejected() {
        let err = assemble("  r0 = 1\n").unwrap_err();
        assert!(err.message.contains("before any"));
    }

    #[test]
    fn fallthrough_into_label_jumps() {
        // Falling off the entry block into `next:` must still execute.
        let src = "fn main regs=1\n  r0 = 7\nnext:\n  ret r0\n";
        assert_eq!(run(src), Some(7));
    }
}
