//! Textual disassembly of guest programs.

use std::fmt::Write as _;

use crate::isa::Inst;
use crate::program::{Program, VmFunction};

/// Renders one instruction.
pub fn inst_to_string(inst: &Inst) -> String {
    match inst {
        Inst::Imm { dst, value } => format!("r{dst} = {value:#x}"),
        Inst::Mov { dst, src } => format!("r{dst} = r{src}"),
        Inst::Alu { op, dst, a, b } => format!("r{dst} = {} r{a}, r{b}", op.mnemonic()),
        Inst::Falu { op, dst, a, b } => format!("r{dst} = {} r{a}, r{b}", op.mnemonic()),
        Inst::Load {
            dst,
            base,
            offset,
            size,
        } => format!("r{dst} = load{size} [r{base}{offset:+}]"),
        Inst::Store {
            src,
            base,
            offset,
            size,
        } => format!("store{size} [r{base}{offset:+}] = r{src}"),
        Inst::Alloc { dst, size } => format!("r{dst} = alloc r{size}"),
        Inst::Call { func, args, dst } => render_callish("call", *func, args, *dst),
        Inst::Spawn { func, args, dst } => render_callish("spawn", *func, args, *dst),
        Inst::Join { src } => format!("join r{src}"),
    }
}

fn render_callish(
    kw: &str,
    func: crate::program::FuncId,
    args: &[crate::isa::Reg],
    dst: Option<crate::isa::Reg>,
) -> String {
    let args: Vec<String> = args.iter().map(|a| format!("r{a}")).collect();
    match dst {
        Some(d) => format!("r{d} = {kw} {func}({})", args.join(", ")),
        None => format!("{kw} {func}({})", args.join(", ")),
    }
}

/// Renders one function as annotated blocks.
pub fn function_to_string(func: &VmFunction) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn {} (regs: {})", func.name, func.n_regs);
    for (bi, block) in func.blocks.iter().enumerate() {
        let _ = writeln!(out, "  b{bi}:");
        for inst in &block.insts {
            let _ = writeln!(out, "    {}", inst_to_string(inst));
        }
        match &block.term {
            Some(term) => {
                let _ = writeln!(out, "    {term}");
            }
            None => {
                let _ = writeln!(out, "    <unterminated>");
            }
        }
    }
    out
}

/// Renders the whole program.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; entry = {}", program.entry_point());
    for func in &program.functions {
        out.push_str(&function_to_string(func));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn disassembly_mentions_every_construct() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");
        let mut main = pb.function("main", 3);
        let buf = main.alloc_imm(0, 8);
        main.imm(1, 5);
        main.store(1, buf, 0, 8);
        main.load(2, buf, 0, 8);
        main.call(helper, &[2], Some(2));
        main.ret_reg(2);
        main.finish();
        let mut h = pb.define(helper, 1);
        h.ret_reg(0);
        h.finish();
        let p = pb.build().expect("verifies");
        let text = program_to_string(&p);
        assert!(text.contains("fn main"));
        assert!(text.contains("fn helper"));
        assert!(text.contains("alloc"));
        assert!(text.contains("store8"));
        assert!(text.contains("load8"));
        assert!(text.contains("call f"));
        assert!(text.contains("ret r"));
    }

    #[test]
    fn spawn_and_join_disassemble() {
        let spawn = Inst::Spawn {
            func: crate::program::FuncId(2),
            args: vec![0, 1],
            dst: Some(3),
        };
        assert_eq!(inst_to_string(&spawn), "r3 = spawn f2(r0, r1)");
        assert_eq!(inst_to_string(&Inst::Join { src: 3 }), "join r3");
    }

    #[test]
    fn unterminated_block_is_flagged() {
        let func = VmFunction::new("f", 1);
        assert!(function_to_string(&func).contains("<unterminated>"));
    }
}
