//! Property tests: randomly generated (builder-constructed) guest
//! programs verify and execute without violating trace invariants.

use proptest::prelude::*;
use sigil_trace::observer::CountingObserver;
use sigil_trace::Engine;
use sigil_vm::{AluOp, FaluOp, Interpreter, ProgramBuilder, Trap};

/// One straight-line instruction over a fixed 8-register file and one
/// pre-allocated 256-byte buffer in r7.
#[derive(Debug, Clone)]
enum RandInst {
    Imm(u8, u64),
    Mov(u8, u8),
    Alu(u8, u8, u8, u8),
    Falu(u8, u8, u8, u8),
    Load(u8, u8, u8),
    Store(u8, u8, u8),
}

const SIZES: [u8; 4] = [1, 2, 4, 8];
const ALU_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::CmpLt,
    AluOp::CmpEq,
];
const FALU_OPS: [FaluOp; 5] = [
    FaluOp::FAdd,
    FaluOp::FSub,
    FaluOp::FMul,
    FaluOp::FDiv,
    FaluOp::FCmpLt,
];

fn inst_strategy() -> impl Strategy<Value = RandInst> {
    let reg = 0u8..7; // r7 reserved for the buffer base
    prop_oneof![
        (reg.clone(), any::<u64>()).prop_map(|(d, v)| RandInst::Imm(d, v)),
        (reg.clone(), reg.clone()).prop_map(|(d, s)| RandInst::Mov(d, s)),
        (0u8..10, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(o, d, a, b)| RandInst::Alu(o, d, a, b)),
        (0u8..5, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(o, d, a, b)| RandInst::Falu(o, d, a, b)),
        (reg.clone(), 0u8..31, 0u8..4).prop_map(|(d, off, s)| RandInst::Load(d, off, s)),
        (reg, 0u8..31, 0u8..4).prop_map(|(src, off, s)| RandInst::Store(src, off, s)),
    ]
}

fn build(insts: &[RandInst]) -> sigil_vm::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 8);
    f.alloc_imm(7, 256);
    for inst in insts {
        match *inst {
            RandInst::Imm(d, v) => f.imm(d.into(), v),
            RandInst::Mov(d, s) => f.mov(d.into(), s.into()),
            RandInst::Alu(o, d, a, b) => f.alu(ALU_OPS[o as usize], d.into(), a.into(), b.into()),
            RandInst::Falu(o, d, a, b) => {
                f.falu(FALU_OPS[o as usize], d.into(), a.into(), b.into())
            }
            RandInst::Load(d, off, s) => f.load(d.into(), 7, i64::from(off) * 8, SIZES[s as usize]),
            RandInst::Store(src, off, s) => {
                f.store(src.into(), 7, i64::from(off) * 8, SIZES[s as usize])
            }
        }
    }
    f.ret_reg(0);
    f.finish();
    pb.build().expect("builder-generated programs verify")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_straightline_programs_run_clean(insts in prop::collection::vec(inst_strategy(), 0..150)) {
        let program = build(&insts);
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&program).run(&mut engine);
        prop_assert!(result.is_ok(), "trap on div-free program: {result:?}");
        prop_assert!(engine.validate().is_ok());
        let counts = engine.finish().into_counts();
        prop_assert_eq!(counts.calls, counts.returns);
        prop_assert_eq!(counts.calls, 1);
    }

    #[test]
    fn execution_is_deterministic(insts in prop::collection::vec(inst_strategy(), 0..100)) {
        let program = build(&insts);
        let run = || {
            let mut engine = Engine::new(CountingObserver::new());
            let r = Interpreter::new(&program).run(&mut engine).expect("no trap");
            (r, engine.finish().into_counts())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn fuel_always_bounds_execution(insts in prop::collection::vec(inst_strategy(), 0..100), fuel in 1u64..50) {
        let program = build(&insts);
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&program).with_fuel(fuel).run(&mut engine);
        // Either it finished within fuel, or it trapped OutOfFuel with a
        // balanced trace.
        if let Err(trap) = result {
            prop_assert_eq!(trap, Trap::OutOfFuel { fuel });
        }
        prop_assert!(engine.validate().is_ok());
    }

    #[test]
    fn asm_round_trip_of_disassembly_like_programs(n in 1u64..64) {
        // Assemble a parametric loop program and compare against the
        // builder-constructed equivalent.
        let source = format!(
            "fn main regs=3\n  r0 = 0\n  r1 = 0\nloop:\n  r2 = {n}\n  r2 = cmplt r1, r2\n  br r2 ? body : done\nbody:\n  r0 = add r0, r1\n  r2 = 1\n  r1 = add r1, r2\n  jmp loop\ndone:\n  ret r0\n"
        );
        let program = sigil_vm::assemble(&source).expect("assembles");
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&program).run(&mut engine).expect("no trap");
        prop_assert_eq!(result, Some(n * (n - 1) / 2));
        let _ = engine.finish();
    }
}
