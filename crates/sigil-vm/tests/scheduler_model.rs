//! Property tests for the seeded guest-thread scheduler.
//!
//! The differential oracle depends on two scheduler guarantees: the
//! interleaving drawn from a schedule seed is a pure function of that
//! seed (so the oracle can replay the *identical* total order), and
//! ddmin-shrunk repros remain valid programs that still replay under
//! the original seed even when Spawn/Join instructions fall inside the
//! dropped range.

use proptest::prelude::*;
use sigil_trace::observer::{CountingObserver, RecordingObserver};
use sigil_trace::Engine;
use sigil_vm::{GenProgram, Interpreter};

const FUEL: u64 = 4_000_000;

/// Runs `program` under `schedule_seed` and returns the recorded event
/// stream (the exact byte content every profiler consumes).
fn record(program: &GenProgram) -> Vec<sigil_trace::RuntimeEvent> {
    let built = program.build();
    let mut engine = Engine::new(RecordingObserver::new());
    let _ = Interpreter::new(&built)
        .with_fuel(FUEL)
        .with_schedule_seed(program.schedule_seed)
        .run(&mut engine);
    engine.finish().into_events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_seed_replays_a_byte_identical_event_stream(
        seed in 0u64..10_000,
        threads in 1u32..5,
    ) {
        let program = GenProgram::generate_mt(seed, threads);
        let first = record(&program);
        let second = record(&program);
        // Identical event streams make every downstream profile
        // (serial, sharded, streamed) identical by construction.
        prop_assert_eq!(first, second);
    }

    #[test]
    fn different_schedule_seeds_still_balance(
        seed in 0u64..10_000,
        threads in 2u32..5,
        schedule_seed in any::<u64>(),
    ) {
        // Replaying under a foreign schedule seed changes the
        // interleaving but must never unbalance the trace or trap.
        let program = GenProgram::generate_mt(seed, threads);
        let built = program.build();
        let mut engine = Engine::new(CountingObserver::new());
        let result = Interpreter::new(&built)
            .with_fuel(FUEL)
            .with_schedule_seed(schedule_seed)
            .run(&mut engine);
        prop_assert!(result.is_ok(), "trapped: {result:?}");
        prop_assert!(engine.validate().is_ok());
        let counts = engine.finish().into_counts();
        prop_assert_eq!(counts.calls, counts.returns);
    }

    #[test]
    fn shrunk_repros_stay_valid_and_deterministic(
        seed in 0u64..2_000,
        threads in 2u32..5,
        start_pick in 0usize..4096,
        count in 1usize..8,
    ) {
        // ddmin drops arbitrary instruction windows — including ones
        // that orphan a Join (its handle slot reads as 0, a no-op join)
        // or strand a Spawn (the thread runs to completion unjoined).
        let program = GenProgram::generate_mt(seed, threads);
        let n = program.inst_count();
        prop_assert!(n > 0, "generated programs are never empty");
        let shrunk = program.drop_range(start_pick % n, count);
        prop_assert!(shrunk.inst_count() < n);
        prop_assert_eq!(shrunk.schedule_seed, program.schedule_seed);
        let first = record(&shrunk);
        let second = record(&shrunk);
        prop_assert_eq!(first, second);
    }
}
