//! Property tests: the span stack must behave exactly like a reference
//! stack model under arbitrary enter/exit interleavings, and the Chrome
//! exporter must always emit parseable, well-formed trace JSON.
//!
//! This file is its own process, so the global collector is shared only
//! between the tests below — they serialize on [`obs_lock`].

use proptest::prelude::*;
use sigil_obs::{json, span};

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug, Clone)]
enum Op {
    /// Open a span with one of a few fixed names.
    Enter(u8),
    /// Close the innermost open span (may be stray).
    Exit,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5).prop_map(Op::Enter),
        (0u8..5).prop_map(Op::Enter),
        (0u8..5).prop_map(Op::Enter),
        Just(Op::Exit),
        Just(Op::Exit),
    ]
}

const NAMES: [&str; 5] = ["trace", "shadow", "postprocess", "workload", "figure"];

/// Replays `ops` against the real span stack and a reference stack,
/// returning the records the real stack should have produced, in exit
/// order. Leaves no spans open (drains the stack at the end).
fn replay(ops: &[Op]) -> Vec<(String, usize)> {
    let mut model: Vec<&str> = Vec::new();
    let mut expected: Vec<(String, usize)> = Vec::new();
    for op in ops {
        match op {
            Op::Enter(which) => {
                let name = NAMES[*which as usize];
                assert!(span::enter(name), "enter while enabled must push");
                model.push(name);
            }
            Op::Exit => {
                span::exit();
                if let Some(name) = model.pop() {
                    expected.push((name.to_string(), model.len()));
                }
            }
        }
    }
    // Close whatever is still open so the next case starts clean.
    while let Some(name) = model.pop() {
        span::exit();
        expected.push((name.to_string(), model.len()));
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_stack_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let _lock = obs_lock();
        sigil_obs::set_enabled(true);
        span::clear();
        let expected = replay(&ops);
        sigil_obs::set_enabled(false);

        let records = span::snapshot();
        span::clear();
        prop_assert_eq!(records.len(), expected.len());
        // Same exit order, names, and depths as the reference stack.
        for (record, (name, depth)) in records.iter().zip(&expected) {
            prop_assert_eq!(&record.name, name);
            prop_assert_eq!(record.depth, *depth);
        }
        // Well-nested: every non-root span lies inside some span one
        // level shallower that closed later (timestamps are coarse, so
        // containment is non-strict).
        for (i, inner) in records.iter().enumerate() {
            if inner.depth == 0 {
                continue;
            }
            let parent = records[i..]
                .iter()
                .find(|r| r.depth == inner.depth - 1 && r.tid == inner.tid);
            let parent = parent.expect("non-root span has an enclosing span");
            prop_assert!(parent.start_us <= inner.start_us);
            prop_assert!(inner.end_us() <= parent.end_us());
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_complete_events(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let _lock = obs_lock();
        sigil_obs::set_enabled(true);
        span::clear();
        let expected = replay(&ops);
        sigil_obs::set_enabled(false);

        let text = sigil_obs::export_chrome_trace();
        span::clear();
        let doc = json::parse(&text).expect("chrome trace parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        prop_assert_eq!(complete.len(), expected.len());
        for event in complete {
            prop_assert!(event.get("name").and_then(json::Value::as_str).is_some());
            prop_assert!(event.get("ts").and_then(json::Value::as_u64).is_some());
            prop_assert!(event.get("dur").and_then(json::Value::as_u64).is_some());
            prop_assert!(event.get("tid").and_then(json::Value::as_u64).is_some());
        }
        // Every X event's tid is introduced by an M thread-name event.
        let named_tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("M"))
            .filter_map(|e| e.get("tid").and_then(json::Value::as_u64))
            .collect();
        for event in events {
            if event.get("ph").and_then(json::Value::as_str) == Some("X") {
                let tid = event.get("tid").and_then(json::Value::as_u64).unwrap();
                prop_assert!(named_tids.contains(&tid));
            }
        }
    }
}
