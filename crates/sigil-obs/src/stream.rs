//! Background metrics streaming: live, tail-able JSONL snapshots.
//!
//! [`MetricsStreamer::start`] spawns a thread that appends one JSON
//! object per line to a file at a fixed interval. Each line is a *delta
//! snapshot* of the [`crate::metrics`] registry:
//!
//! * `counters` — the **increase** since the previous line, omitting
//!   counters that did not move (so an idle interval renders `{}`);
//! * `gauges` — current absolute values (a gauge has no meaningful
//!   delta);
//! * `seq` / `t_ms` — line number and milliseconds since the streamer
//!   started.
//!
//! ```json
//! {"seq": 1, "t_ms": 201, "counters": {"sweep.workloads_done": 2}, "gauges": {"sweep.running": 1.0}}
//! ```
//!
//! [`MetricsStreamer::stop`] wakes the thread through a condvar (no
//! residual interval sleep), writes one final line covering whatever
//! moved since the last tick, and joins. `tail -f` on the path gives a
//! live view of any long run; `sigil-serve` can later consume the same
//! format.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::escape_into;
use crate::metrics::{snapshot, MetricValue};

/// Handle to the background streaming thread. Dropping it without
/// calling [`MetricsStreamer::stop`] detaches the thread (it keeps
/// streaming until the process exits); stop explicitly for a clean
/// final line.
pub struct MetricsStreamer {
    shared: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl MetricsStreamer {
    /// Creates (truncating) `path` and starts streaming delta snapshots
    /// every `interval`. The file is created eagerly so configuration
    /// errors surface here, not in the background thread. An interval
    /// of zero is clamped to one millisecond.
    pub fn start(path: impl AsRef<Path>, interval: Duration) -> io::Result<Self> {
        let file = File::create(path)?;
        let interval = interval.max(Duration::from_millis(1));
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sigil-metrics-stream".to_owned())
            .spawn(move || stream_loop(file, interval, &thread_shared))?;
        Ok(Self {
            shared,
            handle: Some(handle),
        })
    }

    /// Signals the thread to stop, waits for the final line, and
    /// returns any I/O error the stream hit while writing.
    pub fn stop(mut self) -> io::Result<()> {
        let (stop, wake) = &*self.shared;
        *stop.lock().expect("streamer stop lock") = true;
        wake.notify_all();
        match self.handle.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("metrics streamer panicked"))),
            None => Ok(()),
        }
    }
}

fn stream_loop(file: File, interval: Duration, shared: &(Mutex<bool>, Condvar)) -> io::Result<()> {
    let mut out = BufWriter::new(file);
    let epoch = Instant::now();
    let mut last_counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut seq = 0u64;
    let (stop, wake) = shared;
    loop {
        let stopped = {
            let guard = stop.lock().expect("streamer stop lock");
            let (guard, _) = wake
                .wait_timeout_while(guard, interval, |stopped| !*stopped)
                .expect("streamer stop lock");
            *guard
        };
        seq += 1;
        let line = delta_line(seq, &epoch, &mut last_counters);
        out.write_all(line.as_bytes())?;
        out.flush()?;
        if stopped {
            return Ok(());
        }
    }
}

/// Renders one JSONL line and folds the counter values it reported into
/// `last_counters` so the next line reports fresh deltas.
fn delta_line(seq: u64, epoch: &Instant, last_counters: &mut BTreeMap<String, u64>) -> String {
    let t_ms = u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
    let snap = snapshot();
    let mut line = String::new();
    let _ = write!(line, "{{\"seq\": {seq}, \"t_ms\": {t_ms}, \"counters\": {{");
    let mut first = true;
    for (name, value) in &snap {
        if let MetricValue::Counter(now) = value {
            let before = last_counters.insert(name.clone(), *now).unwrap_or(0);
            let delta = now.saturating_sub(before);
            if delta == 0 {
                continue;
            }
            if !first {
                line.push_str(", ");
            }
            first = false;
            escape_into(&mut line, name);
            let _ = write!(line, ": {delta}");
        }
    }
    line.push_str("}, \"gauges\": {");
    first = true;
    for (name, value) in &snap {
        if let MetricValue::Gauge(v) = value {
            if !first {
                line.push_str(", ");
            }
            first = false;
            escape_into(&mut line, name);
            if v.is_finite() {
                let _ = write!(line, ": {v:?}");
            } else {
                line.push_str(": null");
            }
        }
    }
    line.push_str("}}\n");
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn delta_lines_report_increases_only() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        crate::metrics::clear();
        crate::metrics::counter("work").add(5);
        crate::metrics::gauge("rate").set(0.5);
        let epoch = Instant::now();
        let mut last = BTreeMap::new();

        let line = delta_line(1, &epoch, &mut last);
        let doc = json::parse(&line).expect("line 1 is valid JSON");
        assert_eq!(
            doc.get("counters").unwrap().get("work").unwrap().as_u64(),
            Some(5)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("rate").unwrap().as_f64(),
            Some(0.5)
        );

        // Nothing moved: the counters object is empty, gauges persist.
        let line = json::parse(&delta_line(2, &epoch, &mut last)).expect("line 2");
        assert_eq!(line.get("counters").unwrap().as_object(), Some(&[][..]));
        assert_eq!(line.get("seq").unwrap().as_u64(), Some(2));

        crate::metrics::counter("work").add(3);
        let line = json::parse(&delta_line(3, &epoch, &mut last)).expect("line 3");
        assert_eq!(
            line.get("counters").unwrap().get("work").unwrap().as_u64(),
            Some(3)
        );
        crate::set_enabled(false);
        crate::metrics::clear();
    }

    #[test]
    fn streamer_writes_final_line_on_stop() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        crate::metrics::clear();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sigil-stream-test-{}.jsonl", std::process::id()));
        let streamer =
            MetricsStreamer::start(&path, Duration::from_millis(10)).expect("streamer starts");
        crate::metrics::counter("events").add(7);
        std::thread::sleep(Duration::from_millis(40));
        streamer.stop().expect("clean stop");
        let text = std::fs::read_to_string(&path).expect("stream file exists");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected >=2 snapshots, got {lines:?}");
        let mut saw_delta = false;
        for (i, line) in lines.iter().enumerate() {
            let doc = json::parse(line).expect("every line is valid JSON");
            assert_eq!(doc.get("seq").unwrap().as_u64(), Some(i as u64 + 1));
            if doc
                .get("counters")
                .unwrap()
                .get("events")
                .is_some_and(|v| v.as_u64() == Some(7))
            {
                saw_delta = true;
            }
        }
        assert!(saw_delta, "some line carries the counter delta: {text}");
        let _ = std::fs::remove_file(&path);
        crate::set_enabled(false);
        crate::metrics::clear();
    }
}
