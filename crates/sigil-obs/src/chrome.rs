//! Chrome trace-event JSON exporter.
//!
//! Serializes every collected [`crate::span::SpanRecord`] as a complete
//! (`"ph": "X"`) trace event in the Trace Event Format, loadable in
//! `chrome://tracing` and Perfetto. The file is a JSON object:
//!
//! ```json
//! {
//!   "displayTimeUnit": "ms",
//!   "traceEvents": [
//!     {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "sigil-thread-0"}},
//!     {"name": "profile:vips", "cat": "sigil", "ph": "X", "pid": 1, "tid": 0,
//!      "ts": 12, "dur": 3450, "args": {"depth": 0}}
//!   ]
//! }
//! ```
//!
//! `ts`/`dur` are microseconds (the format's native unit) since the
//! process trace epoch. One metadata (`"ph": "M"`) event per thread
//! names it `sigil-thread-<tid>`.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::json::escape_into;
use crate::span::{snapshot, SpanRecord};

/// Renders `spans` as a Chrome trace-event JSON document.
pub fn chrome_trace_from(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"sigil-thread-{tid}\"}}}}"
        );
    }
    for span in spans {
        push_sep(&mut out, &mut first);
        out.push_str("{\"name\": ");
        escape_into(&mut out, &span.name);
        let _ = write!(
            out,
            ", \"cat\": \"sigil\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \
             \"ts\": {}, \"dur\": {}, \"args\": {{\"depth\": {}}}}}",
            span.tid, span.start_us, span.dur_us, span.depth
        );
    }
    out.push_str("\n]\n}\n");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Renders every span collected so far as a Chrome trace-event JSON
/// document.
pub fn export_chrome_trace() -> String {
    chrome_trace_from(&snapshot())
}

/// Writes [`export_chrome_trace`] to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, export_chrome_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn record(name: &str, tid: u64, depth: usize, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_owned(),
            tid,
            depth,
            start_us,
            dur_us,
        }
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let doc = json::parse(&chrome_trace_from(&[])).expect("valid JSON");
        assert_eq!(doc.get("traceEvents").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn events_carry_complete_phase_and_times() {
        let spans = [
            record("outer", 0, 0, 10, 100),
            record("in\"ner", 0, 1, 20, 30),
            record("worker", 1, 0, 15, 40),
        ];
        let text = chrome_trace_from(&spans);
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread metadata events + 3 span events.
        assert_eq!(events.len(), 5);
        let metadata: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metadata.len(), 2);
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        for event in &complete {
            assert!(event.get("ts").unwrap().as_u64().is_some());
            assert!(event.get("dur").unwrap().as_u64().is_some());
            assert!(event.get("name").unwrap().as_str().is_some());
        }
        assert_eq!(complete[1].get("name").unwrap().as_str(), Some("in\"ner"));
        assert_eq!(
            complete[1]
                .get("args")
                .unwrap()
                .get("depth")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
