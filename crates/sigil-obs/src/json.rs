//! Minimal JSON reading and string escaping.
//!
//! The exporters in this crate write JSON by hand (the crate has no
//! dependencies); this module supplies the escaping they need plus a
//! small recursive-descent parser used to *validate* emitted files —
//! tests and tools parse a trace or metrics snapshot back and inspect
//! it structurally instead of grepping text.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`, like browsers do).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }
}

/// Error from [`parse`]: byte position and description.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing characters.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // emitters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(
            parse("\"a\\nb\"").unwrap(),
            Value::String("a\nb".to_owned())
        );
        let v = parse(r#"{"xs": [1, 2, {"k": "v"}], "empty": {}}"#).unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].get("k").unwrap().as_str(), Some("v"));
        assert_eq!(v.get("empty").unwrap().as_object(), Some(&[][..]));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut out = String::new();
        escape_into(&mut out, nasty);
        assert_eq!(parse(&out).unwrap(), Value::String(nasty.to_owned()));
    }

    #[test]
    fn as_u64_accepts_only_exact_integers() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
