//! A global metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s into
//! the registry; recording through a handle is a single atomic op, so a
//! handle can live on a hot-ish path. Handles requested while the crate
//! is globally disabled ([`crate::set_enabled`]) are inert no-ops and
//! register nothing.
//!
//! [`snapshot_json`] renders the whole registry as a stable (sorted)
//! JSON document — the `--metrics-out` file format:
//!
//! ```json
//! {
//!   "counters":   { "shadow.accesses": 123456 },
//!   "gauges":     { "shadow.mru_hit_rate": 0.97 },
//!   "histograms": { "sweep.wall_ms": { "bounds": [1, 10], "counts": [5, 2, 1], "total": 8, "sum": 42 } }
//! }
//! ```
//!
//! A histogram's `counts` has one entry per bound (`value <= bound`)
//! plus a final overflow bucket.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::escape_into;

#[derive(Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>), // f64 bit pattern
    Histogram(Arc<HistogramCore>),
}

struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last catches values above every bound.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

static REGISTRY: Mutex<BTreeMap<String, Slot>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Slot>> {
    REGISTRY.lock().expect("metrics registry lock")
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for an inert handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A gauge handle holding one `f64`.
#[derive(Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for an inert handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let Some(core) = &self.0 else { return };
        let bucket = core
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(core.bounds.len());
        core.counts[bucket].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Estimates the `p`-th percentile (`0.0..=100.0`) by linear
    /// interpolation inside the bucket holding that rank. Returns `None`
    /// for an inert handle or an empty histogram. Ranks landing in the
    /// overflow bucket report the last finite bound (a floor, not an
    /// estimate — the histogram has no upper edge there).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let core = self.0.as_ref()?;
        let counts: Vec<u64> = core
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        percentile_from_buckets(&core.bounds, &counts, p)
    }
}

/// Percentile estimate from raw histogram state: `counts` has one entry
/// per bound plus a final overflow bucket. Linear interpolation within
/// the bucket containing rank `p/100 * total`; bucket `i` spans
/// `(bounds[i-1], bounds[i]]` (the first spans `[0, bounds[0]]`).
/// Returns `None` when there are no observations or the shapes mismatch.
pub fn percentile_from_buckets(bounds: &[u64], counts: &[u64], p: f64) -> Option<f64> {
    if bounds.is_empty() || counts.len() != bounds.len() + 1 {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * total as f64;
    let mut below = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let cumulative = below + count;
        if cumulative as f64 >= rank {
            let Some(&upper) = bounds.get(i) else {
                // Overflow bucket: no upper edge to interpolate against.
                return Some(*bounds.last().expect("bounds non-empty") as f64);
            };
            let lower = if i == 0 { 0 } else { bounds[i - 1] };
            let fraction = ((rank - below as f64) / count as f64).clamp(0.0, 1.0);
            return Some(lower as f64 + fraction * (upper - lower) as f64);
        }
        below = cumulative;
    }
    Some(*bounds.last().expect("bounds non-empty") as f64)
}

/// Registers (or finds) the counter `name` and returns a handle.
/// Inert while the crate is disabled or if `name` is a different type.
pub fn counter(name: &str) -> Counter {
    if !crate::is_enabled() {
        return Counter(None);
    }
    let mut reg = registry();
    let slot = reg
        .entry(name.to_owned())
        .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
    match slot {
        Slot::Counter(cell) => Counter(Some(Arc::clone(cell))),
        _ => Counter(None),
    }
}

/// Registers (or finds) the gauge `name` and returns a handle.
pub fn gauge(name: &str) -> Gauge {
    if !crate::is_enabled() {
        return Gauge(None);
    }
    let mut reg = registry();
    let slot = reg
        .entry(name.to_owned())
        .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))));
    match slot {
        Slot::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
        _ => Gauge(None),
    }
}

/// Registers (or finds) the histogram `name` with the given inclusive
/// upper `bounds` and returns a handle. Bounds are fixed at first
/// registration; later callers share them.
///
/// # Panics
///
/// Panics if `bounds` is empty or not strictly increasing (a programming
/// error at the instrumentation site).
pub fn histogram(name: &str, bounds: &[u64]) -> Histogram {
    assert!(!bounds.is_empty(), "histogram needs at least one bound");
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram bounds must be strictly increasing"
    );
    if !crate::is_enabled() {
        return Histogram(None);
    }
    let mut reg = registry();
    let slot = reg.entry(name.to_owned()).or_insert_with(|| {
        Slot::Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    });
    match slot {
        Slot::Histogram(core) => Histogram(Some(Arc::clone(core))),
        _ => Histogram(None),
    }
}

/// Sets counter `name` to an absolute value (registering it if needed).
/// One-shot export path for counters maintained elsewhere — e.g. the
/// shadow-table hot-path counters, counted locally for speed and
/// published once per run.
pub fn set_counter(name: &str, value: u64) {
    if let Some(cell) = &counter(name).0 {
        cell.store(value, Ordering::Relaxed);
    }
}

/// Adds `n` to counter `name` (registering it if needed). Accumulation
/// path for counters maintained elsewhere and folded in once per run —
/// e.g. the sharded dispatcher's busy/resolve timers, which a sweep sums
/// across workloads.
pub fn add_counter(name: &str, n: u64) {
    counter(name).add(n);
}

/// Sets gauge `name` to `value` (registering it if needed).
pub fn set_gauge(name: &str, value: f64) {
    gauge(name).set(value);
}

/// A point-in-time value of one metric, for inspection in tests/tools.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: bucket bounds, per-bucket counts (bounds + 1
    /// overflow), observation count, and sum of observed values.
    Histogram {
        /// Inclusive upper bounds of the finite buckets.
        bounds: Vec<u64>,
        /// Per-bucket counts (one per bound, plus overflow).
        counts: Vec<u64>,
        /// Number of observations.
        total: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

/// Copies the registry into a sorted name → value map.
pub fn snapshot() -> BTreeMap<String, MetricValue> {
    registry()
        .iter()
        .map(|(name, slot)| {
            let value = match slot {
                Slot::Counter(cell) => MetricValue::Counter(cell.load(Ordering::Relaxed)),
                Slot::Gauge(cell) => {
                    MetricValue::Gauge(f64::from_bits(cell.load(Ordering::Relaxed)))
                }
                Slot::Histogram(core) => MetricValue::Histogram {
                    bounds: core.bounds.clone(),
                    counts: core
                        .counts
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    total: core.total.load(Ordering::Relaxed),
                    sum: core.sum.load(Ordering::Relaxed),
                },
            };
            (name.clone(), value)
        })
        .collect()
}

/// Renders the registry as the `--metrics-out` JSON document (two-space
/// indent, keys sorted, one `counters`/`gauges`/`histograms` section
/// each — always present, possibly empty).
pub fn snapshot_json() -> String {
    let snap = snapshot();
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, value) in &snap {
        if let MetricValue::Counter(v) = value {
            sep(&mut out, &mut first);
            key(&mut out, name);
            let _ = write!(out, "{v}");
        }
    }
    close_section(&mut out, first);
    out.push_str("  \"gauges\": {");
    first = true;
    for (name, value) in &snap {
        if let MetricValue::Gauge(v) = value {
            sep(&mut out, &mut first);
            key(&mut out, name);
            if v.is_finite() {
                let _ = write!(out, "{v:?}");
            } else {
                out.push_str("null");
            }
        }
    }
    close_section(&mut out, first);
    out.push_str("  \"histograms\": {");
    first = true;
    for (name, value) in &snap {
        if let MetricValue::Histogram {
            bounds,
            counts,
            total,
            sum,
        } = value
        {
            sep(&mut out, &mut first);
            key(&mut out, name);
            let _ = write!(
                out,
                "{{\"bounds\": {bounds:?}, \"counts\": {counts:?}, \"total\": {total}, \"sum\": {sum}}}"
            );
        }
    }
    if first {
        out.push_str("}\n}\n");
    } else {
        out.push_str("\n  }\n}\n");
    }
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        out.push('\n');
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str("    ");
}

fn key(out: &mut String, name: &str) {
    escape_into(out, name);
    out.push_str(": ");
}

fn close_section(out: &mut String, first: bool) {
    if first {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
}

/// Empties the registry (handles created earlier keep their cells but
/// are no longer visible in snapshots).
pub fn clear() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn disabled_registry_stays_empty() {
        let _lock = crate::test_lock();
        crate::set_enabled(false);
        clear();
        counter("c").add(5);
        gauge("g").set(1.5);
        histogram("h", &[1, 2]).observe(3);
        set_counter("c2", 9);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_record_and_snapshot() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        clear();
        let c = counter("work.items");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        counter("work.items").inc(); // same underlying cell
        add_counter("work.items", 2); // shorthand hits the same cell too
        gauge("rate").set(0.75);
        let h = histogram("ms", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let snap = snapshot();
        assert_eq!(snap["work.items"], MetricValue::Counter(8));
        assert_eq!(snap["rate"], MetricValue::Gauge(0.75));
        assert_eq!(
            snap["ms"],
            MetricValue::Histogram {
                bounds: vec![10, 100],
                counts: vec![1, 1, 1],
                total: 3,
                sum: 555,
            }
        );
        crate::set_enabled(false);
        clear();
    }

    #[test]
    fn type_mismatch_yields_inert_handle() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        clear();
        counter("name").inc();
        let g = gauge("name");
        g.set(3.0);
        assert_eq!(snapshot()["name"], MetricValue::Counter(1));
        crate::set_enabled(false);
        clear();
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        clear();
        let h = histogram("lat", &[10, 100, 1000]);
        assert_eq!(h.percentile(50.0), None, "empty histogram has no rank");
        for v in [5, 5, 50, 50, 50, 50, 500, 500, 500, 5000] {
            h.observe(v);
        }
        // Rank 5 of 10 sits at the end of the (10, 100] bucket's second
        // of four observations: 10 + (5-2)/4 * 90 = 77.5.
        assert_eq!(h.percentile(50.0), Some(77.5));
        // Rank 0 clamps into the first occupied bucket.
        assert_eq!(h.percentile(0.0), Some(0.0));
        // Rank 10 lands in the overflow bucket: floored to the last bound.
        assert_eq!(h.percentile(99.9), Some(1000.0));
        crate::set_enabled(false);
        clear();
        assert_eq!(Histogram(None).percentile(50.0), None);
    }

    #[test]
    fn percentile_from_buckets_rejects_bad_shapes() {
        assert_eq!(percentile_from_buckets(&[], &[3], 50.0), None);
        assert_eq!(percentile_from_buckets(&[10], &[1], 50.0), None);
        assert_eq!(percentile_from_buckets(&[10], &[0, 0], 50.0), None);
        assert_eq!(percentile_from_buckets(&[10], &[2, 0], 100.0), Some(10.0));
    }

    #[test]
    fn snapshot_json_is_valid_and_sectioned() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        clear();
        counter("a\"quoted\"").add(2);
        gauge("g").set(2.5);
        histogram("h", &[1]).observe(7);
        let text = snapshot_json();
        let doc = json::parse(&text).expect("snapshot is valid JSON");
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("a\"quoted\"")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            doc.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(2.5)
        );
        let h = doc.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("total").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("counts").unwrap().as_array().unwrap().len(), 2);
        crate::set_enabled(false);
        clear();
        let empty = json::parse(&snapshot_json()).expect("empty snapshot is valid JSON");
        assert_eq!(empty.get("counters").unwrap().as_object(), Some(&[][..]));
    }
}
