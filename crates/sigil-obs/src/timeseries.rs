//! Fixed-resolution time-bucketed counters and gauges.
//!
//! Where [`crate::metrics`] keeps one aggregate per name, this module
//! keeps a *series*: values are folded into fixed-width time buckets
//! since the trace epoch (the first recording, or an explicit
//! [`set_resolution_ms`] call). Counter samples **sum** within a bucket;
//! gauge samples keep the **last** value written to a bucket. Buckets
//! are sparse — only touched indices are stored — so an idle series
//! costs nothing.
//!
//! Recording is gated on the global enable flag like the rest of the
//! crate: while [`crate::is_enabled`] is false every call is a no-op.
//!
//! [`snapshot_json`] renders the store as a standalone JSON document:
//!
//! ```json
//! {
//!   "bucket_ms": 100,
//!   "counters": { "shard.batches": [[0, 12], [3, 9]] },
//!   "gauges":   { "shard.0.depth": [[0, 2.0]] }
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::escape_into;

/// Default bucket width when nothing calls [`set_resolution_ms`].
pub const DEFAULT_BUCKET_MS: u64 = 100;

enum SeriesData {
    Counter(BTreeMap<u64, u64>),
    Gauge(BTreeMap<u64, f64>),
}

struct Store {
    bucket_ms: u64,
    series: BTreeMap<String, SeriesData>,
}

static STORE: Mutex<Option<Store>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn elapsed_ms() -> u64 {
    u64::try_from(epoch().elapsed().as_millis()).unwrap_or(u64::MAX)
}

fn with_store<R>(f: impl FnOnce(&mut Store) -> R) -> R {
    let mut guard = STORE.lock().expect("timeseries store lock");
    let store = guard.get_or_insert_with(|| Store {
        bucket_ms: DEFAULT_BUCKET_MS,
        series: BTreeMap::new(),
    });
    f(store)
}

/// Sets the bucket width for subsequent recordings and pins the trace
/// epoch if it was not already pinned. A width of 0 is clamped to 1 ms.
/// Call once at startup, before instrumented work begins; series already
/// recorded keep their old indices (prefer [`clear`] first).
pub fn set_resolution_ms(ms: u64) {
    let _ = epoch();
    with_store(|store| store.bucket_ms = ms.max(1));
}

/// The current bucket width in milliseconds.
pub fn resolution_ms() -> u64 {
    with_store(|store| store.bucket_ms)
}

/// Adds `n` to counter series `name` in the bucket covering *now*.
/// No-op while the crate is disabled.
pub fn record_counter(name: &str, n: u64) {
    if crate::is_enabled() {
        record_counter_at(name, elapsed_ms(), n);
    }
}

/// Adds `n` to counter series `name` in the bucket covering `at_ms`
/// (milliseconds since the trace epoch). Deterministic entry point for
/// tests and replayed data; still gated on the enable flag by
/// [`record_counter`], not here.
pub fn record_counter_at(name: &str, at_ms: u64, n: u64) {
    with_store(|store| {
        let index = at_ms / store.bucket_ms;
        let data = store
            .series
            .entry(name.to_owned())
            .or_insert_with(|| SeriesData::Counter(BTreeMap::new()));
        if let SeriesData::Counter(buckets) = data {
            *buckets.entry(index).or_insert(0) += n;
        }
    });
}

/// Sets gauge series `name` to `value` in the bucket covering *now*
/// (last write to a bucket wins). No-op while the crate is disabled.
pub fn record_gauge(name: &str, value: f64) {
    if crate::is_enabled() {
        record_gauge_at(name, elapsed_ms(), value);
    }
}

/// Sets gauge series `name` to `value` in the bucket covering `at_ms`.
/// Deterministic entry point for tests and replayed data.
pub fn record_gauge_at(name: &str, at_ms: u64, value: f64) {
    with_store(|store| {
        let index = at_ms / store.bucket_ms;
        let data = store
            .series
            .entry(name.to_owned())
            .or_insert_with(|| SeriesData::Gauge(BTreeMap::new()));
        if let SeriesData::Gauge(buckets) = data {
            buckets.insert(index, value);
        }
    });
}

/// A snapshot of one series: sorted `(bucket_index, value)` points.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesSnapshot {
    /// Counter series: per-bucket sums.
    Counter(Vec<(u64, u64)>),
    /// Gauge series: last value written per bucket.
    Gauge(Vec<(u64, f64)>),
}

/// Copies the store into a sorted name → series map, alongside the
/// bucket width the indices refer to.
pub fn snapshot() -> (u64, BTreeMap<String, SeriesSnapshot>) {
    with_store(|store| {
        let series = store
            .series
            .iter()
            .map(|(name, data)| {
                let snap = match data {
                    SeriesData::Counter(b) => {
                        SeriesSnapshot::Counter(b.iter().map(|(&i, &v)| (i, v)).collect())
                    }
                    SeriesData::Gauge(b) => {
                        SeriesSnapshot::Gauge(b.iter().map(|(&i, &v)| (i, v)).collect())
                    }
                };
                (name.clone(), snap)
            })
            .collect();
        (store.bucket_ms, series)
    })
}

/// Renders the store as a standalone JSON document (stable key order;
/// `counters`/`gauges` sections always present, possibly empty).
pub fn snapshot_json() -> String {
    let (bucket_ms, series) = snapshot();
    let mut out = String::new();
    let _ = write!(out, "{{\n  \"bucket_ms\": {bucket_ms},\n  \"counters\": {{");
    let mut first = true;
    for (name, snap) in &series {
        if let SeriesSnapshot::Counter(points) = snap {
            section_entry(&mut out, &mut first, name);
            write_points(&mut out, points.iter().map(|&(i, v)| (i, format!("{v}"))));
        }
    }
    close(&mut out, first, ",");
    out.push_str("  \"gauges\": {");
    first = true;
    for (name, snap) in &series {
        if let SeriesSnapshot::Gauge(points) = snap {
            section_entry(&mut out, &mut first, name);
            write_points(
                &mut out,
                points.iter().map(|&(i, v)| {
                    (
                        i,
                        if v.is_finite() {
                            format!("{v:?}")
                        } else {
                            "null".to_owned()
                        },
                    )
                }),
            );
        }
    }
    close(&mut out, first, "");
    out.push_str("}\n");
    out
}

fn section_entry(out: &mut String, first: &mut bool, name: &str) {
    if *first {
        out.push('\n');
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str("    ");
    escape_into(out, name);
    out.push_str(": ");
}

fn write_points(out: &mut String, points: impl Iterator<Item = (u64, String)>) {
    out.push('[');
    for (n, (index, value)) in points.enumerate() {
        if n > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{index}, {value}]");
    }
    out.push(']');
}

fn close(out: &mut String, first: bool, tail: &str) {
    if first {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
    out.push_str(tail);
    out.push('\n');
}

/// Empties the store and resets the bucket width to the default. The
/// trace epoch is process-wide and stays pinned.
pub fn clear() {
    *STORE.lock().expect("timeseries store lock") = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn buckets_sum_counters_and_overwrite_gauges() {
        let _lock = crate::test_lock();
        clear();
        set_resolution_ms(100);
        record_counter_at("c", 0, 2);
        record_counter_at("c", 99, 3); // same bucket
        record_counter_at("c", 100, 7); // boundary lands in bucket 1
        record_gauge_at("g", 50, 1.0);
        record_gauge_at("g", 60, 2.5); // same bucket: last write wins
        record_gauge_at("g", 250, 9.0);
        let (bucket_ms, series) = snapshot();
        assert_eq!(bucket_ms, 100);
        assert_eq!(series["c"], SeriesSnapshot::Counter(vec![(0, 5), (1, 7)]));
        assert_eq!(series["g"], SeriesSnapshot::Gauge(vec![(0, 2.5), (2, 9.0)]));
        clear();
    }

    #[test]
    fn kind_mismatch_is_ignored() {
        let _lock = crate::test_lock();
        clear();
        record_counter_at("x", 0, 1);
        record_gauge_at("x", 0, 5.0); // wrong kind: dropped
        let (_, series) = snapshot();
        assert_eq!(series["x"], SeriesSnapshot::Counter(vec![(0, 1)]));
        clear();
    }

    #[test]
    fn disabled_crate_records_nothing_via_live_entry_points() {
        let _lock = crate::test_lock();
        crate::set_enabled(false);
        clear();
        record_counter("c", 1);
        record_gauge("g", 1.0);
        assert!(snapshot().1.is_empty());
        clear();
    }

    #[test]
    fn snapshot_json_is_valid() {
        let _lock = crate::test_lock();
        clear();
        set_resolution_ms(10);
        record_counter_at("a\"q\"", 5, 4);
        record_gauge_at("g", 15, 0.5);
        let text = snapshot_json();
        let doc = json::parse(&text).expect("timeseries snapshot is valid JSON");
        assert_eq!(doc.get("bucket_ms").unwrap().as_u64(), Some(10));
        let c = doc.get("counters").unwrap().get("a\"q\"").unwrap();
        let point = &c.as_array().unwrap()[0];
        assert_eq!(point.as_array().unwrap()[0].as_u64(), Some(0));
        assert_eq!(point.as_array().unwrap()[1].as_u64(), Some(4));
        clear();
        let empty = json::parse(&snapshot_json()).expect("empty snapshot is valid JSON");
        assert_eq!(empty.get("gauges").unwrap().as_object(), Some(&[][..]));
    }
}
