//! Span-based tracing with thread-local span stacks.
//!
//! A *span* covers one phase of work on one thread. Spans form a stack
//! per thread — entering a span while another is open nests it — and
//! every finished span is appended to a global collector that the
//! [`crate::chrome`] exporter serializes. Timestamps are microseconds
//! since a process-wide epoch pinned at the first instrumentation hit,
//! so spans from different threads share one timeline.
//!
//! The RAII interface ([`span`] / [`span_with`]) is the normal entry
//! point; the explicit [`enter`] / [`exit`] pair exists for callers (and
//! property tests) that cannot scope a guard.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One finished span, as stored in the global collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (phase label).
    pub name: String,
    /// Dense per-process thread id (0 = first thread that traced).
    pub tid: u64,
    /// Nesting depth at entry: 0 for a root span, 1 for its children…
    pub depth: usize,
    /// Start time in microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

impl SpanRecord {
    /// End time in microseconds since the trace epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

static COLLECTOR: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// The process-wide trace epoch (pinned on first use).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
    static STACK: RefCell<Vec<(String, Instant)>> = const { RefCell::new(Vec::new()) };
}

fn tid() -> u64 {
    TID.with(|slot| match slot.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(id));
            id
        }
    })
}

/// Opens a span on this thread's span stack. Returns `true` if tracing
/// is enabled and the span was actually pushed.
///
/// Prefer the RAII [`span`] / [`span_with`] guards; use this only when a
/// guard cannot be scoped. Every `true` return must be paired with one
/// [`exit`] on the same thread.
pub fn enter(name: impl Into<String>) -> bool {
    if !crate::is_enabled() {
        return false;
    }
    let _ = epoch(); // pin the epoch no later than the first span start
    STACK.with(|stack| stack.borrow_mut().push((name.into(), Instant::now())));
    true
}

/// Closes the innermost open span on this thread and records it.
///
/// A stray `exit` with no open span is ignored (never panics), so
/// interleaved instrumentation cannot poison the collector.
pub fn exit() {
    let Some((name, start)) = STACK.with(|stack| stack.borrow_mut().pop()) else {
        return;
    };
    let depth = STACK.with(|stack| stack.borrow().len());
    let end = Instant::now();
    // Floor both endpoints against the shared epoch and subtract, rather
    // than truncating the duration separately: flooring is monotonic, so
    // nested spans stay contained in their parents even at microsecond
    // resolution.
    let start_us = u64::try_from(start.duration_since(epoch()).as_micros()).unwrap_or(u64::MAX);
    let end_us = u64::try_from(end.duration_since(epoch()).as_micros()).unwrap_or(u64::MAX);
    let record = SpanRecord {
        name,
        tid: tid(),
        depth,
        start_us,
        dur_us: end_us.saturating_sub(start_us),
    };
    COLLECTOR.lock().expect("span collector lock").push(record);
}

/// RAII handle returned by [`span`] / [`span_with`]; closes the span on
/// drop. Inert (and free) when tracing was disabled at creation.
#[must_use = "a span guard closes its span when dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            exit();
        }
    }
}

/// Opens a named span, closed when the returned guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        active: enter(name),
    }
}

/// Like [`span`] but the (allocating) name is only built when tracing is
/// enabled — use for `format!`-style dynamic labels on paths where the
/// disabled cost must stay at one atomic load.
pub fn span_with<F: FnOnce() -> String>(name: F) -> SpanGuard {
    if !crate::is_enabled() {
        return SpanGuard { active: false };
    }
    SpanGuard {
        active: enter(name()),
    }
}

/// Copies every finished span out of the collector (records stay).
pub fn snapshot() -> Vec<SpanRecord> {
    COLLECTOR.lock().expect("span collector lock").clone()
}

/// Number of finished spans currently collected.
pub fn count() -> usize {
    COLLECTOR.lock().expect("span collector lock").len()
}

/// Drops every collected span (open spans on thread stacks survive).
pub fn clear() {
    COLLECTOR.lock().expect("span collector lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = crate::test_lock();
        crate::set_enabled(false);
        clear();
        {
            let _a = span("a");
            let _b = span_with(|| unreachable!("name closure must not run when disabled"));
        }
        assert_eq!(count(), 0);
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        clear();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        crate::set_enabled(false);
        let spans = snapshot();
        assert_eq!(spans.len(), 2);
        // Spans are recorded at exit, so the inner span closes first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert!(spans[1].start_us <= spans[0].start_us);
        assert!(spans[0].end_us() <= spans[1].end_us());
        assert_eq!(spans[0].tid, spans[1].tid);
        clear();
    }

    #[test]
    fn stray_exit_is_ignored() {
        let _lock = crate::test_lock();
        crate::set_enabled(true);
        clear();
        exit();
        assert_eq!(count(), 0);
        crate::set_enabled(false);
    }
}
