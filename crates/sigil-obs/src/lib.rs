//! Observability for the Sigil profiler *itself*.
//!
//! The paper spends two figures characterizing the profiler's own
//! overhead (Fig. 4/5 slowdown, Fig. 6 memory); this crate gives the
//! reproduction the same introspective power at runtime. It has **no
//! external dependencies** (the build environment is offline) and
//! provides three pillars:
//!
//! 1. **Span tracing** ([`span`]) — RAII phase spans on thread-local
//!    span stacks, collected into a global buffer and exportable as a
//!    Chrome trace-event JSON file ([`chrome`]) loadable in
//!    `chrome://tracing` or Perfetto.
//! 2. **Metrics** ([`metrics`]) — a global registry of counters,
//!    gauges, and fixed-bucket histograms with a JSON snapshot format
//!    written alongside results.
//! 3. **Leveled logging** ([`log`] and the [`obs_warn!`], [`obs_info!`],
//!    [`obs_debug!`] macros) — a global level gate that compiles down to
//!    one relaxed atomic load when the level is off.
//! 4. **Time series and live streaming** ([`timeseries`], [`stream`]) —
//!    fixed-resolution bucketed counters/gauges since the trace epoch,
//!    and a background [`MetricsStreamer`] appending delta snapshots of
//!    the metrics registry as tail-able JSONL at a fixed interval.
//!
//! Tracing and metrics are **disabled by default** and cost one relaxed
//! atomic load per instrumentation site until [`set_enabled`] turns them
//! on; the profiler hot path (per-byte shadow accesses) is deliberately
//! *not* instrumented — phase boundaries are.
//!
//! # Example
//!
//! ```
//! sigil_obs::set_enabled(true);
//! {
//!     let _phase = sigil_obs::span("phase");
//!     let _inner = sigil_obs::span("inner");
//!     sigil_obs::metrics::counter("work.items").add(3);
//! }
//! let trace = sigil_obs::chrome::export_chrome_trace();
//! assert!(trace.contains("\"traceEvents\""));
//! sigil_obs::set_enabled(false);
//! # sigil_obs::span::clear();
//! # sigil_obs::metrics::clear();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod log;
pub mod metrics;
pub mod span;
pub mod stream;
pub mod timeseries;

pub use chrome::{export_chrome_trace, write_chrome_trace};
pub use log::Level;
pub use span::{span, span_with, SpanGuard, SpanRecord};
pub use stream::MetricsStreamer;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Globally enables or disables span collection and metric recording.
///
/// Logging is gated separately by [`log::set_level`]. Flip this once at
/// startup (before instrumented work begins): handles created while
/// disabled are inert no-ops even if collection is enabled later.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether span collection and metric recording are enabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
