//! Leveled structured logging with a global level gate.
//!
//! The [`obs_warn!`], [`obs_info!`], and [`obs_debug!`] macros (exported
//! at the crate root) expand to a single inlined relaxed atomic load
//! plus a branch; when the requested level is above the global level the
//! `format_args!` machinery is never touched, so a disabled log line
//! costs nanoseconds. Lines go to stderr as
//! `[  <uptime>s LEVEL <module::path>] message`.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered: `Off < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is logged.
    Off = 0,
    /// Problems worth surfacing even in quiet runs.
    Warn = 1,
    /// Progress and phase reporting (the CLI default).
    Info = 2,
    /// Chatty diagnostics.
    Debug = 3,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Off => "off",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        })
    }
}

/// Error for an unrecognized level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError(pub String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown log level `{}` (off|warn|info|debug)", self.0)
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Level::Off),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(ParseLevelError(other.to_owned())),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the global log level (library default: [`Level::Warn`]).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Release);
}

/// The current global log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a record at `at` would be emitted. This is the macro gate —
/// one relaxed load and a compare.
#[inline]
pub fn enabled(at: Level) -> bool {
    at != Level::Off && (at as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Emits one log line to stderr. Called by the `obs_*!` macros after the
/// [`enabled`] gate passed; not intended for direct use.
pub fn emit(at: Level, target: &str, args: fmt::Arguments<'_>) {
    let uptime = crate::span::epoch().elapsed().as_secs_f64();
    eprintln!("[{uptime:>9.3}s {at:>5} {target}] {args}");
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("off".parse::<Level>(), Ok(Level::Off));
        assert_eq!("debug".parse::<Level>(), Ok(Level::Debug));
        assert!("verbose".parse::<Level>().is_err());
        assert!(
            Level::Off < Level::Warn && Level::Warn < Level::Info && Level::Info < Level::Debug
        );
    }

    #[test]
    fn gate_respects_global_level() {
        let _lock = crate::test_lock();
        set_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Warn));
        assert!(!enabled(Level::Off), "Off is never emitted");
        set_level(Level::Warn);
    }

    #[test]
    fn macros_build_no_args_when_gated_off() {
        let _lock = crate::test_lock();
        set_level(Level::Off);
        let mut evaluated = false;
        obs_warn!("{}", {
            evaluated = true;
            "x"
        });
        assert!(!evaluated, "format args must not be evaluated when off");
        set_level(Level::Warn);
    }
}
