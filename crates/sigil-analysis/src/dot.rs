//! Graphviz export of control data-flow graphs (for rendering the
//! paper's Figure 1 style diagrams).

use std::fmt::Write as _;

use crate::cdfg::Cdfg;

/// Renders `cdfg` in Graphviz DOT format: call edges solid, data edges
/// dashed and labelled `unique/total` bytes — the visual convention of
/// the paper's Figure 1.
pub fn to_dot(cdfg: &Cdfg) -> String {
    let mut out = String::from("digraph cdfg {\n  node [shape=box];\n");
    for node in cdfg.nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\ncalls={} ops={}\"];",
            node.ctx.0,
            node.name,
            node.calls,
            node.costs.ops_total()
        );
        if let Some(parent) = node.parent {
            let _ = writeln!(out, "  n{} -> n{};", parent.0, node.ctx.0);
        }
    }
    for edge in cdfg.data_edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=dashed, label=\"{}/{}\"];",
            edge.producer.0,
            edge.consumer.0,
            edge.unique_bytes,
            edge.total_bytes()
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::Engine;

    #[test]
    fn dot_output_contains_nodes_and_both_edge_styles() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.scoped_named("w", |e| e.write(0x0, 4));
            e.scoped_named("r", |e| e.read(0x0, 4));
        });
        let (p, s) = engine.finish_with_symbols();
        let cdfg = Cdfg::from_profile(&p.into_profile(s));
        let dot = to_dot(&cdfg);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"main"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("\"4/4\""));
        assert!(dot.trim_end().ends_with('}'));
    }
}
