//! Mapping dependency chains onto cores (paper §IV-C).
//!
//! "Besides highlighting the theoretical parallelism, we can use critical
//! path information to build an optimal schedule for the program. The
//! functions in parallel paths in a program can be mapped onto multiple
//! cores such that dependencies are respected. A software developer may
//! have a fixed number of scheduling slots based on the number of
//! available cores."
//!
//! This module implements that mapping as a classic list scheduler over
//! the fragment dependency graph: fragments become ready when all their
//! predecessors finish, and each ready fragment is placed on the core
//! that can start it earliest. The resulting makespan interpolates
//! between the serial length (1 core) and the critical-path length
//! (unbounded cores).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sigil_core::Profile;
use sigil_trace::CallNumber;

use crate::critical_path::{CriticalPathError, DependencyGraph};

/// One fragment placed on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Index of the fragment in the dependency graph.
    pub fragment: usize,
    /// The dynamic call the fragment belongs to.
    pub call: CallNumber,
    /// Core the fragment runs on.
    pub core: usize,
    /// Start time in retired-op units.
    pub start: u64,
    /// End time in retired-op units.
    pub end: u64,
}

/// A complete schedule of the execution onto `cores` cores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Number of cores scheduled onto.
    pub cores: usize,
    /// Every fragment placement, in start-time order.
    pub placements: Vec<Placement>,
    /// Total retired ops (work).
    pub serial_ops: u64,
    /// Time the last fragment finishes.
    pub makespan: u64,
}

impl Schedule {
    /// Speedup over serial execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.serial_ops as f64 / self.makespan as f64
        }
    }

    /// Fraction of core-time doing useful work, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.makespan.saturating_mul(self.cores as u64);
        if capacity == 0 {
            1.0
        } else {
            self.serial_ops as f64 / capacity as f64
        }
    }

    /// Busy ops per core.
    pub fn per_core_load(&self) -> Vec<u64> {
        let mut load = vec![0u64; self.cores];
        for p in &self.placements {
            load[p.core] += p.end - p.start;
        }
        load
    }
}

/// List-schedules the dependency graph of `profile`'s event file onto
/// `cores` cores. Fragments of the same dynamic call stay ordered (they
/// are chained in the graph); independent fragments fill idle cores.
///
/// # Example
///
/// ```
/// use sigil_analysis::schedule::schedule;
/// use sigil_core::{SigilConfig, SigilProfiler};
/// use sigil_trace::{Engine, OpClass};
///
/// let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
/// engine.scoped_named("main", |e| {
///     e.scoped_named("left", |e| e.op(OpClass::IntArith, 1000));
///     e.scoped_named("right", |e| e.op(OpClass::IntArith, 1000));
/// });
/// let (p, s) = engine.finish_with_symbols();
/// let profile = p.into_profile(s);
///
/// // Two independent kernels nearly halve on two cores.
/// let two = schedule(&profile, 2).expect("events recorded");
/// assert!(two.speedup() > 1.8);
/// ```
///
/// # Errors
///
/// Fails if the profile has no event file or no compute work.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn schedule(profile: &Profile, cores: usize) -> Result<Schedule, CriticalPathError> {
    assert!(cores > 0, "need at least one core");
    let events = profile
        .events
        .as_ref()
        .ok_or(CriticalPathError::MissingEvents)?;
    let graph = DependencyGraph::from_event_file(events);
    if graph.serial_ops() == 0 {
        return Err(CriticalPathError::EmptyEventFile);
    }
    let nodes = graph.nodes();

    // Earliest-ready time per fragment: when every predecessor has
    // finished *in the schedule* (not the unbounded-core graph times).
    let mut sched_finish: Vec<u64> = vec![0; nodes.len()];
    let mut core_free: Vec<u64> = vec![0; cores];
    let mut placements = Vec::with_capacity(nodes.len());
    // Keep fragments of one call on a stable core when possible: map
    // call → last core used.
    let mut call_core: HashMap<CallNumber, usize> = HashMap::new();

    // Nodes are already in a valid topological order (creation order):
    // every predecessor index is smaller.
    for (idx, node) in nodes.iter().enumerate() {
        let ready = node
            .order_pred
            .map_or(0, |p| sched_finish[p])
            .max(node.data_pred.map_or(0, |p| sched_finish[p]));
        // Prefer the call's previous core (locality), else the core that
        // frees up first.
        let preferred = call_core.get(&node.call).copied();
        let core = preferred
            .filter(|&c| core_free[c] <= ready)
            .unwrap_or_else(|| {
                core_free
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &free)| free)
                    .map(|(i, _)| i)
                    .expect("at least one core")
            });
        let start = ready.max(core_free[core]);
        let end = start + node.self_ops;
        core_free[core] = end;
        sched_finish[idx] = end;
        call_core.insert(node.call, core);
        if node.self_ops > 0 {
            placements.push(Placement {
                fragment: idx,
                call: node.call,
                core,
                start,
                end,
            });
        }
    }
    placements.sort_by_key(|p| (p.start, p.core));
    let makespan = placements.iter().map(|p| p.end).max().unwrap_or(0);
    Ok(Schedule {
        cores,
        placements,
        serial_ops: graph.serial_ops(),
        makespan,
    })
}

/// Sweeps core counts, returning `(cores, speedup)` pairs — the
/// scaling curve a developer would use to pick a slot count.
///
/// # Errors
///
/// Fails if the profile has no event file or no compute work.
pub fn scaling_curve(
    profile: &Profile,
    core_counts: &[usize],
) -> Result<Vec<(usize, f64)>, CriticalPathError> {
    core_counts
        .iter()
        .map(|&c| schedule(profile, c).map(|s| (c, s.speedup())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::CriticalPath;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    fn fanout_profile(workers: usize) -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
        engine.scoped_named("main", |e| {
            for w in 0..workers {
                e.scoped_named(&format!("worker{w}"), |e| {
                    e.op(OpClass::IntArith, 1000);
                });
            }
        });
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn one_core_is_serial() {
        let profile = fanout_profile(4);
        let s = schedule(&profile, 1).expect("events");
        assert_eq!(s.makespan, s.serial_ops);
        assert!((s.speedup() - 1.0).abs() < 1e-9);
        assert!((s.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_cores_never_hurt() {
        let profile = fanout_profile(6);
        let mut last = 0.0;
        for cores in [1, 2, 4, 8] {
            let s = schedule(&profile, cores).expect("events");
            assert!(
                s.speedup() >= last - 1e-9,
                "speedup regressed at {cores} cores"
            );
            last = s.speedup();
        }
    }

    #[test]
    fn unbounded_cores_approach_critical_path() {
        let profile = fanout_profile(4);
        let cp = CriticalPath::from_profile(&profile).expect("events");
        let s = schedule(&profile, 64).expect("events");
        assert!(
            s.makespan <= cp.length_ops + cp.serial_ops / 100 + 1,
            "list schedule ({}) should approach the critical path ({})",
            s.makespan,
            cp.length_ops
        );
        assert!((s.speedup() - cp.max_parallelism()).abs() / cp.max_parallelism() < 0.05);
    }

    #[test]
    fn dependencies_are_respected() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
        engine.scoped_named("main", |e| {
            e.scoped_named("producer", |e| {
                e.op(OpClass::IntArith, 500);
                e.write(0x0, 8);
            });
            e.scoped_named("consumer", |e| {
                e.read(0x0, 8);
                e.op(OpClass::IntArith, 500);
            });
        });
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        let sched = schedule(&profile, 4).expect("events");
        // With a hard dependency, 4 cores cannot beat the 2-fragment
        // chain: makespan >= 1000.
        assert!(sched.makespan >= 1000, "got {}", sched.makespan);
        // Placements never overlap on a core.
        for core in 0..sched.cores {
            let mut spans: Vec<(u64, u64)> = sched
                .placements
                .iter()
                .filter(|p| p.core == core)
                .map(|p| (p.start, p.end))
                .collect();
            spans.sort_unstable();
            for pair in spans.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlap on core {core}");
            }
        }
    }

    #[test]
    fn per_core_load_sums_to_work() {
        let profile = fanout_profile(5);
        let s = schedule(&profile, 3).expect("events");
        let total: u64 = s.per_core_load().iter().sum();
        assert_eq!(total, s.serial_ops);
    }

    #[test]
    fn scaling_curve_is_ordered() {
        let profile = fanout_profile(8);
        let curve = scaling_curve(&profile, &[1, 2, 4]).expect("events");
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1 <= curve[2].1 + 1e-9);
    }

    #[test]
    fn requires_event_file() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("f", |e| e.op(OpClass::IntArith, 1));
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        assert!(matches!(
            schedule(&profile, 2),
            Err(CriticalPathError::MissingEvents)
        ));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let profile = fanout_profile(1);
        let _ = schedule(&profile, 0);
    }
}
