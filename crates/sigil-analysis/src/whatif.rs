//! Whole-program offload estimation.
//!
//! The paper notes that "Sigil's profile has been used along with an
//! assumed execution model to measure overall gains with offloaded
//! functions" (§V, citing the authors' *Metrics for early-stage modeling
//! of many-accelerator architectures*). This module implements that
//! execution model: pick accelerator candidates, assume a computational
//! speedup for each, charge their boundary communication to the SoC bus,
//! and estimate the whole-program speedup (Amdahl with explicit
//! communication).

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;
use sigil_core::Profile;

use crate::breakeven::BusModel;
use crate::cdfg::Cdfg;
use crate::inclusive::inclusive_table;

/// One candidate offload: a calltree context (merged with its sub-tree)
/// and the computational speedup its accelerator is assumed to deliver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadScenario {
    /// The context to offload (with its whole sub-tree).
    pub ctx: ContextId,
    /// Assumed accelerator speedup over software (> 0).
    pub accel_speedup: f64,
}

/// The estimate for one scenario plus the program-level roll-up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadEstimate {
    /// Estimated cycles of the unmodified program.
    pub baseline_cycles: u64,
    /// Estimated cycles with every scenario offloaded.
    pub offloaded_cycles: f64,
    /// Per-scenario `(software cycles, accelerated cycles incl. bus)`.
    pub per_scenario: Vec<(f64, f64)>,
}

impl OffloadEstimate {
    /// Whole-program speedup (baseline / offloaded).
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.offloaded_cycles.max(1e-9)
    }
}

/// Errors from [`estimate_offload`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WhatIfError {
    /// Two scenarios overlap (one context inside another's sub-tree).
    OverlappingScenarios {
        /// The contained context.
        inner: ContextId,
        /// The containing context.
        outer: ContextId,
    },
    /// A scenario's speedup was zero or negative.
    InvalidSpeedup {
        /// The offending context.
        ctx: ContextId,
    },
}

impl std::fmt::Display for WhatIfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhatIfError::OverlappingScenarios { inner, outer } => {
                write!(f, "scenario {inner} lies inside scenario {outer}")
            }
            WhatIfError::InvalidSpeedup { ctx } => {
                write!(f, "scenario {ctx} has a non-positive speedup")
            }
        }
    }
}

impl std::error::Error for WhatIfError {}

/// Estimates the whole-program effect of offloading `scenarios` under
/// `bus`.
///
/// Each offloaded sub-tree's software time is replaced by
/// `t_sw / accel_speedup + t_comm_in + t_comm_out` — the model behind
/// the paper's breakeven metric: a speedup exactly equal to the
/// candidate's breakeven yields overall speedup 1.0.
///
/// # Example
///
/// ```
/// use sigil_analysis::breakeven::BusModel;
/// use sigil_analysis::whatif::{estimate_offload, OffloadScenario};
/// use sigil_analysis::Cdfg;
/// use sigil_core::{SigilConfig, SigilProfiler};
/// use sigil_trace::{Engine, OpClass};
///
/// let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
/// engine.scoped_named("main", |e| {
///     e.scoped_named("kernel", |e| e.op(OpClass::FloatArith, 100_000));
///     e.op(OpClass::IntArith, 1_000);
/// });
/// let (p, s) = engine.finish_with_symbols();
/// let profile = p.into_profile(s);
///
/// let kernel = Cdfg::from_profile(&profile)
///     .nodes().iter().find(|n| n.name == "kernel").unwrap().ctx;
/// let est = estimate_offload(
///     &profile,
///     &[OffloadScenario { ctx: kernel, accel_speedup: 100.0 }],
///     &BusModel::soc_default(),
/// ).unwrap();
/// assert!(est.speedup() > 10.0, "kernel dominates, so the program flies");
/// ```
///
/// # Errors
///
/// Fails if scenarios overlap or a speedup is non-positive.
pub fn estimate_offload(
    profile: &Profile,
    scenarios: &[OffloadScenario],
    bus: &BusModel,
) -> Result<OffloadEstimate, WhatIfError> {
    let cdfg = Cdfg::from_profile(profile);
    for (i, a) in scenarios.iter().enumerate() {
        if a.accel_speedup <= 0.0 {
            return Err(WhatIfError::InvalidSpeedup { ctx: a.ctx });
        }
        for b in scenarios.iter().skip(i + 1) {
            if cdfg.is_in_subtree(a.ctx, b.ctx) {
                return Err(WhatIfError::OverlappingScenarios {
                    inner: a.ctx,
                    outer: b.ctx,
                });
            }
            if cdfg.is_in_subtree(b.ctx, a.ctx) {
                return Err(WhatIfError::OverlappingScenarios {
                    inner: b.ctx,
                    outer: a.ctx,
                });
            }
        }
    }

    let inclusive = inclusive_table(&cdfg);
    let model = profile.callgrind.cycle_model;
    let baseline = profile.callgrind.total_cycles();
    let mut offloaded = baseline as f64;
    let mut per_scenario = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        let inc = &inclusive[s.ctx.index()];
        let t_sw = model.estimate(&inc.costs) as f64;
        let t_accel = t_sw / s.accel_speedup
            + bus.transfer_cycles(inc.comm_in_unique)
            + bus.transfer_cycles(inc.comm_out_unique);
        offloaded = offloaded - t_sw + t_accel;
        per_scenario.push((t_sw, t_accel));
    }
    Ok(OffloadEstimate {
        baseline_cycles: baseline,
        offloaded_cycles: offloaded,
        per_scenario,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakeven::breakeven_for;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    fn profile() -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.write(0x0, 64);
            e.scoped_named("kernel", |e| {
                e.read(0x0, 64);
                e.op(OpClass::FloatArith, 90_000);
                e.write(0x100, 64);
            });
            e.read(0x100, 64);
            e.op(OpClass::IntArith, 10_000);
        });
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    fn kernel_ctx(profile: &Profile) -> ContextId {
        let cdfg = Cdfg::from_profile(profile);
        cdfg.nodes()
            .iter()
            .find(|n| n.name == "kernel")
            .expect("kernel")
            .ctx
    }

    #[test]
    fn amdahl_shape() {
        let profile = profile();
        let ctx = kernel_ctx(&profile);
        let bus = BusModel::soc_default();
        let est = estimate_offload(
            &profile,
            &[OffloadScenario {
                ctx,
                accel_speedup: 10.0,
            }],
            &bus,
        )
        .expect("valid scenario");
        // Kernel is ~90% of cycles: 10x on it gives roughly 1/(0.1+0.09)
        // ≈ 5x, definitely between 3x and 10x.
        assert!(
            est.speedup() > 3.0 && est.speedup() < 10.0,
            "{}",
            est.speedup()
        );
    }

    #[test]
    fn speedup_one_at_breakeven() {
        let profile = profile();
        let ctx = kernel_ctx(&profile);
        let bus = BusModel::soc_default();
        let cdfg = Cdfg::from_profile(&profile);
        let inclusive = inclusive_table(&cdfg);
        let cycles = profile
            .callgrind
            .cycle_model
            .estimate(&inclusive[ctx.index()].costs);
        let breakeven = breakeven_for(&inclusive[ctx.index()], cycles, &bus);
        let est = estimate_offload(
            &profile,
            &[OffloadScenario {
                ctx,
                accel_speedup: breakeven,
            }],
            &bus,
        )
        .expect("valid scenario");
        assert!(
            (est.speedup() - 1.0).abs() < 1e-6,
            "breakeven must be the break-even point, got {}",
            est.speedup()
        );
    }

    #[test]
    fn infinite_accelerator_leaves_communication() {
        let profile = profile();
        let ctx = kernel_ctx(&profile);
        let bus = BusModel::soc_default();
        let est = estimate_offload(
            &profile,
            &[OffloadScenario {
                ctx,
                accel_speedup: 1e12,
            }],
            &bus,
        )
        .expect("valid scenario");
        let (_, t_accel) = est.per_scenario[0];
        let expected_comm = bus.transfer_cycles(64) + bus.transfer_cycles(64);
        assert!((t_accel - expected_comm).abs() < 1.0);
    }

    #[test]
    fn overlapping_scenarios_rejected() {
        let profile = profile();
        let cdfg = Cdfg::from_profile(&profile);
        let main = cdfg
            .nodes()
            .iter()
            .find(|n| n.name == "main")
            .expect("main")
            .ctx;
        let kernel = kernel_ctx(&profile);
        let err = estimate_offload(
            &profile,
            &[
                OffloadScenario {
                    ctx: main,
                    accel_speedup: 2.0,
                },
                OffloadScenario {
                    ctx: kernel,
                    accel_speedup: 2.0,
                },
            ],
            &BusModel::soc_default(),
        )
        .unwrap_err();
        assert!(matches!(err, WhatIfError::OverlappingScenarios { .. }));
    }

    #[test]
    fn non_positive_speedup_rejected() {
        let profile = profile();
        let err = estimate_offload(
            &profile,
            &[OffloadScenario {
                ctx: kernel_ctx(&profile),
                accel_speedup: 0.0,
            }],
            &BusModel::soc_default(),
        )
        .unwrap_err();
        assert!(matches!(err, WhatIfError::InvalidSpeedup { .. }));
    }

    #[test]
    fn empty_scenario_list_is_identity() {
        let profile = profile();
        let est = estimate_offload(&profile, &[], &BusModel::soc_default()).expect("empty ok");
        assert!((est.speedup() - 1.0).abs() < 1e-12);
    }
}
