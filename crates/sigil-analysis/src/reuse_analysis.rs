//! Reuse post-processing for Figures 8–12.

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;
use sigil_core::{LifetimeHistogram, Profile};

/// One row of the per-function reuse ranking (Figure 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseRow {
    /// The context.
    pub ctx: ContextId,
    /// Display label: the function name, suffixed with `(k)` when the
    /// same function appears through several contexts — matching the
    /// paper's `conv_gen(1)` convention.
    pub label: String,
    /// Records (data bytes) reused at least once in this context.
    pub reused_bytes: u64,
    /// Total byte records attributed to this context.
    pub total_bytes: u64,
    /// Average reuse lifetime of a reused byte, in retired ops.
    pub avg_lifetime: f64,
}

/// Ranks contexts by their contribution to total data reuse, descending
/// (the paper "sort\[s\] the functions … based on their contribution to
/// the total amount of data re-use").
///
/// Returns `None` when the profile was not collected in reuse mode.
pub fn function_reuse_rows(profile: &Profile) -> Option<Vec<ReuseRow>> {
    use std::collections::HashMap;
    let _span = sigil_obs::span("analysis:reuse_rows");
    let reuse = profile.reuse.as_ref()?;
    let tree = &profile.callgrind.tree;
    let symbols = profile.symbols();

    // Count how many communicating contexts share each function name, to
    // decide whether the `(k)` suffix is needed.
    let mut name_counts: HashMap<String, u32> = HashMap::new();
    for row in reuse {
        if row.total_bytes() == 0 {
            continue;
        }
        if let Some(func) = tree.node(row.ctx).func {
            let name = symbols
                .get_name(func)
                .map_or_else(|| func.to_string(), str::to_owned);
            *name_counts.entry(name).or_insert(0) += 1;
        }
    }

    let mut seen: HashMap<String, u32> = HashMap::new();
    let mut rows: Vec<ReuseRow> = reuse
        .iter()
        .filter(|row| row.total_bytes() > 0)
        .filter_map(|row| {
            let func = tree.node(row.ctx).func?;
            let base = symbols
                .get_name(func)
                .map_or_else(|| func.to_string(), str::to_owned);
            let occurrence = seen.entry(base.clone()).or_insert(0);
            *occurrence += 1;
            let label = if name_counts.get(&base).copied().unwrap_or(0) > 1 {
                format!("{base}({occurrence})")
            } else {
                base
            };
            Some(ReuseRow {
                ctx: row.ctx,
                label,
                reused_bytes: row.reused_bytes,
                total_bytes: row.total_bytes(),
                avg_lifetime: row.avg_reused_lifetime(),
            })
        })
        .collect();
    rows.sort_by(|a, b| {
        b.reused_bytes
            .cmp(&a.reused_bytes)
            .then_with(|| a.label.cmp(&b.label))
    });
    Some(rows)
}

/// Whole-program reuse-count breakdown as percentages `(0, 1-9, >9)` of
/// byte records (Figure 8). `None` without reuse mode or with no data.
pub fn reuse_breakdown_percent(profile: &Profile) -> Option<[f64; 3]> {
    let (zero, low, high) = profile.reuse_breakdown()?;
    let total = zero + low + high;
    if total == 0 {
        return None;
    }
    let pct = |x: u64| 100.0 * x as f64 / total as f64;
    Some([pct(zero), pct(low), pct(high)])
}

/// The merged lifetime histogram of the function named `name`
/// (Figures 10/11). `None` without reuse mode or if the function has no
/// reuse records.
pub fn lifetime_histogram_of(profile: &Profile, name: &str) -> Option<LifetimeHistogram> {
    let merged = profile.context_reuse_by_name(name)?;
    if merged.histogram.total() == 0 {
        return None;
    }
    Some(merged.histogram)
}

/// Line-granularity reuse breakdown as percentages over the Figure 12
/// buckets. `None` without line mode or with no touched lines.
pub fn line_breakdown_percent(profile: &Profile) -> Option<[f64; 5]> {
    let lines = profile.lines.as_ref()?;
    let total: u64 = lines.buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let mut out = [0.0; 5];
    for (i, &count) in lines.buckets.iter().enumerate() {
        out[i] = 100.0 * count as f64 / total as f64;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    fn reuse_profile() -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(
            SigilConfig::default().with_reuse_mode().with_line_mode(64),
        ));
        engine.scoped_named("main", |e| {
            // `hot` re-reads its buffer many times (high reuse, long
            // lifetimes); `cold` reads each byte once.
            e.scoped_named("prep", |e| {
                e.write(0x0, 32);
                e.write(0x100, 32);
            });
            e.scoped_named("hot", |e| {
                for _ in 0..12 {
                    e.read(0x0, 32);
                    e.op(OpClass::FloatArith, 500);
                }
            });
            e.scoped_named("cold", |e| e.read(0x100, 32));
        });
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn rows_rank_hot_function_first() {
        let rows = function_reuse_rows(&reuse_profile()).expect("reuse mode");
        assert_eq!(rows[0].label, "hot");
        assert_eq!(rows[0].reused_bytes, 32);
        assert!(rows[0].avg_lifetime > 0.0);
        let cold = rows.iter().find(|r| r.label == "cold").expect("cold row");
        assert_eq!(cold.reused_bytes, 0);
        assert_eq!(cold.total_bytes, 32);
    }

    #[test]
    fn breakdown_percentages_sum_to_hundred() {
        let pct = reuse_breakdown_percent(&reuse_profile()).expect("reuse data");
        let sum: f64 = pct.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(pct[2] > 0.0, ">9 reuse bucket populated by `hot`");
    }

    #[test]
    fn histogram_extraction_by_name() {
        let hist = lifetime_histogram_of(&reuse_profile(), "hot").expect("hot reuses");
        assert_eq!(hist.total(), 32);
        assert!(hist.max_lifetime_bin().expect("nonempty") >= 5000);
        assert!(lifetime_histogram_of(&reuse_profile(), "cold").is_none());
        assert!(lifetime_histogram_of(&reuse_profile(), "missing").is_none());
    }

    #[test]
    fn line_breakdown_covers_buckets() {
        let pct = line_breakdown_percent(&reuse_profile()).expect("line mode");
        let sum: f64 = pct.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn analyses_require_matching_modes() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("f", |e| e.op(OpClass::IntArith, 1));
        let (p, s) = engine.finish_with_symbols();
        let plain = p.into_profile(s);
        assert!(function_reuse_rows(&plain).is_none());
        assert!(reuse_breakdown_percent(&plain).is_none());
        assert!(line_breakdown_percent(&plain).is_none());
    }

    #[test]
    fn repeated_contexts_get_numbered_labels() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_reuse_mode()));
        engine.scoped_named("main", |e| {
            e.scoped_named("p", |e| {
                e.scoped_named("conv_gen", |e| {
                    e.write(0x0, 8);
                    e.read(0x0, 8);
                });
            });
            e.scoped_named("q", |e| {
                e.scoped_named("conv_gen", |e| {
                    e.write(0x100, 8);
                    e.read(0x100, 8);
                });
            });
        });
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        let rows = function_reuse_rows(&profile).expect("reuse mode");
        let labels: Vec<&str> = rows
            .iter()
            .filter(|r| r.label.starts_with("conv_gen"))
            .map(|r| r.label.as_str())
            .collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"conv_gen(1)"));
        assert!(labels.contains(&"conv_gen(2)"));
    }
}
