//! The control data-flow graph (paper Figure 1): a calltree whose nodes
//! are function contexts, with call edges (bold) and data-dependency
//! edges (dashed) weighted by communicated bytes.

use serde::{Deserialize, Serialize};
use sigil_callgrind::{ContextId, CostVec};
use sigil_core::{CommEdge, CommStats, Profile};
use sigil_trace::FunctionId;

/// One CDFG node: a function context with its exclusive costs and
/// communication totals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdfgNode {
    /// The context this node represents.
    pub ctx: ContextId,
    /// The function executing in this context (`None` for the root).
    pub func: Option<FunctionId>,
    /// Resolved name (`<root>` for the root).
    pub name: String,
    /// Parent context.
    pub parent: Option<ContextId>,
    /// Children, in first-call order.
    pub children: Vec<ContextId>,
    /// Dynamic calls into this context.
    pub calls: u64,
    /// Exclusive costs.
    pub costs: CostVec,
    /// Communication totals.
    pub comm: CommStats,
    /// Whether this context is an opaque system call.
    pub is_syscall: bool,
}

/// The control data-flow graph of one profile.
///
/// # Example
///
/// ```
/// use sigil_core::{SigilConfig, SigilProfiler};
/// use sigil_trace::Engine;
/// use sigil_analysis::Cdfg;
///
/// let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
/// engine.scoped_named("main", |e| {
///     e.scoped_named("a", |e| e.write(0x0, 8));
///     e.scoped_named("b", |e| e.read(0x0, 8));
/// });
/// let (p, s) = engine.finish_with_symbols();
/// let cdfg = Cdfg::from_profile(&p.into_profile(s));
/// assert_eq!(cdfg.data_edges().len(), 1);
/// assert_eq!(cdfg.data_edges()[0].unique_bytes, 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdfg {
    nodes: Vec<CdfgNode>,
    data_edges: Vec<CommEdge>,
}

impl Cdfg {
    /// Builds the CDFG from a finished profile.
    pub fn from_profile(profile: &Profile) -> Self {
        let _span = sigil_obs::span("analysis:cdfg");
        let symbols = profile.symbols();
        let nodes = profile
            .callgrind
            .tree
            .iter()
            .map(|(ctx, node)| CdfgNode {
                ctx,
                func: node.func,
                name: node.func.map_or_else(
                    || "<root>".to_owned(),
                    |f| {
                        symbols
                            .get_name(f)
                            .map_or_else(|| f.to_string(), str::to_owned)
                    },
                ),
                parent: node.parent,
                children: node.children.clone(),
                calls: node.calls,
                costs: node.costs,
                comm: profile.context_comm(ctx),
                is_syscall: node.is_syscall,
            })
            .collect();
        Cdfg {
            nodes,
            data_edges: profile.edges.clone(),
        }
    }

    /// All nodes, indexed by raw context id (root first).
    pub fn nodes(&self) -> &[CdfgNode] {
        &self.nodes
    }

    /// Borrow one node.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn node(&self, ctx: ContextId) -> &CdfgNode {
        &self.nodes[ctx.index()]
    }

    /// The data-dependency edges.
    pub fn data_edges(&self) -> &[CommEdge] {
        &self.data_edges
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Iterates the contexts of the subtree rooted at `ctx` (inclusive),
    /// in depth-first order.
    pub fn subtree(&self, ctx: ContextId) -> Vec<ContextId> {
        let mut out = Vec::new();
        let mut work = vec![ctx];
        while let Some(c) = work.pop() {
            out.push(c);
            work.extend(self.node(c).children.iter().copied().rev());
        }
        out
    }

    /// Whether `ancestor` is `ctx` itself or one of its calltree
    /// ancestors.
    pub fn is_in_subtree(&self, ctx: ContextId, ancestor: ContextId) -> bool {
        let mut cursor = Some(ctx);
        while let Some(c) = cursor {
            if c == ancestor {
                return true;
            }
            cursor = self.node(c).parent;
        }
        false
    }

    /// Depth of `ctx` (root = 0).
    pub fn depth(&self, ctx: ContextId) -> usize {
        let mut depth = 0;
        let mut cursor = self.node(ctx).parent;
        while let Some(c) = cursor {
            depth += 1;
            cursor = self.node(c).parent;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    fn sample_cdfg() -> Cdfg {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.scoped_named("a", |e| {
                e.op(OpClass::IntArith, 10);
                e.scoped_named("c", |e| e.write(0x0, 4));
            });
            e.scoped_named("b", |e| e.read(0x0, 4));
        });
        let (p, s) = engine.finish_with_symbols();
        Cdfg::from_profile(&p.into_profile(s))
    }

    #[test]
    fn nodes_mirror_calltree() {
        let cdfg = sample_cdfg();
        // root + main + a + c + b
        assert_eq!(cdfg.len(), 5);
        let names: Vec<&str> = cdfg.nodes().iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"<root>"));
        assert!(names.contains(&"main"));
        assert!(names.contains(&"c"));
    }

    #[test]
    fn subtree_is_depth_first_and_inclusive() {
        let cdfg = sample_cdfg();
        let main = cdfg
            .nodes()
            .iter()
            .find(|n| n.name == "main")
            .expect("main");
        let sub = cdfg.subtree(main.ctx);
        assert_eq!(sub.len(), 4); // main, a, c, b
        assert_eq!(sub[0], main.ctx);
        let names: Vec<&str> = sub.iter().map(|&c| cdfg.node(c).name.as_str()).collect();
        assert_eq!(names, vec!["main", "a", "c", "b"]);
    }

    #[test]
    fn ancestry_checks() {
        let cdfg = sample_cdfg();
        let main = cdfg.nodes().iter().find(|n| n.name == "main").unwrap().ctx;
        let c = cdfg.nodes().iter().find(|n| n.name == "c").unwrap().ctx;
        let b = cdfg.nodes().iter().find(|n| n.name == "b").unwrap().ctx;
        assert!(cdfg.is_in_subtree(c, main));
        assert!(!cdfg.is_in_subtree(b, c));
        assert_eq!(cdfg.depth(c), 3);
        assert_eq!(cdfg.depth(ContextId::ROOT), 0);
    }

    #[test]
    fn data_edge_connects_producer_to_consumer() {
        let cdfg = sample_cdfg();
        assert_eq!(cdfg.data_edges().len(), 1);
        let edge = cdfg.data_edges()[0];
        assert_eq!(cdfg.node(edge.producer).name, "c");
        assert_eq!(cdfg.node(edge.consumer).name, "b");
        assert_eq!(edge.unique_bytes, 4);
    }
}
