//! Single-pass streaming folds over event records (paper §II-C2).
//!
//! The in-memory analyses ([`DependencyGraph`], [`crate::cdfg::Cdfg`])
//! materialize O(records) state — a wall at production trace volume. The
//! folds here consume records one at a time (e.g. straight from a
//! [`ChunkStream`] over the binary format), so peak memory is bounded by
//! one decoded chunk plus the fold state:
//!
//! * [`CriticalPathFold`] keeps one finish time per dynamic call — it
//!   reproduces [`DependencyGraph::critical_path`]'s `serial_ops` and
//!   `length_ops` exactly, without building a single fragment node.
//! * [`EventCdfgFold`] aggregates calls, compute ops, and context-pair
//!   transfer bytes into a context tree — the event-level counterpart of
//!   the CDFG, supporting the same merge/inclusive/breakeven-trim
//!   pipeline via [`EventCdfg::trim`].
//!
//! Both folds' state is O(distinct dynamic calls) / O(contexts), not
//! O(records): compute fragments and transfers — the bulk of a trace —
//! add no state. The one thing a fold cannot give is the critical path's
//! node list itself (that is inherently O(path)); extraction stays on the
//! in-memory [`DependencyGraph`].

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::io::Read;

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;
use sigil_core::events_bin::{BinError, ChunkStream};
use sigil_core::{EventRecord, PhaseBuilder, PhaseProfile};
use sigil_trace::CallNumber;

use crate::breakeven::{breakeven_speedup, BusModel};
use crate::critical_path::{CommModel, CriticalPathError, DependencyGraph};

/// A failure while streaming an analysis off a binary event file.
#[derive(Debug)]
pub enum StreamError {
    /// The binary file failed to decode.
    Decode(BinError),
    /// The decoded stream failed the analysis' preconditions.
    Analysis(CriticalPathError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Decode(e) => e.fmt(f),
            StreamError::Analysis(e) => e.fmt(f),
        }
    }
}

impl Error for StreamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamError::Decode(e) => Some(e),
            StreamError::Analysis(e) => Some(e),
        }
    }
}

impl From<BinError> for StreamError {
    fn from(e: BinError) -> Self {
        StreamError::Decode(e)
    }
}

impl From<CriticalPathError> for StreamError {
    fn from(e: CriticalPathError) -> Self {
        StreamError::Analysis(e)
    }
}

/// The critical-path summary a bounded-memory fold can produce: the two
/// numbers of the paper's Figure 13, without the node list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSummary {
    /// Total retired ops of the run (serial length).
    pub serial_ops: u64,
    /// Length of the longest dependency chain in retired ops.
    pub length_ops: u64,
}

impl PathSummary {
    /// Maximum theoretical function-level parallelism:
    /// serial length / critical-path length.
    pub fn max_parallelism(&self) -> f64 {
        if self.length_ops == 0 {
            1.0
        } else {
            self.serial_ops as f64 / self.length_ops as f64
        }
    }
}

/// Streaming critical-path fold.
///
/// Pushes records in program order and tracks, per dynamic call, only the
/// finish time of its latest fragment — the same recurrence
/// [`DependencyGraph::from_records`] evaluates, minus the nodes. The
/// resulting [`PathSummary`] is bit-for-bit the `serial_ops`/`length_ops`
/// pair of [`DependencyGraph::critical_path`].
#[derive(Debug, Clone)]
pub struct CriticalPathFold {
    comm: CommModel,
    /// Finish time of the latest fragment per dynamic call.
    latest: HashMap<CallNumber, u64>,
    /// Latest-arriving data-readiness per pending consumer call.
    ready: HashMap<CallNumber, u64>,
    serial_ops: u64,
    max_finish: u64,
}

impl CriticalPathFold {
    /// A fold with zero-cost transfers (the paper's model).
    pub fn new() -> Self {
        Self::with_comm(CommModel::free())
    }

    /// A fold charging transfer edges under `comm`.
    pub fn with_comm(comm: CommModel) -> Self {
        CriticalPathFold {
            comm,
            latest: HashMap::new(),
            ready: HashMap::new(),
            serial_ops: 0,
            max_finish: 0,
        }
    }

    /// Folds one record.
    pub fn push(&mut self, record: &EventRecord) {
        match *record {
            EventRecord::Call {
                parent_call, call, ..
            } => {
                let start = self.latest.get(&parent_call).copied().unwrap_or(0);
                self.latest.insert(call, start);
                self.max_finish = self.max_finish.max(start);
            }
            EventRecord::Compute { call, ops, .. } => {
                self.serial_ops = self.serial_ops.saturating_add(ops);
                let prev_finish = self.latest.get(&call).copied().unwrap_or(0);
                let data_finish = self.ready.remove(&call).unwrap_or(0);
                let finish = prev_finish.max(data_finish).saturating_add(ops);
                self.latest.insert(call, finish);
                self.max_finish = self.max_finish.max(finish);
            }
            EventRecord::Transfer {
                from_call,
                to_call,
                bytes,
            } => {
                if let Some(&producer_finish) = self.latest.get(&from_call) {
                    let finish = producer_finish.saturating_add(self.comm.latency(bytes));
                    let entry = self.ready.entry(to_call).or_insert(finish);
                    *entry = (*entry).max(finish);
                }
            }
        }
    }

    /// Folds a whole record sequence.
    pub fn extend<'a, I: IntoIterator<Item = &'a EventRecord>>(&mut self, records: I) {
        for record in records {
            self.push(record);
        }
    }

    /// The summary.
    ///
    /// # Errors
    ///
    /// Returns [`CriticalPathError::EmptyEventFile`] when no compute work
    /// was folded, exactly like [`DependencyGraph::critical_path`].
    pub fn finish(self) -> Result<PathSummary, CriticalPathError> {
        if self.serial_ops == 0 {
            return Err(CriticalPathError::EmptyEventFile);
        }
        Ok(PathSummary {
            serial_ops: self.serial_ops,
            length_ops: self.max_finish,
        })
    }
}

impl Default for CriticalPathFold {
    fn default() -> Self {
        Self::new()
    }
}

/// Streams a binary event file through [`CriticalPathFold`] with memory
/// bounded by one chunk plus the per-call state.
///
/// # Errors
///
/// Fails on a malformed file or an event stream with no compute work.
pub fn critical_path_from_bin<R: Read>(
    source: R,
    comm: &CommModel,
) -> Result<PathSummary, StreamError> {
    let _span = sigil_obs::span("analysis:critical_path_stream");
    let mut fold = CriticalPathFold::with_comm(*comm);
    ChunkStream::new(source)?.for_each(|record| fold.push(record))?;
    Ok(fold.finish()?)
}

/// One node of the event-level context tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventNode {
    /// The context.
    pub ctx: ContextId,
    /// Parent context, as witnessed by the first call into `ctx`
    /// (`None` until a call record names it, and for the root).
    pub parent: Option<ContextId>,
    /// Child contexts, in first-call order.
    pub children: Vec<ContextId>,
    /// Dynamic calls into this context.
    pub calls: u64,
    /// Compute fragments attributed to this context.
    pub fragments: u64,
    /// Retired ops attributed to this context (exclusive).
    pub ops: u64,
}

impl EventNode {
    fn new(ctx: ContextId) -> Self {
        EventNode {
            ctx,
            parent: None,
            children: Vec::new(),
            calls: 0,
            fragments: 0,
            ops: 0,
        }
    }
}

/// A context-pair data edge aggregated from transfer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventEdge {
    /// Producing context.
    pub producer: ContextId,
    /// Consuming context.
    pub consumer: ContextId,
    /// Unique bytes moved.
    pub bytes: u64,
}

/// Streaming event-level CDFG fold: rebuilds the context tree, per-context
/// compute costs, and context-pair transfer edges from the event stream
/// alone — no profile required.
#[derive(Debug, Clone, Default)]
pub struct EventCdfgFold {
    /// Context each dynamic call executes in (the attribution map for
    /// transfer records; `CallNumber::ROOT` is seeded lazily).
    ctx_of: HashMap<CallNumber, ContextId>,
    nodes: BTreeMap<ContextId, EventNode>,
    edges: BTreeMap<(ContextId, ContextId), u64>,
    /// Transfer bytes whose producer or consumer call was never declared
    /// by a call record (malformed or truncated streams).
    unattributed_bytes: u64,
}

impl EventCdfgFold {
    /// An empty fold.
    pub fn new() -> Self {
        EventCdfgFold::default()
    }

    fn node(&mut self, ctx: ContextId) -> &mut EventNode {
        self.nodes.entry(ctx).or_insert_with(|| EventNode::new(ctx))
    }

    /// Whether making `parent` the parent of `child` would close a cycle
    /// (possible only on adversarial streams; walks are capped by the
    /// node count).
    fn would_cycle(&self, child: ContextId, parent: ContextId) -> bool {
        let mut cursor = Some(parent);
        for _ in 0..=self.nodes.len() {
            match cursor {
                None => return false,
                Some(c) if c == child => return true,
                Some(c) => cursor = self.nodes.get(&c).and_then(|n| n.parent),
            }
        }
        true // walk did not terminate: treat as cyclic
    }

    /// Folds one record.
    pub fn push(&mut self, record: &EventRecord) {
        match *record {
            EventRecord::Call {
                parent_call,
                call,
                ctx,
            } => {
                let parent_ctx = if parent_call == CallNumber::ROOT {
                    ContextId::ROOT
                } else {
                    self.ctx_of
                        .get(&parent_call)
                        .copied()
                        .unwrap_or(ContextId::ROOT)
                };
                self.ctx_of.insert(call, ctx);
                self.node(parent_ctx);
                let node = self.node(ctx);
                node.calls += 1;
                if node.parent.is_none()
                    && ctx != parent_ctx
                    && ctx != ContextId::ROOT
                    && !self.would_cycle(ctx, parent_ctx)
                {
                    self.node(ctx).parent = Some(parent_ctx);
                    self.node(parent_ctx).children.push(ctx);
                }
            }
            EventRecord::Compute { ctx, ops, .. } => {
                let node = self.node(ctx);
                node.fragments += 1;
                node.ops = node.ops.saturating_add(ops);
            }
            EventRecord::Transfer {
                from_call,
                to_call,
                bytes,
            } => {
                let producer = self.ctx_of.get(&from_call).copied();
                let consumer = self.ctx_of.get(&to_call).copied();
                match (producer, consumer) {
                    (Some(p), Some(c)) => {
                        self.node(p);
                        self.node(c);
                        let entry = self.edges.entry((p, c)).or_insert(0);
                        *entry = entry.saturating_add(bytes);
                    }
                    _ => {
                        self.unattributed_bytes = self.unattributed_bytes.saturating_add(bytes);
                    }
                }
            }
        }
    }

    /// Folds a whole record sequence.
    pub fn extend<'a, I: IntoIterator<Item = &'a EventRecord>>(&mut self, records: I) {
        for record in records {
            self.push(record);
        }
    }

    /// The finished event-level CDFG.
    pub fn finish(self) -> EventCdfg {
        EventCdfg {
            nodes: self.nodes,
            edges: self
                .edges
                .into_iter()
                .map(|((producer, consumer), bytes)| EventEdge {
                    producer,
                    consumer,
                    bytes,
                })
                .collect(),
            unattributed_bytes: self.unattributed_bytes,
        }
    }
}

/// Inclusive (merged-subtree) quantities of one event-level context:
/// the event-stream analogue of [`crate::inclusive::InclusiveCosts`],
/// with retired ops standing in for estimated cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventInclusive {
    /// Retired ops of the merged sub-tree.
    pub ops: u64,
    /// Bytes flowing into the merged box.
    pub in_bytes: u64,
    /// Bytes flowing out of the merged box.
    pub out_bytes: u64,
}

/// One accelerator candidate selected from the event-level tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventCandidate {
    /// The merged context.
    pub ctx: ContextId,
    /// Breakeven speedup with ops as the cycle proxy.
    pub breakeven: f64,
    /// Retired ops of the merged sub-tree.
    pub inclusive_ops: u64,
    /// Bytes entering the merged box.
    pub in_bytes: u64,
    /// Bytes leaving the merged box.
    pub out_bytes: u64,
}

/// The event-level CDFG: context tree plus aggregated data edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventCdfg {
    nodes: BTreeMap<ContextId, EventNode>,
    edges: Vec<EventEdge>,
    unattributed_bytes: u64,
}

impl EventCdfg {
    /// Builds the CDFG from an in-memory record slice (the reference the
    /// streaming path is tested against).
    pub fn from_records<'a, I: IntoIterator<Item = &'a EventRecord>>(records: I) -> Self {
        let mut fold = EventCdfgFold::new();
        fold.extend(records);
        fold.finish()
    }

    /// The nodes, ordered by context id.
    pub fn nodes(&self) -> impl Iterator<Item = &EventNode> {
        self.nodes.values()
    }

    /// Looks up one node.
    pub fn node(&self, ctx: ContextId) -> Option<&EventNode> {
        self.nodes.get(&ctx)
    }

    /// The aggregated data edges, ordered by (producer, consumer).
    pub fn edges(&self) -> &[EventEdge] {
        &self.edges
    }

    /// Transfer bytes that could not be attributed to a context pair.
    pub fn unattributed_bytes(&self) -> u64 {
        self.unattributed_bytes
    }

    /// Number of contexts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn depth_capped(&self, ctx: ContextId) -> usize {
        let mut depth = 0;
        let mut cursor = self.nodes.get(&ctx).and_then(|n| n.parent);
        while let Some(c) = cursor {
            depth += 1;
            if depth > self.nodes.len() {
                break;
            }
            cursor = self.nodes.get(&c).and_then(|n| n.parent);
        }
        depth
    }

    fn lca(&self, a: ContextId, b: ContextId) -> Option<ContextId> {
        let parent = |c: ContextId| self.nodes.get(&c).and_then(|n| n.parent);
        let (mut a, mut b) = (a, b);
        let (mut da, mut db) = (self.depth_capped(a), self.depth_capped(b));
        while da > db {
            a = parent(a)?;
            da -= 1;
        }
        while db > da {
            b = parent(b)?;
            db -= 1;
        }
        while a != b {
            a = parent(a)?;
            b = parent(b)?;
        }
        Some(a)
    }

    /// Inclusive quantities for every context: sub-tree ops plus the
    /// bytes crossing each merged box (edges internal to a box are
    /// discarded, exactly as [`crate::inclusive::inclusive_table`] does
    /// on the profile-based CDFG).
    pub fn inclusive(&self) -> BTreeMap<ContextId, EventInclusive> {
        let mut table: BTreeMap<ContextId, EventInclusive> = self
            .nodes
            .keys()
            .map(|&ctx| (ctx, EventInclusive::default()))
            .collect();
        // Sub-tree ops: charge each node's exclusive ops to itself and
        // every ancestor (walks capped against adversarial cycles).
        for node in self.nodes.values() {
            let mut cursor = Some(node.ctx);
            for _ in 0..=self.nodes.len() {
                let Some(c) = cursor else { break };
                if let Some(entry) = table.get_mut(&c) {
                    entry.ops = entry.ops.saturating_add(node.ops);
                }
                cursor = self.nodes.get(&c).and_then(|n| n.parent);
            }
        }
        // Crossing bytes: each edge crosses into the consumer's ancestors
        // strictly below the LCA, and out of the producer's.
        for edge in &self.edges {
            let lca = self.lca(edge.producer, edge.consumer);
            let mut charge = |start: ContextId, into: bool| {
                let mut cursor = Some(start);
                for _ in 0..=self.nodes.len() {
                    let Some(c) = cursor else { break };
                    if Some(c) == lca {
                        break;
                    }
                    if let Some(entry) = table.get_mut(&c) {
                        if into {
                            entry.in_bytes = entry.in_bytes.saturating_add(edge.bytes);
                        } else {
                            entry.out_bytes = entry.out_bytes.saturating_add(edge.bytes);
                        }
                    }
                    cursor = self.nodes.get(&c).and_then(|n| n.parent);
                }
            };
            charge(edge.consumer, true);
            charge(edge.producer, false);
        }
        table
    }

    /// Trims the event-level tree into accelerator candidates with the
    /// same merge heuristic as [`crate::partition::trim_calltree`]:
    /// merge a sub-tree into its root when that root's breakeven (ops as
    /// the cycle proxy) is at least as good as the best candidate below
    /// it. The program entry (child of the root context) is never a
    /// candidate; sub-trees under `min_ops` are noise-floored out.
    pub fn trim(&self, bus: &BusModel, min_ops: u64) -> Vec<EventCandidate> {
        let inclusive = self.inclusive();
        let mut selected = Vec::new();
        if let Some(root) = self.nodes.get(&ContextId::ROOT) {
            for &entry in &root.children {
                self.trim_rec(entry, false, bus, min_ops, &inclusive, &mut selected, 0);
            }
        }
        let mut leaves: Vec<EventCandidate> = selected
            .into_iter()
            .filter_map(|ctx| {
                let inc = inclusive.get(&ctx)?;
                Some(EventCandidate {
                    ctx,
                    breakeven: self.breakeven_of(inc, bus),
                    inclusive_ops: inc.ops,
                    in_bytes: inc.in_bytes,
                    out_bytes: inc.out_bytes,
                })
            })
            .collect();
        leaves.sort_by(|a, b| {
            a.breakeven
                .partial_cmp(&b.breakeven)
                .expect("breakevens are never NaN")
                .then_with(|| b.inclusive_ops.cmp(&a.inclusive_ops))
                .then_with(|| a.ctx.cmp(&b.ctx))
        });
        leaves
    }

    fn breakeven_of(&self, inc: &EventInclusive, bus: &BusModel) -> f64 {
        breakeven_speedup(
            inc.ops as f64,
            bus.transfer_cycles(inc.in_bytes),
            bus.transfer_cycles(inc.out_bytes),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn trim_rec(
        &self,
        ctx: ContextId,
        mergeable: bool,
        bus: &BusModel,
        min_ops: u64,
        inclusive: &BTreeMap<ContextId, EventInclusive>,
        out: &mut Vec<ContextId>,
        depth: usize,
    ) -> f64 {
        if depth > self.nodes.len() {
            return f64::INFINITY; // adversarial cycle guard
        }
        let Some(node) = self.nodes.get(&ctx) else {
            return f64::INFINITY;
        };
        let inc = inclusive.get(&ctx).copied().unwrap_or_default();
        let own = if mergeable && inc.ops >= min_ops.max(1) {
            self.breakeven_of(&inc, bus)
        } else {
            f64::INFINITY
        };
        if node.children.is_empty() {
            if own.is_finite() {
                out.push(ctx);
            }
            return own;
        }
        let mut child_leaves = Vec::new();
        let mut best_child = f64::INFINITY;
        for &child in &node.children {
            best_child = best_child.min(self.trim_rec(
                child,
                true,
                bus,
                min_ops,
                inclusive,
                &mut child_leaves,
                depth + 1,
            ));
        }
        if own.is_finite() && own <= best_child {
            out.push(ctx);
            own
        } else {
            out.append(&mut child_leaves);
            best_child
        }
    }
}

/// Streams a binary event file through [`EventCdfgFold`] with memory
/// bounded by one chunk plus the per-context/per-call state.
///
/// # Errors
///
/// Fails on a malformed file.
pub fn event_cdfg_from_bin<R: Read>(source: R) -> Result<EventCdfg, StreamError> {
    let _span = sigil_obs::span("analysis:event_cdfg_stream");
    let mut fold = EventCdfgFold::new();
    ChunkStream::new(source)?.for_each(|record| fold.push(record))?;
    Ok(fold.finish())
}

/// Streaming phase-profile fold: rebuilds the profiler's
/// [`PhaseProfile`] from the event stream alone.
///
/// The phase clock is recovered by replaying the profiler's tick rules
/// over the records in program order:
///
/// * a `Call` record is tallied at the *pre-tick* clock, then advances
///   the clock by one (the call itself retires one op);
/// * a `Compute` fragment advances the clock by its `ops`;
/// * a `Transfer` is tallied at the current clock (its consuming read
///   already retired inside the preceding compute fragment).
///
/// Because the profiler only ticks for work the event sequencer also
/// sees, the recovered clock — and therefore every bucket index — is
/// identical to the in-memory profiler's, making the fold's output
/// byte-identical to `Profile::phases` for the same bucket width. State
/// is O(distinct dynamic calls) for attribution plus O(occupied cells):
/// bounded, stream-friendly memory.
///
/// Transfers naming a call no `Call` record declared (malformed or
/// truncated streams) are attributed to [`ContextId::ROOT`].
#[derive(Debug, Clone)]
pub struct PhaseFold {
    builder: PhaseBuilder,
    /// Context each dynamic call executes in.
    ctx_of: HashMap<CallNumber, ContextId>,
    /// Recovered phase clock (retired ops since trace start).
    clock: u64,
}

impl PhaseFold {
    /// An empty fold bucketing at `bucket_ops` retired ops per phase
    /// (`0` is clamped to `1`).
    pub fn new(bucket_ops: u64) -> Self {
        PhaseFold {
            builder: PhaseBuilder::new(bucket_ops),
            ctx_of: HashMap::new(),
            clock: 0,
        }
    }

    fn ctx_or_root(&self, call: CallNumber) -> ContextId {
        if call == CallNumber::ROOT {
            ContextId::ROOT
        } else {
            self.ctx_of.get(&call).copied().unwrap_or(ContextId::ROOT)
        }
    }

    /// Folds one record.
    pub fn push(&mut self, record: &EventRecord) {
        match *record {
            EventRecord::Call {
                parent_call,
                call,
                ctx,
            } => {
                let from = self.ctx_or_root(parent_call);
                self.ctx_of.insert(call, ctx);
                self.builder.record_call(from, ctx, self.clock);
                self.clock += 1;
            }
            EventRecord::Compute { ops, .. } => self.clock += ops,
            EventRecord::Transfer {
                from_call,
                to_call,
                bytes,
            } => {
                let from = self.ctx_or_root(from_call);
                let to = self.ctx_or_root(to_call);
                self.builder.record_transfer(from, to, self.clock, bytes);
            }
        }
    }

    /// Folds a whole record sequence.
    pub fn extend<'a, I: IntoIterator<Item = &'a EventRecord>>(&mut self, records: I) {
        for record in records {
            self.push(record);
        }
    }

    /// The recovered phase clock so far (total retired ops folded).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The finished profile, in the profiler's canonical shape.
    pub fn finish(self) -> PhaseProfile {
        self.builder.finish()
    }
}

/// Streams a binary event file through [`PhaseFold`] with memory bounded
/// by one chunk plus the attribution map and occupied cells.
///
/// # Errors
///
/// Fails on a malformed file.
pub fn phase_profile_from_bin<R: Read>(
    source: R,
    bucket_ops: u64,
) -> Result<PhaseProfile, StreamError> {
    let _span = sigil_obs::span("analysis:phase_stream");
    let mut fold = PhaseFold::new(bucket_ops);
    ChunkStream::new(source)?.for_each(|record| fold.push(record))?;
    Ok(fold.finish())
}

/// Reference implementation used by the conformance tests: the summary of
/// the full in-memory dependency graph.
///
/// # Errors
///
/// Fails when no compute work exists.
pub fn in_memory_summary(
    records: &[EventRecord],
    comm: &CommModel,
) -> Result<PathSummary, CriticalPathError> {
    let graph = DependencyGraph::from_records(records.iter().copied(), comm);
    let cp = graph.critical_path()?;
    Ok(PathSummary {
        serial_ops: cp.serial_ops,
        length_ops: cp.length_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::events_bin::encode_events_chunked;
    use sigil_core::{EventFile, SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    fn call(n: u64) -> CallNumber {
        CallNumber::from_raw(n)
    }

    fn recorded_events<F: FnOnce(&mut Engine<SigilProfiler>)>(body: F) -> EventFile {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
        body(&mut engine);
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s).events.expect("events enabled")
    }

    fn diamond() -> EventFile {
        recorded_events(|e| {
            e.scoped_named("main", |e| {
                e.scoped_named("producer", |e| {
                    e.op(OpClass::IntArith, 100);
                    e.write(0x0, 8);
                    e.write(0x100, 8);
                });
                e.scoped_named("worker_a", |e| {
                    e.read(0x0, 8);
                    e.op(OpClass::IntArith, 900);
                });
                e.scoped_named("worker_b", |e| {
                    e.read(0x100, 8);
                    e.op(OpClass::IntArith, 900);
                });
            });
        })
    }

    #[test]
    fn fold_matches_in_memory_graph() {
        let events = diamond();
        for comm in [
            CommModel::free(),
            CommModel {
                fixed_ops: 50,
                bytes_per_op: 1.0,
            },
        ] {
            let reference = in_memory_summary(events.records(), &comm).expect("compute work");
            let mut fold = CriticalPathFold::with_comm(comm);
            fold.extend(events.records());
            let summary = fold.finish().expect("compute work");
            assert_eq!(summary, reference);
            assert!(summary.max_parallelism() > 1.0);
        }
    }

    #[test]
    fn fold_from_binary_stream_matches() {
        let events = diamond();
        let bytes = encode_events_chunked(&events, 3);
        let reference =
            in_memory_summary(events.records(), &CommModel::free()).expect("compute work");
        let streamed =
            critical_path_from_bin(bytes.as_slice(), &CommModel::free()).expect("clean file");
        assert_eq!(streamed, reference);
    }

    #[test]
    fn empty_stream_is_an_analysis_error() {
        let fold = CriticalPathFold::new();
        assert_eq!(fold.finish(), Err(CriticalPathError::EmptyEventFile));
        let bytes = encode_events_chunked(&EventFile::new(), 4);
        match critical_path_from_bin(bytes.as_slice(), &CommModel::free()) {
            Err(StreamError::Analysis(CriticalPathError::EmptyEventFile)) => {}
            other => panic!("expected EmptyEventFile, got {other:?}"),
        }
    }

    #[test]
    fn event_cdfg_rebuilds_tree_and_edges() {
        let events = diamond();
        let cdfg = EventCdfg::from_records(events.records());
        // root, main, producer, worker_a, worker_b
        assert_eq!(cdfg.len(), 5);
        let root = cdfg.node(ContextId::ROOT).expect("root");
        assert_eq!(root.children.len(), 1, "main is the sole entry");
        let main = cdfg.node(root.children[0]).expect("main");
        assert_eq!(main.children.len(), 3);
        // producer → worker_a and producer → worker_b edges, 8 bytes each.
        assert_eq!(cdfg.edges().len(), 2);
        for edge in cdfg.edges() {
            assert_eq!(edge.producer, main.children[0]);
            assert_eq!(edge.bytes, 8);
        }
        assert_eq!(cdfg.unattributed_bytes(), 0);
        // Total exclusive ops equal the event file's total.
        let total: u64 = cdfg.nodes().map(|n| n.ops).sum();
        assert_eq!(total, events.total_ops());
    }

    #[test]
    fn event_cdfg_streaming_matches_in_memory() {
        let events = diamond();
        let reference = EventCdfg::from_records(events.records());
        let bytes = encode_events_chunked(&events, 2);
        let streamed = event_cdfg_from_bin(bytes.as_slice()).expect("clean file");
        assert_eq!(streamed, reference);
    }

    #[test]
    fn inclusive_discards_internal_edges() {
        let events = diamond();
        let cdfg = EventCdfg::from_records(events.records());
        let inclusive = cdfg.inclusive();
        let root = cdfg.node(ContextId::ROOT).expect("root");
        let main_ctx = root.children[0];
        // Everything is inside main's box: no crossing traffic.
        let main_inc = inclusive[&main_ctx];
        assert_eq!(main_inc.in_bytes, 0);
        assert_eq!(main_inc.out_bytes, 0);
        assert_eq!(main_inc.ops, events.total_ops());
        // The producer's box exports both buffers.
        let producer_ctx = cdfg.node(main_ctx).expect("main").children[0];
        let producer_inc = inclusive[&producer_ctx];
        assert_eq!(producer_inc.out_bytes, 16);
        assert_eq!(producer_inc.in_bytes, 0);
    }

    #[test]
    fn trim_prefers_compute_heavy_subtrees() {
        let events = diamond();
        let cdfg = EventCdfg::from_records(events.records());
        let candidates = cdfg.trim(&BusModel::soc_default(), 1);
        assert!(!candidates.is_empty());
        // The entry (main) is never a candidate.
        let root = cdfg.node(ContextId::ROOT).expect("root");
        let main_ctx = root.children[0];
        assert!(candidates.iter().all(|c| c.ctx != main_ctx));
        for pair in candidates.windows(2) {
            assert!(pair[0].breakeven <= pair[1].breakeven);
        }
        for c in &candidates {
            assert!(c.breakeven >= 1.0);
        }
    }

    #[test]
    fn phase_fold_matches_profiler_profile() {
        // The fold recovers the profiler's own PhaseProfile from the
        // event stream, byte-for-byte, across bucket widths.
        for width in [1, 3, 64] {
            let mut engine = Engine::new(SigilProfiler::new(
                SigilConfig::default().with_events().with_phases(width),
            ));
            engine.scoped_named("main", |e| {
                e.scoped_named("producer", |e| {
                    e.op(OpClass::IntArith, 7);
                    e.write(0x0, 8);
                    e.write(0x100, 8);
                });
                e.scoped_named("worker_a", |e| {
                    e.read(0x0, 8);
                    e.op(OpClass::IntArith, 11);
                });
                e.scoped_named("worker_b", |e| {
                    e.read(0x100, 8);
                    e.read(0x100, 8); // repeat read: no transfer
                });
            });
            let (p, s) = engine.finish_with_symbols();
            let profile = p.into_profile(s);
            let events = profile.events.as_ref().expect("events on");
            let reference = profile.phases.as_ref().expect("phases on");

            let mut fold = PhaseFold::new(width);
            fold.extend(events.records());
            assert_eq!(fold.clock(), events.total_ops() + 4, "ops + 4 calls");
            let folded = fold.finish();
            assert_eq!(&folded, reference, "width={width}");

            // And the chunked binary path agrees with the in-memory fold.
            let bytes = encode_events_chunked(events, 3);
            let streamed = phase_profile_from_bin(bytes.as_slice(), width).expect("clean file");
            assert_eq!(&streamed, reference, "width={width} (binary)");
        }
    }

    #[test]
    fn phase_fold_attributes_unknown_calls_to_root() {
        let mut fold = PhaseFold::new(10);
        fold.push(&EventRecord::Transfer {
            from_call: call(99),
            to_call: call(98),
            bytes: 16,
        });
        let profile = fold.finish();
        assert_eq!(profile.pairs.len(), 1);
        assert_eq!(profile.pairs[0].from, ContextId::ROOT);
        assert_eq!(profile.pairs[0].to, ContextId::ROOT);
        assert_eq!(profile.pairs[0].buckets[0].xfer_bytes, 16);
    }

    #[test]
    fn malformed_streams_never_panic_the_folds() {
        // Transfers referencing undeclared calls, orphan computes, and a
        // would-be context cycle all fold cleanly.
        let mut fold = EventCdfgFold::new();
        let records = [
            EventRecord::Transfer {
                from_call: call(99),
                to_call: call(98),
                bytes: u64::MAX,
            },
            EventRecord::Compute {
                call: call(50),
                ctx: ContextId(7),
                ops: u64::MAX,
            },
            EventRecord::Compute {
                call: call(50),
                ctx: ContextId(7),
                ops: u64::MAX,
            },
            EventRecord::Call {
                parent_call: call(1),
                call: call(2),
                ctx: ContextId(3),
            },
            EventRecord::Call {
                parent_call: call(2),
                call: call(3),
                ctx: ContextId(4),
            },
            // ctx 3's parent is already set; this tries to re-parent and
            // must not create a 3↔4 cycle.
            EventRecord::Call {
                parent_call: call(3),
                call: call(4),
                ctx: ContextId(3),
            },
        ];
        for r in &records {
            fold.push(r);
        }
        let cdfg = fold.finish();
        assert_eq!(cdfg.unattributed_bytes(), u64::MAX);
        let _ = cdfg.inclusive();
        let _ = cdfg.trim(&BusModel::soc_default(), 1);

        let mut cp = CriticalPathFold::new();
        for r in &records {
            cp.push(r);
        }
        cp.finish().expect("compute work present");
    }
}
