//! Critical-path analysis over the event file (paper §II-C2, §IV-C,
//! Figures 3 and 13).
//!
//! Each dynamic call becomes a chain of *fragment* nodes (one per compute
//! record); calls are modelled as **non-blocking**, "so that they can
//! potentially run in parallel and start consuming data". Re-entering a
//! caller after a child returns appends a new fragment with an ordering
//! edge to the previous fragment, "to conservatively enforce order between
//! regions within" the function — exactly the construction of Figure 3.
//!
//! The longest chain from the program entry is the critical path; the
//! maximum theoretical function-level parallelism is the serial length
//! divided by the critical-path length.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;
use sigil_core::{EventFile, EventRecord, Profile};
use sigil_trace::CallNumber;

/// Analysis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CriticalPathError {
    /// The profile was collected without event recording.
    MissingEvents,
    /// The event file contains no compute work.
    EmptyEventFile,
}

impl fmt::Display for CriticalPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CriticalPathError::MissingEvents => {
                f.write_str("profile has no event file (enable SigilConfig::with_events)")
            }
            CriticalPathError::EmptyEventFile => f.write_str("event file contains no compute work"),
        }
    }
}

impl Error for CriticalPathError {}

/// One fragment node of the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentNode {
    /// The dynamic call this fragment belongs to.
    pub call: CallNumber,
    /// The function context of that call.
    pub ctx: ContextId,
    /// Retired ops in this fragment (the node's self cost).
    pub self_ops: u64,
    /// Longest-chain finish time: max over predecessors' finish + self
    /// cost (the paper's "inclusive cost" of Figure 3).
    pub finish: u64,
    /// The predecessor on the longest incoming chain.
    pub pred: Option<usize>,
    /// The ordering predecessor: the previous fragment of the same call,
    /// or the caller fragment that spawned this call.
    pub order_pred: Option<usize>,
    /// The data predecessor: the producer fragment of the latest-arriving
    /// transfer consumed by this fragment, if any.
    pub data_pred: Option<usize>,
}

/// Cost model for data-transfer edges in the dependency graph.
///
/// The paper's §IV-C deliberately ignores communication edges ("for the
/// sake of simplicity, we do not employ more sophisticated critical path
/// analysis … which also take communication edges into account") and
/// cites full-system critical-path work as the extension. This model
/// implements that extension: a transfer of `b` bytes delays the
/// consumer by `fixed_ops + b / bytes_per_op` retired-op units beyond
/// the producer's finish time. [`CommModel::free`] recovers the paper's
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// Per-transfer fixed latency in retired-op units.
    pub fixed_ops: u64,
    /// Transfer bandwidth: bytes moved per retired-op unit.
    pub bytes_per_op: f64,
}

impl CommModel {
    /// Zero-cost transfers — the paper's simplification.
    pub const fn free() -> Self {
        CommModel {
            fixed_ops: 0,
            bytes_per_op: f64::INFINITY,
        }
    }

    /// Latency of moving `bytes` bytes.
    pub fn latency(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let transfer = if self.bytes_per_op.is_finite() && self.bytes_per_op > 0.0 {
            (bytes as f64 / self.bytes_per_op).ceil() as u64
        } else {
            0
        };
        self.fixed_ops + transfer
    }
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel::free()
    }
}

/// The dependency graph built from an event file.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DependencyGraph {
    nodes: Vec<FragmentNode>,
    serial_ops: u64,
}

impl DependencyGraph {
    /// Builds the graph from an event file with zero-cost transfers
    /// (the paper's model).
    pub fn from_event_file(events: &EventFile) -> Self {
        Self::from_event_file_with(events, &CommModel::free())
    }

    /// Builds the graph, charging each data-transfer edge under `comm`.
    pub fn from_event_file_with(events: &EventFile, comm: &CommModel) -> Self {
        Self::from_records(events.records().iter().copied(), comm)
    }

    /// Builds the graph from any record sequence — an in-memory slice, or
    /// a streaming decode of the binary format (the graph itself is still
    /// O(records); use [`crate::streaming::CriticalPathFold`] when only
    /// the summary numbers are needed at bounded memory).
    pub fn from_records<I>(records: I, comm: &CommModel) -> Self
    where
        I: IntoIterator<Item = EventRecord>,
    {
        // Latest fragment node index per dynamic call.
        let mut latest: HashMap<CallNumber, usize> = HashMap::new();
        // Pending data-readiness per consumer call: (finish, node index).
        let mut ready: HashMap<CallNumber, (u64, usize)> = HashMap::new();
        let mut nodes: Vec<FragmentNode> = Vec::new();
        let mut serial_ops = 0u64;

        for record in records {
            match record {
                EventRecord::Call {
                    parent_call,
                    call,
                    ctx,
                } => {
                    let pred = latest.get(&parent_call).copied();
                    let start = pred.map_or(0, |i| nodes[i].finish);
                    let idx = nodes.len();
                    nodes.push(FragmentNode {
                        call,
                        ctx,
                        self_ops: 0,
                        finish: start,
                        pred,
                        order_pred: pred,
                        data_pred: None,
                    });
                    latest.insert(call, idx);
                }
                EventRecord::Compute { call, ctx, ops } => {
                    serial_ops = serial_ops.saturating_add(ops);
                    let prev = latest.get(&call).copied();
                    let prev_finish = prev.map_or(0, |i| nodes[i].finish);
                    let (data_finish, data_pred) =
                        ready.remove(&call).map_or((0, None), |(f, i)| (f, Some(i)));
                    let (start, pred) = if data_finish > prev_finish {
                        (data_finish, data_pred)
                    } else {
                        (prev_finish, prev)
                    };
                    let idx = nodes.len();
                    nodes.push(FragmentNode {
                        call,
                        ctx,
                        self_ops: ops,
                        finish: start.saturating_add(ops),
                        pred,
                        order_pred: prev,
                        data_pred,
                    });
                    latest.insert(call, idx);
                }
                EventRecord::Transfer {
                    from_call,
                    to_call,
                    bytes,
                } => {
                    if let Some(&producer_idx) = latest.get(&from_call) {
                        let finish = nodes[producer_idx]
                            .finish
                            .saturating_add(comm.latency(bytes));
                        ready
                            .entry(to_call)
                            .and_modify(|entry| {
                                if finish > entry.0 {
                                    *entry = (finish, producer_idx);
                                }
                            })
                            .or_insert((finish, producer_idx));
                    }
                }
            }
        }
        DependencyGraph { nodes, serial_ops }
    }

    /// The fragment nodes in creation order.
    pub fn nodes(&self) -> &[FragmentNode] {
        &self.nodes
    }

    /// Serial length: total retired ops across all fragments.
    pub fn serial_ops(&self) -> u64 {
        self.serial_ops
    }

    /// Extracts the critical path.
    ///
    /// # Errors
    ///
    /// Returns [`CriticalPathError::EmptyEventFile`] if no compute work
    /// exists.
    pub fn critical_path(&self) -> Result<CriticalPath, CriticalPathError> {
        if self.serial_ops == 0 {
            return Err(CriticalPathError::EmptyEventFile);
        }
        let tail = self
            .nodes
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| n.finish)
            .map(|(i, _)| i)
            .expect("non-empty graph");
        let mut path = Vec::new();
        let mut cursor = Some(tail);
        while let Some(i) = cursor {
            path.push(self.nodes[i]);
            cursor = self.nodes[i].pred;
        }
        path.reverse();
        let length_ops = self.nodes[tail].finish;
        Ok(CriticalPath {
            serial_ops: self.serial_ops,
            length_ops,
            path,
        })
    }
}

/// The critical path and the parallelism limit it implies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Total retired ops of the run (serial length).
    pub serial_ops: u64,
    /// Length of the longest dependency chain in retired ops.
    pub length_ops: u64,
    /// The fragments on the longest chain, entry first.
    pub path: Vec<FragmentNode>,
}

impl CriticalPath {
    /// Builds the dependency graph from `profile`'s event file and
    /// extracts the critical path, with zero-cost transfers (the paper's
    /// model).
    ///
    /// # Errors
    ///
    /// Fails if the profile has no event file or no compute work.
    pub fn from_profile(profile: &Profile) -> Result<Self, CriticalPathError> {
        Self::from_profile_with(profile, &CommModel::free())
    }

    /// Like [`CriticalPath::from_profile`], but charges transfer edges
    /// under `comm` — the communication-aware extension the paper leaves
    /// to future work.
    ///
    /// # Errors
    ///
    /// Fails if the profile has no event file or no compute work.
    pub fn from_profile_with(
        profile: &Profile,
        comm: &CommModel,
    ) -> Result<Self, CriticalPathError> {
        let _span = sigil_obs::span("analysis:critical_path");
        let events = profile
            .events
            .as_ref()
            .ok_or(CriticalPathError::MissingEvents)?;
        DependencyGraph::from_event_file_with(events, comm).critical_path()
    }

    /// Maximum theoretical function-level parallelism:
    /// serial length / critical-path length (Figure 13's metric).
    pub fn max_parallelism(&self) -> f64 {
        if self.length_ops == 0 {
            1.0
        } else {
            self.serial_ops as f64 / self.length_ops as f64
        }
    }

    /// Function names along the path (deduplicated consecutive repeats),
    /// leaf last — the representation used in the paper's §IV-C chains.
    pub fn function_names(&self, profile: &Profile) -> Vec<String> {
        let tree = &profile.callgrind.tree;
        let symbols = profile.symbols();
        let mut names: Vec<String> = Vec::new();
        for frag in &self.path {
            let name = tree.node(frag.ctx).func.map_or_else(
                || "<root>".to_owned(),
                |f| {
                    symbols
                        .get_name(f)
                        .map_or_else(|| f.to_string(), str::to_owned)
                },
            );
            if names.last() != Some(&name) {
                names.push(name);
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    fn profile_with_events<F: FnOnce(&mut Engine<SigilProfiler>)>(body: F) -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
        body(&mut engine);
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn independent_children_run_in_parallel() {
        // Two children with no data dependency: the critical path is main
        // + one child, so parallelism > 1.
        let profile = profile_with_events(|e| {
            e.scoped_named("main", |e| {
                e.scoped_named("left", |e| e.op(OpClass::IntArith, 1000));
                e.scoped_named("right", |e| e.op(OpClass::IntArith, 1000));
            });
        });
        let cp = CriticalPath::from_profile(&profile).expect("events present");
        assert!(
            cp.max_parallelism() > 1.5,
            "got {} (serial {}, path {})",
            cp.max_parallelism(),
            cp.serial_ops,
            cp.length_ops
        );
    }

    #[test]
    fn data_dependency_serializes_chain() {
        // producer → consumer dependency forces them onto one chain.
        let profile = profile_with_events(|e| {
            e.scoped_named("main", |e| {
                e.scoped_named("producer", |e| {
                    e.op(OpClass::IntArith, 1000);
                    e.write(0x0, 8);
                });
                e.scoped_named("consumer", |e| {
                    e.read(0x0, 8);
                    e.op(OpClass::IntArith, 1000);
                });
            });
        });
        let cp = CriticalPath::from_profile(&profile).expect("events present");
        // Both kernels must be on the path: length ≥ 2000.
        assert!(cp.length_ops >= 2000, "got {}", cp.length_ops);
        let names = cp.function_names(&profile);
        assert!(names.contains(&"producer".to_owned()));
        assert!(names.contains(&"consumer".to_owned()));
        assert!(cp.max_parallelism() < 1.2);
    }

    #[test]
    fn independent_consumers_parallelize_after_producer() {
        let profile = profile_with_events(|e| {
            e.scoped_named("main", |e| {
                e.scoped_named("producer", |e| {
                    e.op(OpClass::IntArith, 100);
                    e.write(0x0, 8);
                    e.write(0x100, 8);
                });
                e.scoped_named("worker_a", |e| {
                    e.read(0x0, 8);
                    e.op(OpClass::IntArith, 900);
                });
                e.scoped_named("worker_b", |e| {
                    e.read(0x100, 8);
                    e.op(OpClass::IntArith, 900);
                });
            });
        });
        let cp = CriticalPath::from_profile(&profile).expect("events present");
        // Serial ≈ 1900+, path ≈ 1000+: parallelism approaching 2.
        assert!(cp.max_parallelism() > 1.5, "got {}", cp.max_parallelism());
    }

    #[test]
    fn missing_events_is_an_error() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| e.op(OpClass::IntArith, 1));
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        assert_eq!(
            CriticalPath::from_profile(&profile),
            Err(CriticalPathError::MissingEvents)
        );
    }

    #[test]
    fn empty_event_file_is_an_error() {
        let graph = DependencyGraph::from_event_file(&EventFile::new());
        assert_eq!(
            graph.critical_path(),
            Err(CriticalPathError::EmptyEventFile)
        );
    }

    #[test]
    fn path_finish_times_are_monotonic() {
        let profile = profile_with_events(|e| {
            e.scoped_named("main", |e| {
                e.op(OpClass::IntArith, 10);
                e.scoped_named("a", |e| {
                    e.op(OpClass::IntArith, 10);
                    e.scoped_named("b", |e| e.op(OpClass::IntArith, 10));
                    e.op(OpClass::IntArith, 10);
                });
            });
        });
        let cp = CriticalPath::from_profile(&profile).expect("events present");
        for pair in cp.path.windows(2) {
            assert!(pair[0].finish <= pair[1].finish);
        }
        assert_eq!(
            cp.path.last().expect("non-empty").finish,
            cp.length_ops,
            "path ends at the critical finish time"
        );
    }

    #[test]
    fn comm_model_latency_math() {
        let free = CommModel::free();
        assert_eq!(free.latency(0), 0);
        assert_eq!(free.latency(1 << 20), 0);
        let bus = CommModel {
            fixed_ops: 100,
            bytes_per_op: 8.0,
        };
        assert_eq!(bus.latency(0), 0);
        assert_eq!(bus.latency(16), 102);
        assert_eq!(bus.latency(7), 101, "partial beats round up");
    }

    #[test]
    fn comm_aware_path_is_no_shorter_than_free_path() {
        let profile = profile_with_events(|e| {
            e.scoped_named("main", |e| {
                e.scoped_named("producer", |e| {
                    e.op(OpClass::IntArith, 100);
                    for i in 0..64 {
                        e.write(0x2000 + i * 8, 8);
                    }
                });
                e.scoped_named("consumer", |e| {
                    for i in 0..64 {
                        e.read(0x2000 + i * 8, 8);
                    }
                    e.op(OpClass::IntArith, 100);
                });
            });
        });
        let free = CriticalPath::from_profile(&profile).expect("events");
        let bus = CommModel {
            fixed_ops: 50,
            bytes_per_op: 1.0,
        };
        let charged = CriticalPath::from_profile_with(&profile, &bus).expect("events");
        assert!(charged.length_ops > free.length_ops);
        // At least one 8-byte transfer (50 fixed + 8 ops) is on the path.
        assert!(charged.length_ops >= free.length_ops + 58);
        assert_eq!(charged.serial_ops, free.serial_ops);
        assert!(charged.max_parallelism() < free.max_parallelism());
    }

    #[test]
    fn free_comm_model_matches_paper_baseline() {
        let profile = profile_with_events(|e| {
            e.scoped_named("main", |e| {
                e.scoped_named("a", |e| {
                    e.op(OpClass::IntArith, 10);
                    e.write(0x0, 8);
                });
                e.scoped_named("b", |e| {
                    e.read(0x0, 8);
                    e.op(OpClass::IntArith, 10);
                });
            });
        });
        let baseline = CriticalPath::from_profile(&profile).expect("events");
        let explicit =
            CriticalPath::from_profile_with(&profile, &CommModel::free()).expect("events");
        assert_eq!(baseline, explicit);
    }

    #[test]
    fn serial_ops_match_event_file_total() {
        let profile = profile_with_events(|e| {
            e.scoped_named("main", |e| {
                e.scoped_named("x", |e| e.op(OpClass::IntArith, 123));
            });
        });
        let events = profile.events.as_ref().expect("events");
        let graph = DependencyGraph::from_event_file(events);
        assert_eq!(graph.serial_ops(), events.total_ops());
    }
}
