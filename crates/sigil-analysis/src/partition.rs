//! Calltree trimming for HW/SW partitioning (paper §II-C1, §IV-A).
//!
//! "Given a control data flow graph, we must trim the calltree by merging
//! nodes such that the leaf nodes of the resulting tree are accelerator
//! candidates. … The goal of the heuristic is to minimize the
//! breakeven-speedup of all the leaf nodes of a trimmed call tree …
//! optimized for maximum application coverage with useful functions and
//! for minimal communication."

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;
use sigil_core::Profile;

use crate::breakeven::{breakeven_for, BusModel};
use crate::cdfg::Cdfg;
use crate::inclusive::{inclusive_table, InclusiveCosts};

/// Tuning knobs for the trimming heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// SoC bus model for offload costs.
    pub bus: BusModel,
    /// Sub-trees estimated below this many cycles are never candidates
    /// (noise floor).
    pub min_cycles: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            bus: BusModel::soc_default(),
            min_cycles: 1,
        }
    }
}

/// One accelerator candidate: a leaf of the trimmed calltree, i.e. a
/// function merged with its entire sub-tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The merged context.
    pub ctx: ContextId,
    /// Function name of the merged node.
    pub name: String,
    /// Breakeven speedup (Eq. 1) for offloading this sub-tree.
    pub breakeven: f64,
    /// Estimated software cycles of the merged sub-tree (`t_sw`).
    pub inclusive_cycles: u64,
    /// Fraction of whole-program estimated cycles this candidate covers.
    pub coverage: f64,
    /// Unique bytes entering the merged box.
    pub comm_in_unique: u64,
    /// Unique bytes leaving the merged box.
    pub comm_out_unique: u64,
}

/// The result of trimming: the selected leaves and their total coverage
/// (the quantity plotted in the paper's Figure 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrimmedTree {
    /// Selected candidates, sorted by breakeven ascending (best first).
    pub leaves: Vec<Candidate>,
    /// Whole-program estimated cycles.
    pub total_cycles: u64,
    /// Fraction of execution time covered by the leaves.
    pub coverage: f64,
}

/// The CDFG and its inclusive-cost table, built once and shared by
/// [`trim_calltree_prepared`] and [`rank_functions_prepared`] — callers
/// that run both analyses (e.g. `sigil partition`) avoid rebuilding the
/// graph and re-walking every edge's ancestor chains.
#[derive(Debug, Clone)]
pub struct PreparedCdfg {
    /// The control data-flow graph.
    pub cdfg: Cdfg,
    /// Inclusive costs per context, indexed by raw context id.
    pub inclusive: Vec<InclusiveCosts>,
}

impl PreparedCdfg {
    /// Builds the CDFG and inclusive table from a finished profile.
    pub fn from_profile(profile: &Profile) -> Self {
        let cdfg = Cdfg::from_profile(profile);
        let inclusive = inclusive_table(&cdfg);
        PreparedCdfg { cdfg, inclusive }
    }
}

struct Trimmer<'a> {
    cdfg: &'a Cdfg,
    inclusive: &'a [InclusiveCosts],
    breakevens: Vec<f64>,
    cycles: Vec<u64>,
    config: &'a PartitionConfig,
}

impl Trimmer<'_> {
    /// Returns the selected leaves in `ctx`'s subtree and the minimum
    /// breakeven among them (`f64::INFINITY` when nothing is selectable).
    ///
    /// `mergeable` is false for the program entry: the top-level driver
    /// is never an accelerator candidate (the paper's candidates are
    /// functions *inside* the application, never `main`). Opaque system
    /// calls cannot be offloaded either.
    fn trim(&self, ctx: ContextId, mergeable: bool, out: &mut Vec<ContextId>) -> f64 {
        let node = self.cdfg.node(ctx);
        let own = if mergeable
            && node.func.is_some()
            && !node.is_syscall
            && self.cycles[ctx.index()] >= self.config.min_cycles
        {
            self.breakevens[ctx.index()]
        } else {
            f64::INFINITY
        };

        if node.children.is_empty() {
            if own.is_finite() {
                out.push(ctx);
            }
            return own;
        }

        let mut child_leaves = Vec::new();
        let mut best_child = f64::INFINITY;
        for &child in &node.children {
            best_child = best_child.min(self.trim(child, true, &mut child_leaves));
        }

        // Merge the whole sub-tree into `ctx` when that is at least as
        // good (lower breakeven) as the best leaf found below — merging
        // absorbs internal communication, so this naturally maximizes
        // coverage while minimizing crossing traffic.
        if own.is_finite() && own <= best_child {
            out.push(ctx);
            own
        } else {
            out.append(&mut child_leaves);
            best_child
        }
    }
}

/// Trims the calltree of `profile` into accelerator candidates.
///
/// # Example
///
/// ```
/// use sigil_analysis::partition::{trim_calltree, PartitionConfig};
/// use sigil_core::{SigilConfig, SigilProfiler};
/// use sigil_trace::{Engine, OpClass};
///
/// let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
/// engine.scoped_named("main", |e| {
///     e.scoped_named("kernel", |e| e.op(OpClass::FloatArith, 50_000));
/// });
/// let (p, s) = engine.finish_with_symbols();
/// let profile = p.into_profile(s);
///
/// let trimmed = trim_calltree(&profile, &PartitionConfig::default());
/// assert_eq!(trimmed.leaves[0].name, "kernel");
/// assert!(trimmed.leaves[0].breakeven < 1.01, "pure compute ≈ breakeven 1");
/// ```
pub fn trim_calltree(profile: &Profile, config: &PartitionConfig) -> TrimmedTree {
    trim_calltree_prepared(&PreparedCdfg::from_profile(profile), profile, config)
}

/// Like [`trim_calltree`], reusing an already-built [`PreparedCdfg`].
pub fn trim_calltree_prepared(
    prepared: &PreparedCdfg,
    profile: &Profile,
    config: &PartitionConfig,
) -> TrimmedTree {
    let _span = sigil_obs::span("analysis:trim_calltree");
    let PreparedCdfg { cdfg, inclusive } = prepared;
    let model = profile.callgrind.cycle_model;
    let cycles: Vec<u64> = inclusive.iter().map(|i| model.estimate(&i.costs)).collect();
    let breakevens: Vec<f64> = inclusive
        .iter()
        .zip(&cycles)
        .map(|(inc, &cyc)| breakeven_for(inc, cyc, &config.bus))
        .collect();

    let trimmer = Trimmer {
        cdfg,
        inclusive,
        breakevens,
        cycles,
        config,
    };
    let mut selected = Vec::new();
    // Expand from the root's children (the program entry): neither the
    // root nor the entry function is a candidate.
    for &child in &cdfg.node(ContextId::ROOT).children {
        trimmer.trim(child, false, &mut selected);
    }

    let total_cycles = profile.callgrind.total_cycles().max(1);
    let mut leaves: Vec<Candidate> = selected
        .into_iter()
        .map(|ctx| {
            let inc = &trimmer.inclusive[ctx.index()];
            Candidate {
                ctx,
                name: cdfg.node(ctx).name.clone(),
                breakeven: trimmer.breakevens[ctx.index()],
                inclusive_cycles: trimmer.cycles[ctx.index()],
                coverage: trimmer.cycles[ctx.index()] as f64 / total_cycles as f64,
                comm_in_unique: inc.comm_in_unique,
                comm_out_unique: inc.comm_out_unique,
            }
        })
        .collect();
    leaves.sort_by(|a, b| {
        a.breakeven
            .partial_cmp(&b.breakeven)
            .expect("breakevens are never NaN")
            .then_with(|| b.inclusive_cycles.cmp(&a.inclusive_cycles))
    });
    let coverage = leaves.iter().map(|l| l.coverage).sum();
    TrimmedTree {
        leaves,
        total_cycles,
        coverage,
    }
}

/// Ranks every profiled function (best context per function) by breakeven
/// speedup, ascending. The head of the list is the paper's Table II, the
/// tail its Table III.
pub fn rank_functions(profile: &Profile, config: &PartitionConfig) -> Vec<Candidate> {
    rank_functions_prepared(&PreparedCdfg::from_profile(profile), profile, config)
}

/// Like [`rank_functions`], reusing an already-built [`PreparedCdfg`].
pub fn rank_functions_prepared(
    prepared: &PreparedCdfg,
    profile: &Profile,
    config: &PartitionConfig,
) -> Vec<Candidate> {
    use std::collections::HashMap;
    let _span = sigil_obs::span("analysis:rank_functions");
    let PreparedCdfg { cdfg, inclusive } = prepared;
    let model = profile.callgrind.cycle_model;
    let total_cycles = profile.callgrind.total_cycles().max(1);

    let mut best: HashMap<String, Candidate> = HashMap::new();
    for node in cdfg.nodes() {
        if node.func.is_none() || node.is_syscall || node.parent == Some(ContextId::ROOT) {
            continue;
        }
        let inc = &inclusive[node.ctx.index()];
        let cycles = model.estimate(&inc.costs);
        if cycles < config.min_cycles {
            continue;
        }
        let breakeven = breakeven_for(inc, cycles, &config.bus);
        if !breakeven.is_finite() {
            continue;
        }
        let candidate = Candidate {
            ctx: node.ctx,
            name: node.name.clone(),
            breakeven,
            inclusive_cycles: cycles,
            coverage: cycles as f64 / total_cycles as f64,
            comm_in_unique: inc.comm_in_unique,
            comm_out_unique: inc.comm_out_unique,
        };
        best.entry(node.name.clone())
            .and_modify(|existing| {
                if candidate.breakeven < existing.breakeven {
                    *existing = candidate.clone();
                }
            })
            .or_insert(candidate);
    }
    let mut rows: Vec<Candidate> = best.into_values().collect();
    rows.sort_by(|a, b| {
        a.breakeven
            .partial_cmp(&b.breakeven)
            .expect("breakevens are never NaN")
            .then_with(|| b.inclusive_cycles.cmp(&a.inclusive_cycles))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    /// main calls a compute-heavy kernel (little communication) and a
    /// chatty helper (communication-dominated).
    fn profile() -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            // Data prepared by main.
            e.write(0x0, 64);
            e.scoped_named("kernel", |e| {
                e.read(0x0, 64);
                e.op(OpClass::FloatArith, 100_000);
                e.write(0x1000, 64);
            });
            e.scoped_named("chatty", |e| {
                for i in 0..64u64 {
                    e.read(0x2000 + i * 8, 8);
                }
                e.op(OpClass::IntArith, 4);
                for i in 0..64u64 {
                    e.write(0x3000 + i * 8, 8);
                }
            });
            e.read(0x1000, 64);
            e.read(0x3000, 8);
        });
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn kernel_ranks_better_than_chatty() {
        let rows = rank_functions(&profile(), &PartitionConfig::default());
        let pos = |name: &str| rows.iter().position(|r| r.name == name).expect(name);
        assert!(pos("kernel") < pos("chatty"));
        let kernel = &rows[pos("kernel")];
        assert!(
            kernel.breakeven < 1.1,
            "compute-heavy ≈ 1.0, got {}",
            kernel.breakeven
        );
        let chatty = &rows[pos("chatty")];
        assert!(chatty.breakeven > kernel.breakeven);
    }

    #[test]
    fn trimmed_leaves_are_disjoint_subtrees() {
        let trimmed = trim_calltree(&profile(), &PartitionConfig::default());
        let cdfg = Cdfg::from_profile(&profile());
        for (i, a) in trimmed.leaves.iter().enumerate() {
            for b in trimmed.leaves.iter().skip(i + 1) {
                assert!(
                    !cdfg.is_in_subtree(a.ctx, b.ctx) && !cdfg.is_in_subtree(b.ctx, a.ctx),
                    "{} and {} overlap",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn coverage_is_a_fraction() {
        let trimmed = trim_calltree(&profile(), &PartitionConfig::default());
        assert!(trimmed.coverage > 0.0 && trimmed.coverage <= 1.0 + 1e-9);
        for leaf in &trimmed.leaves {
            assert!(leaf.coverage >= 0.0 && leaf.coverage <= 1.0);
        }
    }

    #[test]
    fn leaves_sorted_by_breakeven() {
        let trimmed = trim_calltree(&profile(), &PartitionConfig::default());
        for pair in trimmed.leaves.windows(2) {
            assert!(pair[0].breakeven <= pair[1].breakeven);
        }
    }

    #[test]
    fn entry_function_is_never_a_candidate() {
        // Even when merging at `main` would absorb all communication
        // (breakeven exactly 1), the top-level driver is not offloadable:
        // the leaves must be its children.
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.scoped_named("a", |e| {
                e.write(0x0, 32);
                e.op(OpClass::IntArith, 10_000);
            });
            e.scoped_named("b", |e| {
                e.read(0x0, 32);
                e.op(OpClass::IntArith, 10_000);
            });
        });
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        let trimmed = trim_calltree(&profile, &PartitionConfig::default());
        let names: Vec<&str> = trimmed.leaves.iter().map(|l| l.name.as_str()).collect();
        assert!(!names.contains(&"main"));
        assert!(names.contains(&"a") && names.contains(&"b"));
        assert!(trimmed.coverage < 1.0, "main's self cost stays uncovered");
    }

    #[test]
    fn syscalls_are_never_candidates() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.scoped_named("worker", |e| {
                e.syscall("sys_read", |e| e.write(0x0, 64));
                e.read(0x0, 64);
                e.op(OpClass::IntArith, 10_000);
            });
        });
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        let trimmed = trim_calltree(&profile, &PartitionConfig::default());
        assert!(trimmed.leaves.iter().all(|l| l.name != "sys_read"));
        let ranked = rank_functions(&profile, &PartitionConfig::default());
        assert!(ranked.iter().all(|r| r.name != "sys_read"));
        assert!(ranked.iter().all(|r| r.name != "main"));
        assert!(ranked.iter().any(|r| r.name == "worker"));
    }

    #[test]
    fn rank_functions_dedupes_contexts() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.scoped_named("p", |e| {
                e.scoped_named("d", |e| e.op(OpClass::IntArith, 100));
            });
            e.scoped_named("q", |e| {
                e.scoped_named("d", |e| e.op(OpClass::IntArith, 100));
            });
        });
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        let rows = rank_functions(&profile, &PartitionConfig::default());
        assert_eq!(rows.iter().filter(|r| r.name == "d").count(), 1);
    }
}
