//! Communication-vs-input-size scaling curves.
//!
//! The paper sweeps `simsmall`/`simmedium`/`simlarge` inputs to argue
//! that function-level communication profiles are stable properties of
//! the *algorithm*, not the input (§IV): a function whose unique input
//! bytes grow as `a·N^b` at one size keeps that exponent at the next.
//! This module fits those curves: profile a workload at each input-size
//! factor, collect per-function communication totals, and fit
//! `bytes ≈ a·N^b` by least squares in log-log space.
//!
//! Three per-function series are fitted independently — unique input
//! bytes (same-thread, cross-function), unique **inter-thread** bytes
//! (the cross-thread classification axis), and total bytes read — so
//! sharing-heavy workloads expose whether their cross-thread traffic
//! scales with the input (pipeline handoffs, exponent ≈ 1) or stays
//! flat (fixed-size shared state, exponent ≈ 0).

use serde::{Deserialize, Serialize};
use sigil_core::Profile;

/// A least-squares power-law fit `y ≈ coefficient · x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerFit {
    /// The multiplier `a` in `a·N^b`.
    pub coefficient: f64,
    /// The exponent `b` in `a·N^b`.
    pub exponent: f64,
    /// Coefficient of determination in log-log space (1.0 = perfect).
    pub r_squared: f64,
}

/// Fits `y ≈ a·x^b` through `points` by linear least squares on
/// `(ln x, ln y)`. Points with a non-positive coordinate are skipped
/// (their logarithm is undefined); `None` if fewer than two usable
/// points remain or all `x` coincide.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let mean_x = logs.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = logs.iter().map(|(_, y)| y).sum::<f64>() / n;
    let var_x = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum::<f64>();
    if var_x == 0.0 {
        return None;
    }
    let cov = logs
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum::<f64>();
    let exponent = cov / var_x;
    let intercept = mean_y - exponent * mean_x;
    let ss_tot = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum::<f64>();
    let ss_res = logs
        .iter()
        .map(|(x, y)| (y - (intercept + exponent * x)).powi(2))
        .sum::<f64>();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(PowerFit {
        coefficient: intercept.exp(),
        exponent,
        r_squared,
    })
}

/// One function's communication series across the input-size sweep,
/// with the fitted curves. The `*_bytes` vectors are indexed like the
/// sweep's factor list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionScaling {
    /// Function symbol name.
    pub name: String,
    /// Dynamic calls at each factor.
    pub calls: Vec<u64>,
    /// Unique same-thread input bytes at each factor.
    pub input_unique_bytes: Vec<u64>,
    /// Unique inter-thread input bytes at each factor.
    pub inter_thread_unique_bytes: Vec<u64>,
    /// Total bytes read at each factor.
    pub bytes_read: Vec<u64>,
    /// Fit of `input_unique_bytes` against the factors.
    pub input_fit: Option<PowerFit>,
    /// Fit of `inter_thread_unique_bytes` against the factors.
    pub inter_thread_fit: Option<PowerFit>,
    /// Fit of `bytes_read` against the factors.
    pub read_fit: Option<PowerFit>,
}

/// A workload's full input-size scaling record: per-function curves
/// plus whole-program totals — the shape committed into results JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Workload name.
    pub workload: String,
    /// Input-size work factors the sweep profiled (e.g. `[1, 4, 16]`).
    pub factors: Vec<u64>,
    /// Per-function curves, sorted by bytes read at the largest factor,
    /// descending.
    pub functions: Vec<FunctionScaling>,
    /// Whole-program unique inter-thread bytes at each factor.
    pub total_inter_thread_bytes: Vec<u64>,
    /// Whole-program bytes read at each factor.
    pub total_bytes_read: Vec<u64>,
    /// Fit of the whole-program inter-thread series.
    pub total_inter_thread_fit: Option<PowerFit>,
    /// Fit of the whole-program bytes-read series.
    pub total_read_fit: Option<PowerFit>,
}

fn fit_series(factors: &[u64], series: &[u64]) -> Option<PowerFit> {
    let points: Vec<(f64, f64)> = factors
        .iter()
        .zip(series)
        .map(|(&f, &y)| (f as f64, y as f64))
        .collect();
    fit_power_law(&points)
}

/// Builds the scaling record from one profile per input-size factor.
/// `profiles[i]` must be the run at `factors[i]`; functions absent from
/// a run contribute zeros at that factor.
///
/// # Panics
///
/// Panics if `factors` and `profiles` have different lengths.
pub fn scaling_report(workload: &str, factors: &[u64], profiles: &[Profile]) -> ScalingReport {
    assert_eq!(
        factors.len(),
        profiles.len(),
        "one profile per input-size factor"
    );
    let n = factors.len();
    let mut order: Vec<String> = Vec::new();
    let mut by_name: std::collections::HashMap<String, FunctionScaling> =
        std::collections::HashMap::new();
    for (i, profile) in profiles.iter().enumerate() {
        for row in profile.function_rows() {
            let entry = by_name.entry(row.name.clone()).or_insert_with(|| {
                order.push(row.name.clone());
                FunctionScaling {
                    name: row.name.clone(),
                    calls: vec![0; n],
                    input_unique_bytes: vec![0; n],
                    inter_thread_unique_bytes: vec![0; n],
                    bytes_read: vec![0; n],
                    input_fit: None,
                    inter_thread_fit: None,
                    read_fit: None,
                }
            });
            entry.calls[i] = row.calls;
            entry.input_unique_bytes[i] = row.comm.input_unique_bytes;
            entry.inter_thread_unique_bytes[i] = row.comm.inter_thread_unique_bytes;
            entry.bytes_read[i] = row.comm.bytes_read;
        }
    }
    let mut functions: Vec<FunctionScaling> = order
        .into_iter()
        .map(|name| {
            let mut f = by_name.remove(&name).expect("inserted above");
            f.input_fit = fit_series(factors, &f.input_unique_bytes);
            f.inter_thread_fit = fit_series(factors, &f.inter_thread_unique_bytes);
            f.read_fit = fit_series(factors, &f.bytes_read);
            f
        })
        .collect();
    functions.sort_by(|a, b| {
        let (la, lb) = (a.bytes_read[n - 1], b.bytes_read[n - 1]);
        lb.cmp(&la).then_with(|| a.name.cmp(&b.name))
    });
    let total_inter: Vec<u64> = (0..n)
        .map(|i| {
            functions
                .iter()
                .map(|f| f.inter_thread_unique_bytes[i])
                .sum()
        })
        .collect();
    let total_read: Vec<u64> = (0..n)
        .map(|i| functions.iter().map(|f| f.bytes_read[i]).sum())
        .collect();
    ScalingReport {
        workload: workload.to_owned(),
        factors: factors.to_vec(),
        total_inter_thread_fit: fit_series(factors, &total_inter),
        total_read_fit: fit_series(factors, &total_read),
        total_inter_thread_bytes: total_inter,
        total_bytes_read: total_read,
        functions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovers_parameters() {
        // y = 3 · x^2
        let points: Vec<(f64, f64)> = [1.0, 4.0, 16.0].iter().map(|&x| (x, 3.0 * x * x)).collect();
        let fit = fit_power_law(&points).expect("fits");
        assert!((fit.coefficient - 3.0).abs() < 1e-9, "{fit:?}");
        assert!((fit.exponent - 2.0).abs() < 1e-9, "{fit:?}");
        assert!((fit.r_squared - 1.0).abs() < 1e-9, "{fit:?}");
    }

    #[test]
    fn linear_scaling_has_unit_exponent() {
        let points = [(1.0, 100.0), (4.0, 400.0), (16.0, 1600.0)];
        let fit = fit_power_law(&points).expect("fits");
        assert!((fit.exponent - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_series_has_zero_exponent() {
        let points = [(1.0, 64.0), (4.0, 64.0), (16.0, 64.0)];
        let fit = fit_power_law(&points).expect("fits");
        assert!(fit.exponent.abs() < 1e-9);
        assert!((fit.coefficient - 64.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(1.0, 2.0)]).is_none());
        // Zeros are skipped, leaving one usable point.
        assert!(fit_power_law(&[(1.0, 0.0), (4.0, 8.0)]).is_none());
        // Identical x cannot determine an exponent.
        assert!(fit_power_law(&[(2.0, 1.0), (2.0, 9.0)]).is_none());
    }

    #[test]
    fn scaling_report_fits_workload_series() {
        use sigil_core::{SigilConfig, SigilProfiler};
        use sigil_trace::Engine;
        let factors = [1u64, 4, 16];
        let profiles: Vec<Profile> = factors
            .iter()
            .map(|&f| {
                let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
                engine.scoped_named("main", |e| {
                    for i in 0..f {
                        e.write(0x1000 + i * 8, 8);
                    }
                    e.scoped_named("consume", |e| {
                        for i in 0..f {
                            e.read(0x1000 + i * 8, 8);
                        }
                    });
                });
                let (p, s) = engine.finish_with_symbols();
                p.into_profile(s)
            })
            .collect();
        let report = scaling_report("toy", &factors, &profiles);
        assert_eq!(report.factors, factors);
        let consume = report
            .functions
            .iter()
            .find(|f| f.name == "consume")
            .expect("consume profiled");
        assert_eq!(consume.input_unique_bytes, vec![8, 32, 128]);
        let fit = consume.input_fit.expect("linear series fits");
        assert!((fit.exponent - 1.0).abs() < 1e-9, "{fit:?}");
        assert!(report.total_read_fit.is_some());
    }
}
