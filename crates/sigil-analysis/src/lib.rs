//! Post-processing of Sigil profiles (paper §II-C and §IV).
//!
//! Three analyses, matching the paper's case studies:
//!
//! 1. **Control data-flow graph partitioning** ([`cdfg`], [`inclusive`],
//!    [`partition`], [`breakeven`]) — build the calltree-with-dependencies
//!    graph, merge nodes so "an accelerator designed for a function node …
//!    include\[s\] all of the functions in the sub-tree", trim the tree by
//!    the *breakeven-speedup* heuristic
//!    (`S_be = t_sw / (t_sw − (t_comm:ip + t_comm:op))`, Eq. 1), and rank
//!    accelerator candidates (Figures 2 & 7, Tables II & III).
//! 2. **Data-reuse analysis** ([`reuse_analysis`]) — whole-program
//!    reuse-count breakdowns and per-function lifetime histograms
//!    (Figures 8–12).
//! 3. **Critical-path analysis** ([`critical_path`]) — dependency chains
//!    over the event file with non-blocking calls; the maximum
//!    function-level parallelism is the serial length divided by the
//!    critical-path length (Figures 3 & 13).
//!
//! # Example
//!
//! ```
//! use sigil_core::{SigilConfig, SigilProfiler};
//! use sigil_trace::{Engine, OpClass};
//! use sigil_analysis::partition::{trim_calltree, PartitionConfig};
//!
//! let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
//! engine.scoped_named("main", |e| {
//!     e.scoped_named("kernel", |e| {
//!         e.read(0x0, 64);
//!         e.op(OpClass::FloatArith, 10_000);
//!         e.write(0x100, 64);
//!     });
//! });
//! let (p, s) = engine.finish_with_symbols();
//! let profile = p.into_profile(s);
//!
//! let trimmed = trim_calltree(&profile, &PartitionConfig::default());
//! let best = &trimmed.leaves[0];
//! assert!(best.breakeven >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakeven;
pub mod buffer;
pub mod cdfg;
pub mod critical_path;
pub mod dot;
pub mod inclusive;
pub mod partition;
pub mod reuse_analysis;
pub mod scaling;
pub mod schedule;
pub mod streaming;
pub mod whatif;

pub use breakeven::{breakeven_speedup, BusModel};
pub use buffer::{bb_curve, BufferPoint};
pub use cdfg::Cdfg;
pub use critical_path::{CommModel, CriticalPath, DependencyGraph};
pub use inclusive::{inclusive_table, InclusiveCosts};
pub use partition::{
    rank_functions, rank_functions_prepared, trim_calltree, trim_calltree_prepared, Candidate,
    PartitionConfig, PreparedCdfg, TrimmedTree,
};
pub use streaming::{
    critical_path_from_bin, event_cdfg_from_bin, phase_profile_from_bin, CriticalPathFold,
    EventCdfg, EventCdfgFold, PathSummary, PhaseFold, StreamError,
};
