//! Inclusive (merged-subtree) costs and crossing communication
//! (paper Figure 2).
//!
//! "An accelerator designed for a function node in the call tree should
//! include all of the functions in the sub-tree to absorb the cost of
//! communication. … Any dashed edges within the box are then discarded
//! and edges flowing in/out of the box are accumulated into the
//! communication cost of the parent node."

use serde::{Deserialize, Serialize};
use sigil_callgrind::{ContextId, CostVec};

use crate::cdfg::Cdfg;

/// Costs of a node merged with its entire sub-tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusiveCosts {
    /// Sum of exclusive cost vectors over the sub-tree (computation).
    pub costs: CostVec,
    /// Unique bytes flowing *into* the merged box (t_comm:ip input).
    pub comm_in_unique: u64,
    /// Unique bytes flowing *out of* the merged box (t_comm:op input).
    pub comm_out_unique: u64,
    /// Non-unique bytes flowing into the box (not charged to an
    /// accelerator with an internal buffer, reported for completeness).
    pub comm_in_nonunique: u64,
    /// Non-unique bytes flowing out of the box.
    pub comm_out_nonunique: u64,
}

impl InclusiveCosts {
    /// Unique bytes crossing the box boundary in either direction.
    pub fn boundary_unique_bytes(&self) -> u64 {
        self.comm_in_unique + self.comm_out_unique
    }
}

/// Computes [`InclusiveCosts`] for **every** context of the CDFG in one
/// pass, indexed by raw context id.
///
/// For each data edge `p → c`, the edge crosses into exactly the
/// subtrees that contain `c` but not `p`: the ancestors of `c` strictly
/// below the lowest common ancestor of `p` and `c` (and symmetrically out
/// of the ancestors of `p`).
pub fn inclusive_table(cdfg: &Cdfg) -> Vec<InclusiveCosts> {
    let n = cdfg.len();
    let mut table = vec![InclusiveCosts::default(); n];

    // Computation: post-order accumulation of exclusive costs.
    // Process children before parents; contexts are created parent-first,
    // so iterating ids in reverse visits children first.
    for idx in (0..n).rev() {
        let ctx = ContextId(u32::try_from(idx).expect("context count fits u32"));
        let node = cdfg.node(ctx);
        let mut sum = node.costs;
        for &child in &node.children {
            sum += table[child.index()].costs;
        }
        table[idx].costs = sum;
    }

    // Communication: walk each edge's ancestor chains up to the LCA.
    for edge in cdfg.data_edges() {
        let lca = lowest_common_ancestor(cdfg, edge.producer, edge.consumer);
        // Into: ancestors of consumer strictly below the LCA.
        let mut cursor = Some(edge.consumer);
        while let Some(c) = cursor {
            if c == lca {
                break;
            }
            table[c.index()].comm_in_unique += edge.unique_bytes;
            table[c.index()].comm_in_nonunique += edge.nonunique_bytes;
            cursor = cdfg.node(c).parent;
        }
        // Out of: ancestors of producer strictly below the LCA.
        let mut cursor = Some(edge.producer);
        while let Some(c) = cursor {
            if c == lca {
                break;
            }
            table[c.index()].comm_out_unique += edge.unique_bytes;
            table[c.index()].comm_out_nonunique += edge.nonunique_bytes;
            cursor = cdfg.node(c).parent;
        }
    }
    table
}

/// Lowest common calltree ancestor of `a` and `b`.
pub fn lowest_common_ancestor(cdfg: &Cdfg, a: ContextId, b: ContextId) -> ContextId {
    let mut da = cdfg.depth(a);
    let mut db = cdfg.depth(b);
    let (mut a, mut b) = (a, b);
    while da > db {
        a = cdfg.node(a).parent.expect("deeper node has a parent");
        da -= 1;
    }
    while db > da {
        b = cdfg.node(b).parent.expect("deeper node has a parent");
        db -= 1;
    }
    while a != b {
        a = cdfg.node(a).parent.expect("nodes share the root");
        b = cdfg.node(b).parent.expect("nodes share the root");
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    /// The paper's toy shape: main → {A → {C, D1}, B → D2}; C produces
    /// data that D2 (under B) consumes, plus A-local traffic.
    fn toy() -> (Cdfg, Vec<InclusiveCosts>) {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.scoped_named("A", |e| {
                e.op(OpClass::IntArith, 10);
                e.scoped_named("C", |e| {
                    e.op(OpClass::IntArith, 20);
                    e.write(0x0, 16); // consumed by D under B (crosses A's box)
                    e.write(0x100, 8); // consumed by D under A (inside A's box)
                });
                e.scoped_named("D", |e| {
                    e.read(0x100, 8);
                    e.op(OpClass::IntArith, 5);
                });
            });
            e.scoped_named("B", |e| {
                e.scoped_named("D", |e| {
                    e.read(0x0, 16);
                    e.op(OpClass::IntArith, 5);
                });
            });
        });
        let (p, s) = engine.finish_with_symbols();
        let profile = p.into_profile(s);
        let cdfg = Cdfg::from_profile(&profile);
        let table = inclusive_table(&cdfg);
        (cdfg, table)
    }

    fn ctx_of(cdfg: &Cdfg, name: &str) -> ContextId {
        cdfg.nodes()
            .iter()
            .find(|n| n.name == name)
            .unwrap_or_else(|| panic!("node {name}"))
            .ctx
    }

    #[test]
    fn merging_discards_internal_edges() {
        let (cdfg, table) = toy();
        let a = ctx_of(&cdfg, "A");
        let inc = table[a.index()];
        // The C→D1 8-byte edge is inside A's box: discarded.
        // The C→D2 16-byte edge crosses out of A's box.
        assert_eq!(inc.comm_out_unique, 16);
        assert_eq!(inc.comm_in_unique, 0);
    }

    #[test]
    fn inclusive_costs_sum_subtree_ops() {
        let (cdfg, table) = toy();
        let a = ctx_of(&cdfg, "A");
        // A self 10 + C 20 + D1 5 = 35 compute ops.
        assert_eq!(table[a.index()].costs.ops_total(), 35);
    }

    #[test]
    fn leaf_inclusive_equals_exclusive() {
        let (cdfg, table) = toy();
        let c = ctx_of(&cdfg, "C");
        assert_eq!(table[c.index()].costs, cdfg.node(c).costs);
        // C produces both buffers; all 24 bytes leave C's own box.
        assert_eq!(table[c.index()].comm_out_unique, 24);
    }

    #[test]
    fn consumer_box_counts_inflow() {
        let (cdfg, table) = toy();
        let b = ctx_of(&cdfg, "B");
        assert_eq!(table[b.index()].comm_in_unique, 16);
        assert_eq!(table[b.index()].comm_out_unique, 0);
        assert_eq!(table[b.index()].boundary_unique_bytes(), 16);
    }

    #[test]
    fn root_box_has_no_crossing_traffic() {
        let (_cdfg, table) = toy();
        // Everything is inside the root box except synthetic root input
        // (none here: all reads had producers).
        let root = &table[ContextId::ROOT.index()];
        assert_eq!(root.comm_in_unique, 0);
        assert_eq!(root.comm_out_unique, 0);
    }

    #[test]
    fn lca_basics() {
        let (cdfg, _) = toy();
        let a = ctx_of(&cdfg, "A");
        let b = ctx_of(&cdfg, "B");
        let c = ctx_of(&cdfg, "C");
        let main = ctx_of(&cdfg, "main");
        assert_eq!(lowest_common_ancestor(&cdfg, a, b), main);
        assert_eq!(lowest_common_ancestor(&cdfg, c, a), a);
        assert_eq!(lowest_common_ancestor(&cdfg, c, c), c);
    }
}
