//! The breakeven-speedup metric (paper Eq. 1).

use serde::{Deserialize, Serialize};

use crate::inclusive::InclusiveCosts;

/// Fixed SoC-bus model converting offloaded bytes into transfer cycles.
///
/// The paper computes "the hardware offload time … as the time to
/// communicate data to and from the accelerator assuming a fixed SoC bus
/// bandwidth".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusModel {
    /// Bus bandwidth in bytes per estimated CPU cycle.
    pub bytes_per_cycle: f64,
    /// Fixed per-offload latency in cycles (request setup, DMA kickoff).
    pub fixed_latency_cycles: f64,
}

impl BusModel {
    /// A plausible SoC bus: 8 bytes/cycle, 100-cycle setup.
    pub const fn soc_default() -> Self {
        BusModel {
            bytes_per_cycle: 8.0,
            fixed_latency_cycles: 100.0,
        }
    }

    /// Cycles needed to move `bytes` across the bus.
    pub fn transfer_cycles(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.fixed_latency_cycles + bytes as f64 / self.bytes_per_cycle
    }
}

impl Default for BusModel {
    fn default() -> Self {
        BusModel::soc_default()
    }
}

/// Computes the breakeven speedup (Eq. 1):
///
/// ```text
/// S_breakeven = t_sw / (t_sw − (t_comm:ip:accel + t_comm:op:accel))
/// ```
///
/// `t_sw` is the software execution time of the candidate (estimated
/// cycles of the merged sub-tree); `t_comm` the input/output data-offload
/// cost. "Any computational speedup obtained in excess of the
/// breakeven-speedup will result in an overall improvement."
///
/// Returns `f64::INFINITY` — the documented "can never pay off" sentinel
/// — whenever the denominator would be zero or negative, i.e. when
/// communication costs meet or exceed the software time, when `t_sw` is
/// not a positive finite number, or when either communication cost is
/// non-finite. Negative communication costs are clamped to zero (costs
/// are magnitudes; a negative estimate is a modelling artifact, not a
/// credit). The result is therefore always in `[1.0, INFINITY]` and
/// `NAN` never.
///
/// # Example
///
/// ```
/// use sigil_analysis::breakeven_speedup;
///
/// // 1000 cycles of software time, 50 cycles of offload traffic each way:
/// let s = breakeven_speedup(1000.0, 50.0, 50.0);
/// assert!((s - 1000.0 / 900.0).abs() < 1e-12);
///
/// // Communication-dominated candidates can never pay off:
/// assert_eq!(breakeven_speedup(100.0, 80.0, 30.0), f64::INFINITY);
///
/// // Degenerate inputs hit the sentinel instead of propagating NaN:
/// assert_eq!(breakeven_speedup(f64::NAN, 0.0, 0.0), f64::INFINITY);
/// assert_eq!(breakeven_speedup(f64::INFINITY, 10.0, 0.0), f64::INFINITY);
/// ```
pub fn breakeven_speedup(t_sw: f64, t_comm_in: f64, t_comm_out: f64) -> f64 {
    if !t_sw.is_finite() || t_sw <= 0.0 {
        return f64::INFINITY;
    }
    if !t_comm_in.is_finite() || !t_comm_out.is_finite() {
        return f64::INFINITY;
    }
    let comm = t_comm_in.max(0.0) + t_comm_out.max(0.0);
    if comm >= t_sw {
        f64::INFINITY
    } else {
        t_sw / (t_sw - comm)
    }
}

/// Breakeven speedup of a merged sub-tree under a bus model, with `t_sw`
/// provided by the caller (estimated cycles of the sub-tree).
pub fn breakeven_for(inclusive: &InclusiveCosts, t_sw_cycles: u64, bus: &BusModel) -> f64 {
    breakeven_speedup(
        t_sw_cycles as f64,
        bus.transfer_cycles(inclusive.comm_in_unique),
        bus.transfer_cycles(inclusive.comm_out_unique),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_communication_gives_breakeven_one() {
        assert_eq!(breakeven_speedup(1000.0, 0.0, 0.0), 1.0);
    }

    #[test]
    fn small_communication_gives_slightly_above_one() {
        let s = breakeven_speedup(1000.0, 5.0, 5.0);
        assert!((s - 1000.0 / 990.0).abs() < 1e-12);
        assert!(s > 1.0 && s < 1.02);
    }

    #[test]
    fn communication_dominates_gives_infinity() {
        assert_eq!(breakeven_speedup(100.0, 60.0, 50.0), f64::INFINITY);
        assert_eq!(breakeven_speedup(100.0, 100.0, 0.0), f64::INFINITY);
        assert_eq!(breakeven_speedup(0.0, 0.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn boundary_both_sides() {
        // Exactly at the boundary (comm == t_sw): denominator would be
        // zero — sentinel, not a division by zero.
        assert_eq!(breakeven_speedup(100.0, 50.0, 50.0), f64::INFINITY);
        // One ULP-ish below the boundary: huge but finite, never NaN.
        let s = breakeven_speedup(100.0, 50.0, 49.999_999);
        assert!(s.is_finite() && s > 1.0e6, "got {s}");
        // One step above the boundary: sentinel again.
        assert_eq!(breakeven_speedup(100.0, 50.0, 50.000_001), f64::INFINITY);
    }

    #[test]
    fn degenerate_inputs_hit_sentinel_never_nan() {
        for s in [
            breakeven_speedup(f64::NAN, 10.0, 10.0),
            breakeven_speedup(f64::INFINITY, 10.0, 10.0),
            breakeven_speedup(-100.0, 10.0, 10.0),
            breakeven_speedup(100.0, f64::NAN, 0.0),
            breakeven_speedup(100.0, 0.0, f64::NAN),
            breakeven_speedup(100.0, f64::INFINITY, 0.0),
            breakeven_speedup(100.0, f64::NEG_INFINITY, 0.0),
        ] {
            assert_eq!(s, f64::INFINITY);
        }
    }

    #[test]
    fn negative_communication_clamps_to_zero() {
        // A negative cost estimate is treated as zero, not as a credit
        // that could push the result below 1.0.
        assert_eq!(breakeven_speedup(1000.0, -50.0, 0.0), 1.0);
        let s = breakeven_speedup(1000.0, -50.0, 100.0);
        assert!((s - 1000.0 / 900.0).abs() < 1e-12);
        assert!(breakeven_speedup(1000.0, -1.0, 5.0) >= 1.0);
    }

    #[test]
    fn breakeven_is_monotonic_in_communication() {
        let mut last = breakeven_speedup(1000.0, 0.0, 0.0);
        for comm in [10.0, 100.0, 500.0, 900.0] {
            let s = breakeven_speedup(1000.0, comm, 0.0);
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    fn bus_model_charges_latency_plus_bytes() {
        let bus = BusModel::soc_default();
        assert_eq!(bus.transfer_cycles(0), 0.0);
        assert_eq!(bus.transfer_cycles(800), 100.0 + 100.0);
    }

    #[test]
    fn breakeven_for_combines_bus_and_cycles() {
        let inclusive = InclusiveCosts {
            comm_in_unique: 80,
            comm_out_unique: 0,
            ..InclusiveCosts::default()
        };
        let bus = BusModel {
            bytes_per_cycle: 8.0,
            fixed_latency_cycles: 0.0,
        };
        // t_comm = 10 cycles, t_sw = 100 → 100/90.
        let s = breakeven_for(&inclusive, 100, &bus);
        assert!((s - 100.0 / 90.0).abs() < 1e-12);
    }
}
