//! Accelerator-buffer sizing from reuse lifetimes (paper §IV-B2).
//!
//! "The re-use data captured by Sigil shows how many data bytes need to
//! stay in an accelerator's local buffer after being consumed once. This
//! will help determine buffer sizes based on an execution schedule for
//! the function. For example, Cong et al. use the concept of BB-curves
//! that indicate tradeoffs in increasing local buffer area for an
//! accelerated function against external bandwidth pressure."
//!
//! This module derives that buffer/bandwidth curve from a function's
//! reuse-lifetime histogram: a buffer that retains data for up to `L`
//! retired ops captures every reuse with lifetime ≤ `L`; reuses with
//! longer lifetimes fall out of the buffer and must be re-fetched over
//! the external interface.

use serde::{Deserialize, Serialize};
use sigil_core::Profile;

/// One point of the buffer/bandwidth trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferPoint {
    /// Retention window: the buffer keeps a byte for this many retired
    /// ops after its first read.
    pub retention_ops: u64,
    /// Reused byte-records whose whole reuse lifetime fits the window —
    /// served from the local buffer.
    pub buffered_bytes: u64,
    /// Reused byte-records whose lifetime exceeds the window — re-fetched
    /// externally.
    pub refetched_bytes: u64,
}

impl BufferPoint {
    /// Fraction of reuse traffic absorbed by the buffer, in `[0, 1]`.
    pub fn hit_fraction(&self) -> f64 {
        let total = self.buffered_bytes + self.refetched_bytes;
        if total == 0 {
            1.0
        } else {
            self.buffered_bytes as f64 / total as f64
        }
    }
}

/// The buffer/bandwidth curve of one function (merged over its
/// contexts), one point per non-empty lifetime bin plus the all-external
/// origin. Requires a reuse-mode profile.
///
/// Returns `None` if the profile lacks reuse data or the function never
/// reused a byte.
///
/// # Example
///
/// ```
/// use sigil_analysis::bb_curve;
/// use sigil_core::{SigilConfig, SigilProfiler};
/// use sigil_trace::{Engine, OpClass};
///
/// let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_reuse_mode()));
/// engine.scoped_named("main", |e| {
///     e.scoped_named("w", |e| e.write(0x0, 8));
///     e.scoped_named("kernel", |e| {
///         e.read(0x0, 8);
///         e.op(OpClass::IntArith, 50);
///         e.read(0x0, 8); // quick reuse
///     });
/// });
/// let (p, s) = engine.finish_with_symbols();
/// let profile = p.into_profile(s);
///
/// let curve = bb_curve(&profile, "kernel").expect("kernel reuses data");
/// assert_eq!(curve.last().unwrap().refetched_bytes, 0);
/// ```
pub fn bb_curve(profile: &Profile, function: &str) -> Option<Vec<BufferPoint>> {
    let reuse = profile.context_reuse_by_name(function)?;
    let total = reuse.histogram.total();
    if total == 0 {
        return None;
    }
    let mut points = vec![BufferPoint {
        retention_ops: 0,
        buffered_bytes: 0,
        refetched_bytes: total,
    }];
    let mut cumulative = 0u64;
    for (bin_start, count) in reuse.histogram.iter() {
        cumulative += count;
        points.push(BufferPoint {
            // Retaining through the end of this bin captures all its
            // records.
            retention_ops: bin_start + reuse.histogram.bin_size,
            buffered_bytes: cumulative,
            refetched_bytes: total - cumulative,
        });
    }
    Some(points)
}

/// The smallest retention window that absorbs at least `fraction` of the
/// function's reuse traffic (e.g. `0.95` for a 95% local-hit target).
///
/// Returns `None` under the same conditions as [`bb_curve`].
///
/// # Panics
///
/// Panics if `fraction` is not within `[0, 1]`.
pub fn retention_for_hit_fraction(profile: &Profile, function: &str, fraction: f64) -> Option<u64> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let curve = bb_curve(profile, function)?;
    curve
        .iter()
        .find(|p| p.hit_fraction() >= fraction)
        .map(|p| p.retention_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_core::{SigilConfig, SigilProfiler};
    use sigil_trace::{Engine, OpClass};

    fn reuse_profile() -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_reuse_mode()));
        engine.scoped_named("main", |e| {
            e.scoped_named("prep", |e| e.write(0x0, 16));
            e.scoped_named("kernel", |e| {
                // 8 bytes reused quickly (lifetime < 1000)…
                e.read(0x0, 8);
                e.op(OpClass::IntArith, 10);
                e.read(0x0, 8);
                // …and 8 bytes reused after a long gap (lifetime ≈ 5000).
                e.read(0x8, 8);
                e.op(OpClass::IntArith, 5000);
                e.read(0x8, 8);
            });
        });
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn curve_is_monotonic_and_exhaustive() {
        let profile = reuse_profile();
        let curve = bb_curve(&profile, "kernel").expect("kernel reuses");
        assert!(curve.len() >= 3);
        assert_eq!(curve[0].buffered_bytes, 0);
        for pair in curve.windows(2) {
            assert!(pair[0].retention_ops < pair[1].retention_ops);
            assert!(pair[0].buffered_bytes <= pair[1].buffered_bytes);
            assert!(pair[0].refetched_bytes >= pair[1].refetched_bytes);
        }
        let last = curve.last().expect("non-empty");
        assert_eq!(last.refetched_bytes, 0, "largest window buffers all");
        assert_eq!(last.hit_fraction(), 1.0);
    }

    #[test]
    fn short_window_captures_only_quick_reuse() {
        let profile = reuse_profile();
        let curve = bb_curve(&profile, "kernel").expect("kernel reuses");
        // A 1000-op window buffers the 8 quick bytes, not the slow ones.
        let small = curve
            .iter()
            .find(|p| p.retention_ops == 1000)
            .expect("bin 0 point");
        assert_eq!(small.buffered_bytes, 8);
        assert_eq!(small.refetched_bytes, 8);
        assert!((small.hit_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn retention_targets() {
        let profile = reuse_profile();
        let half = retention_for_hit_fraction(&profile, "kernel", 0.5).expect("reaches 50%");
        let all = retention_for_hit_fraction(&profile, "kernel", 1.0).expect("reaches 100%");
        assert!(half <= all);
        assert_eq!(half, 1000);
        assert!(all >= 5000);
    }

    #[test]
    fn requires_reuse_mode_and_actual_reuse() {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("f", |e| e.op(OpClass::IntArith, 1));
        let (p, s) = engine.finish_with_symbols();
        let plain = p.into_profile(s);
        assert!(bb_curve(&plain, "f").is_none());

        let profile = reuse_profile();
        assert!(bb_curve(&profile, "prep").is_none(), "prep never reused");
        assert!(bb_curve(&profile, "missing").is_none());
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn invalid_fraction_rejected() {
        let profile = reuse_profile();
        let _ = retention_for_hit_fraction(&profile, "kernel", 1.5);
    }
}
