//! Property tests: the two-level shadow table must behave exactly like a
//! reference `HashMap` model when no memory limit is configured.

use std::collections::HashMap;

use proptest::prelude::*;
use sigil_mem::{EvictionPolicy, ShadowTable};

#[derive(Debug, Clone)]
enum Action {
    Write(u64, u32),
    Read(u64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    // Cluster addresses so chunks are shared sometimes and distinct other
    // times; include some far-apart regions.
    let addr = prop_oneof![
        0u64..0x4000,
        0x10_0000u64..0x10_4000,
        (u64::MAX - 0x4000)..u64::MAX,
    ];
    prop_oneof![
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Action::Write(a, v)),
        addr.prop_map(Action::Read),
    ]
}

proptest! {
    #[test]
    fn unbounded_table_matches_hashmap_model(actions in prop::collection::vec(action_strategy(), 1..200)) {
        let mut table: ShadowTable<u32> = ShadowTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for action in actions {
            match action {
                Action::Write(addr, value) => {
                    *table.slot_mut(addr) = value;
                    model.insert(addr, value);
                }
                Action::Read(addr) => {
                    let got = table.get(addr).copied();
                    match model.get(&addr) {
                        Some(&v) => prop_assert_eq!(got, Some(v)),
                        // Untouched address: either chunk absent (None) or
                        // default-initialized (0).
                        None => prop_assert!(got.is_none() || got == Some(0)),
                    }
                }
            }
        }
        prop_assert_eq!(table.evicted_chunks(), 0);
    }

    #[test]
    fn limited_table_never_exceeds_chunk_budget(
        limit in 1usize..8,
        addrs in prop::collection::vec(any::<u64>(), 1..300),
        lru in any::<bool>(),
    ) {
        let policy = if lru { EvictionPolicy::Lru } else { EvictionPolicy::Fifo };
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(limit, policy);
        for addr in addrs {
            *table.slot_mut(addr) = 1;
            prop_assert!(table.chunk_count() <= limit);
        }
    }

    #[test]
    fn resident_values_are_always_authoritative(
        limit in 2usize..6,
        writes in prop::collection::vec((any::<u64>(), any::<u8>()), 1..200),
    ) {
        // Even with eviction, any value still resident must be the last
        // value written to that address.
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(limit, EvictionPolicy::Fifo);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (addr, value) in writes {
            *table.slot_mut(addr) = value;
            model.insert(addr, value);
        }
        for (&addr, &expected) in &model {
            if let Some(&got) = table.get(addr) {
                // A resident slot is either untouched-default (its chunk was
                // evicted and re-created by a neighbour) or the true value.
                prop_assert!(got == expected || got == 0);
            }
        }
    }
}
