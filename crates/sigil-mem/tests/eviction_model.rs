//! Property tests pinning the limited `ShadowTable` to an executable
//! reference model: a deliberately naive chunk map with explicit FIFO /
//! LRU bookkeeping. The real table's slab recycling, intrusive recency
//! list, and one-entry MRU cache must be invisible — same victims, same
//! eviction counts, same visible slot values as the model.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sigil_mem::{EvictionPolicy, ShadowTable, CHUNK_SLOTS};

/// Chunk-granular reference implementation of the eviction semantics.
struct ModelTable {
    /// key -> (alloc sequence, last-touch sequence, slot values).
    chunks: BTreeMap<u64, (u64, u64, BTreeMap<u64, u32>)>,
    limit: usize,
    policy: EvictionPolicy,
    seq: u64,
    evicted: u64,
}

impl ModelTable {
    fn new(limit: usize, policy: EvictionPolicy) -> Self {
        ModelTable {
            chunks: BTreeMap::new(),
            limit,
            policy,
            seq: 0,
            evicted: 0,
        }
    }

    fn key(addr: u64) -> u64 {
        addr / CHUNK_SLOTS as u64
    }

    fn write(&mut self, addr: u64, value: u32) {
        let key = Self::key(addr);
        self.seq += 1;
        if let Some((_, touch, slots)) = self.chunks.get_mut(&key) {
            *touch = self.seq;
            slots.insert(addr, value);
            return;
        }
        while self.chunks.len() >= self.limit {
            let victim = match self.policy {
                EvictionPolicy::Fifo => self
                    .chunks
                    .iter()
                    .min_by_key(|(_, (alloc, _, _))| *alloc)
                    .map(|(&k, _)| k),
                EvictionPolicy::Lru => self
                    .chunks
                    .iter()
                    .min_by_key(|(_, (_, touch, _))| *touch)
                    .map(|(&k, _)| k),
            };
            let victim = victim.expect("limit >= 1 and table over limit");
            self.chunks.remove(&victim);
            self.evicted += 1;
        }
        self.chunks
            .insert(key, (self.seq, self.seq, BTreeMap::from([(addr, value)])));
    }

    /// Visible slot value: `None` if the chunk is not resident, the
    /// written value or the default 0 otherwise.
    fn get(&self, addr: u64) -> Option<u32> {
        self.chunks
            .get(&Self::key(addr))
            .map(|(_, _, slots)| slots.get(&addr).copied().unwrap_or(0))
    }
}

#[derive(Debug, Clone)]
enum Action {
    Write(u64, u32),
    Read(u64),
    Clear,
}

/// Ranged-access action vocabulary for the run-vs-slot twin test.
#[derive(Debug, Clone)]
enum RangedAction {
    /// Write `len` slots starting at `addr`; slot `i` gets `value + i`.
    Write(u64, usize, u32),
    Read(u64),
    Clear,
}

fn addr_strategy() -> impl Strategy<Value = u64> + Clone {
    // A handful of chunks so evictions and revisits are frequent.
    (0u64..12, 0u64..CHUNK_SLOTS as u64).prop_map(|(chunk, off)| chunk * CHUNK_SLOTS as u64 + off)
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (addr_strategy(), any::<u32>()).prop_map(|(a, v)| Action::Write(a, v)),
        addr_strategy().prop_map(Action::Read),
        (0u8..40).prop_map(|roll| {
            if roll == 0 {
                Action::Clear
            } else {
                Action::Read(u64::from(roll))
            }
        }),
    ]
}

fn check_against_model(
    actions: &[Action],
    limit: usize,
    policy: EvictionPolicy,
) -> Result<(), TestCaseError> {
    let mut table: ShadowTable<u32> = ShadowTable::with_chunk_limit(limit, policy);
    let mut model = ModelTable::new(limit, policy);
    for action in actions {
        match *action {
            Action::Write(addr, value) => {
                *table.slot_mut(addr) = value;
                model.write(addr, value);
            }
            Action::Read(addr) => {
                // Exercises both the MRU-cached and the probing read path.
                prop_assert_eq!(table.get(addr).copied(), model.get(addr), "read {}", addr);
            }
            Action::Clear => {
                table.clear();
                model = ModelTable::new(limit, policy);
            }
        }
        prop_assert!(
            table.chunk_count() <= limit,
            "resident {} exceeds limit {}",
            table.chunk_count(),
            limit
        );
        prop_assert_eq!(table.evicted_chunks(), model.evicted);
    }
    // Final sweep: every address the model knows about must agree, so
    // victim selection matched the model on every eviction along the way.
    let resident: Vec<u64> = model.chunks.keys().copied().collect();
    prop_assert_eq!(table.chunk_count(), resident.len());
    for key in 0u64..12 {
        let probe = key * CHUNK_SLOTS as u64;
        prop_assert_eq!(
            table.get(probe).is_some(),
            resident.contains(&key),
            "chunk {} residency",
            key
        );
    }
    Ok(())
}

/// Start addresses biased toward the 4 KiB chunk split so ranged writes
/// routinely straddle a boundary (and, under a tight limit, evict their
/// own first chunk mid-access).
fn ranged_addr_strategy() -> impl Strategy<Value = u64> + Clone {
    let chunk = CHUNK_SLOTS as u64;
    (
        0u64..6,
        prop_oneof![0u64..24, (CHUNK_SLOTS as u64 - 24)..CHUNK_SLOTS as u64],
    )
        .prop_map(move |(c, off)| c * chunk + off)
}

fn ranged_action_strategy() -> impl Strategy<Value = RangedAction> {
    // The vendored proptest's `prop_oneof!` has no weight syntax; bias
    // toward short writes by folding the rare variants into one roll.
    prop_oneof![
        // Short runs: the common case, often crossing one boundary.
        (ranged_addr_strategy(), 1usize..48, any::<u32>())
            .prop_map(|(a, n, v)| RangedAction::Write(a, n, v)),
        ranged_addr_strategy().prop_map(RangedAction::Read),
        (
            ranged_addr_strategy(),
            0usize..CHUNK_SLOTS + 64,
            any::<u32>(),
            0u8..8
        )
            .prop_map(|(a, n, v, roll)| match roll {
                // Clears are rare so eviction histories grow long.
                0 => RangedAction::Clear,
                // Long runs spanning a whole chunk plus change: two
                // boundary crossings in one access.
                1 => RangedAction::Write(a, CHUNK_SLOTS + n % 64, v),
                _ => RangedAction::Write(a, 1 + n % 48, v),
            }),
    ]
}

/// `run_mut`-based writes must be observably identical to `slot_mut`
/// loops: same visible values, same residency, same victims, and the
/// same access/MRU/probe counters (the run API's own `runs`/`run_bytes`
/// counters are the one intentional difference, normalized out here).
fn check_runs_match_slot_loops(
    actions: &[RangedAction],
    limit: usize,
    policy: EvictionPolicy,
) -> Result<(), TestCaseError> {
    let mut by_run: ShadowTable<u32> = ShadowTable::with_chunk_limit(limit, policy);
    let mut by_slot: ShadowTable<u32> = ShadowTable::with_chunk_limit(limit, policy);
    for (step, action) in actions.iter().enumerate() {
        match *action {
            RangedAction::Write(addr, len, value) => {
                let mut runs = by_run.runs_mut(addr, len);
                let mut i = 0u32;
                while let Some((_, slots)) = runs.next_run() {
                    for slot in slots {
                        *slot = value.wrapping_add(i);
                        i += 1;
                    }
                }
                for j in 0..len {
                    *by_slot.slot_mut(addr + j as u64) = value.wrapping_add(j as u32);
                }
            }
            RangedAction::Read(addr) => {
                prop_assert_eq!(
                    by_run.get(addr).copied(),
                    by_slot.get(addr).copied(),
                    "read {} at step {}",
                    addr,
                    step
                );
            }
            RangedAction::Clear => {
                by_run.clear();
                by_slot.clear();
            }
        }
        prop_assert_eq!(
            by_run.chunk_count(),
            by_slot.chunk_count(),
            "residency at step {}",
            step
        );
        let mut a = by_run.stats();
        let mut b = by_slot.stats();
        prop_assert_eq!(a.run_bytes, a.accesses, "runs cover every access");
        a.runs = 0;
        a.run_bytes = 0;
        b.runs = 0;
        b.run_bytes = 0;
        prop_assert_eq!(a, b, "stats at step {}", step);
    }
    // Final sweep across every chunk the strategy can touch, plus both
    // sides of each split: identical visibility means identical victim
    // selection on every eviction along the way.
    let chunk = CHUNK_SLOTS as u64;
    for c in 0u64..8 {
        for probe in [c * chunk, c * chunk + 1, (c + 1) * chunk - 1] {
            prop_assert_eq!(
                by_run.get(probe).copied(),
                by_slot.get(probe).copied(),
                "final probe {}",
                probe
            );
        }
    }
    Ok(())
}

/// Applies one action to a table; returns what a reader would observe.
fn apply(table: &mut ShadowTable<u32>, action: &Action) -> Option<u32> {
    match *action {
        Action::Write(addr, value) => {
            *table.slot_mut(addr) = value;
            None
        }
        Action::Read(addr) => table.get(addr).copied(),
        Action::Clear => {
            table.clear();
            None
        }
    }
}

/// `clear()` documents "as if the table had just been constructed with
/// the same limit and policy". Pin that: dirty a table (slab recycling,
/// free list, MRU cache, eviction counters all populated), `clear()` it,
/// and replay an arbitrary action suffix against a genuinely fresh twin.
/// Every observable — read values, residency, eviction counters, and the
/// MRU-hit/probe split — must stay identical step for step.
fn check_clear_equals_fresh(
    warmup: &[Action],
    suffix: &[Action],
    limit: usize,
    policy: EvictionPolicy,
) -> Result<(), TestCaseError> {
    let mut cleared: ShadowTable<u32> = ShadowTable::with_chunk_limit(limit, policy);
    for action in warmup {
        apply(&mut cleared, action);
    }
    cleared.clear();
    let mut fresh: ShadowTable<u32> = ShadowTable::with_chunk_limit(limit, policy);
    prop_assert_eq!(cleared.stats(), fresh.stats(), "stats right after clear");
    for (step, action) in suffix.iter().enumerate() {
        let a = apply(&mut cleared, action);
        let b = apply(&mut fresh, action);
        prop_assert_eq!(a, b, "observed value at step {}", step);
        prop_assert_eq!(
            cleared.chunk_count(),
            fresh.chunk_count(),
            "residency at step {}",
            step
        );
        prop_assert_eq!(cleared.stats(), fresh.stats(), "stats at step {}", step);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fifo_matches_reference_model(
        actions in prop::collection::vec(action_strategy(), 1..250),
        limit in 1usize..6,
    ) {
        check_against_model(&actions, limit, EvictionPolicy::Fifo)?;
    }

    #[test]
    fn lru_matches_reference_model(
        actions in prop::collection::vec(action_strategy(), 1..250),
        limit in 1usize..6,
    ) {
        check_against_model(&actions, limit, EvictionPolicy::Lru)?;
    }

    #[test]
    fn cleared_table_is_indistinguishable_from_fresh_fifo(
        warmup in prop::collection::vec(action_strategy(), 0..200),
        suffix in prop::collection::vec(action_strategy(), 1..200),
        limit in 1usize..6,
    ) {
        check_clear_equals_fresh(&warmup, &suffix, limit, EvictionPolicy::Fifo)?;
    }

    #[test]
    fn cleared_table_is_indistinguishable_from_fresh_lru(
        warmup in prop::collection::vec(action_strategy(), 0..200),
        suffix in prop::collection::vec(action_strategy(), 1..200),
        limit in 1usize..6,
    ) {
        check_clear_equals_fresh(&warmup, &suffix, limit, EvictionPolicy::Lru)?;
    }

    #[test]
    fn ranged_writes_match_slot_loops_fifo(
        actions in prop::collection::vec(ranged_action_strategy(), 1..120),
        limit in 1usize..5,
    ) {
        check_runs_match_slot_loops(&actions, limit, EvictionPolicy::Fifo)?;
    }

    #[test]
    fn ranged_writes_match_slot_loops_lru(
        actions in prop::collection::vec(ranged_action_strategy(), 1..120),
        limit in 1usize..5,
    ) {
        check_runs_match_slot_loops(&actions, limit, EvictionPolicy::Lru)?;
    }

    #[test]
    fn mru_cached_reads_agree_with_uncached_get(
        writes in prop::collection::vec((addr_strategy(), any::<u32>()), 1..200),
    ) {
        // Unbounded table: every written value stays visible. Reading
        // immediately after a write goes through the MRU cache; reading
        // after touching a different chunk goes through the hash probe.
        // Both must agree with a flat address->value model.
        let mut table: ShadowTable<u32> = ShadowTable::new();
        let mut flat: BTreeMap<u64, u32> = BTreeMap::new();
        for &(addr, value) in &writes {
            *table.slot_mut(addr) = value;
            flat.insert(addr, value);
            prop_assert_eq!(table.get(addr), Some(&value), "hot read-after-write");
        }
        for (&addr, &value) in &flat {
            prop_assert_eq!(table.get(addr), Some(&value), "cold probe of {}", addr);
        }
        let stats = table.stats();
        prop_assert_eq!(stats.accesses, writes.len() as u64);
        prop_assert_eq!(stats.mru_hits + stats.table_probes, stats.accesses);
    }
}
