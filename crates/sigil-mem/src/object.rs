//! The per-byte shadow object (paper Table I).

use serde::{Deserialize, Serialize};
use sigil_trace::{CallNumber, Timestamp};

/// Identity of the entity that last wrote or read a shadowed byte: a
/// function (in practice a *function context*, see `sigil-callgrind`)
/// together with the dynamic call number of that access.
///
/// The paper's shadow object stores a "pointer to function" plus a "call
/// number"; we store a dense context index plus the global call number,
/// which carries the same information without raw pointers. The guest
/// thread is carried alongside: call numbers are globally unique, so two
/// owners can only collide across threads at the shared root frame
/// (`call == 0`), and the thread field is what keeps per-thread root
/// frames distinct — and what lets the profiler classify a read whose
/// last writer ran on another thread as inter-thread input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Owner {
    /// Dense index of the owning function context.
    pub ctx: u32,
    /// Guest thread the access ran on (raw [`sigil_trace::ThreadId`]).
    pub thread: u32,
    /// Dynamic call during which the access happened.
    pub call: CallNumber,
}

impl Owner {
    /// Creates an owner record.
    pub const fn new(ctx: u32, call: CallNumber, thread: u32) -> Self {
        Owner { ctx, call, thread }
    }
}

/// Reuse-mode extension of the shadow object (paper Table I, "Additional
/// variables for Reuse mode").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseInfo {
    /// Number of times the byte was accessed beyond its first read
    /// ("re-use count").
    pub reuse_count: u64,
    /// Timestamp of the first read of the current value
    /// ("re-use lifetime start").
    pub first_access: Timestamp,
    /// Timestamp of the latest read of the current value
    /// ("re-use lifetime finish").
    pub last_access: Timestamp,
}

impl ReuseInfo {
    /// The reuse lifetime: retired-op distance between first and last
    /// access of the current value.
    pub const fn lifetime(&self) -> u64 {
        self.last_access.delta(self.first_access)
    }

    /// Records a read at `now`, updating count and lifetime bounds.
    pub fn record_read(&mut self, now: Timestamp, first_read: bool) {
        if first_read {
            self.first_access = now;
        } else {
            self.reuse_count += 1;
        }
        self.last_access = now;
    }

    /// Resets the record when the byte is overwritten (a new value begins
    /// a new lifetime).
    pub fn reset(&mut self) {
        *self = ReuseInfo::default();
    }
}

/// Shadow record for one byte of guest memory (paper Table I).
///
/// Baseline variables: last writer, last reader, last reader call. In
/// reuse mode the [`ReuseInfo`] extension is additionally maintained by
/// the profiler.
///
/// A freshly created shadow object is *invalid*: no writer, no reader.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowObject {
    /// Function context + call that last wrote this byte; `None` until the
    /// traced program first writes the byte.
    pub last_writer: Option<Owner>,
    /// Function context + call that last read this byte; `None` until the
    /// first read. The stored call number is the paper's "last reader
    /// call" field.
    pub last_reader: Option<Owner>,
    /// Reuse-mode statistics for the *current value* of the byte.
    pub reuse: ReuseInfo,
}

impl ShadowObject {
    /// Whether the byte has ever been written by the traced program.
    pub const fn is_written(&self) -> bool {
        self.last_writer.is_some()
    }

    /// Marks `writer` as the producer of this byte's current value and
    /// invalidates reader / reuse history (a write starts a new value).
    pub fn record_write(&mut self, writer: Owner) {
        self.last_writer = Some(writer);
        self.last_reader = None;
        self.reuse.reset();
    }

    /// Returns true iff `reader` (same context *and* same dynamic call)
    /// already read this byte, i.e. a further read is **non-unique**.
    pub fn is_repeat_read(&self, reader: Owner) -> bool {
        self.last_reader == Some(reader)
    }

    /// Marks `reader` as the most recent consumer.
    pub fn record_read(&mut self, reader: Owner) {
        self.last_reader = Some(reader);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(ctx: u32, call: u64) -> Owner {
        Owner::new(ctx, CallNumber::from_raw(call), 0)
    }

    #[test]
    fn fresh_object_is_invalid() {
        let obj = ShadowObject::default();
        assert!(!obj.is_written());
        assert_eq!(obj.last_reader, None);
        assert_eq!(obj.reuse, ReuseInfo::default());
    }

    #[test]
    fn write_sets_producer_and_clears_readers() {
        let mut obj = ShadowObject::default();
        obj.record_read(owner(1, 5));
        obj.reuse.record_read(Timestamp::from_raw(10), true);
        obj.record_write(owner(2, 6));
        assert_eq!(obj.last_writer, Some(owner(2, 6)));
        assert_eq!(obj.last_reader, None);
        assert_eq!(obj.reuse, ReuseInfo::default());
    }

    #[test]
    fn repeat_read_requires_same_context_and_call() {
        let mut obj = ShadowObject::default();
        obj.record_read(owner(1, 5));
        assert!(obj.is_repeat_read(owner(1, 5)));
        // Same function, different dynamic call: unique again.
        assert!(!obj.is_repeat_read(owner(1, 7)));
        // Different function, same call number: unique.
        assert!(!obj.is_repeat_read(owner(2, 5)));
    }

    #[test]
    fn repeat_read_distinguishes_threads_at_the_root_frame() {
        // Root frames share (ctx, call) across guest threads; only the
        // thread field keeps their reads distinct.
        let mut obj = ShadowObject::default();
        obj.record_read(Owner::new(0, CallNumber::ROOT, 0));
        assert!(obj.is_repeat_read(Owner::new(0, CallNumber::ROOT, 0)));
        assert!(!obj.is_repeat_read(Owner::new(0, CallNumber::ROOT, 1)));
    }

    #[test]
    fn reuse_lifetime_spans_first_to_last_read() {
        let mut info = ReuseInfo::default();
        info.record_read(Timestamp::from_raw(100), true);
        assert_eq!(info.lifetime(), 0);
        assert_eq!(info.reuse_count, 0);
        info.record_read(Timestamp::from_raw(250), false);
        info.record_read(Timestamp::from_raw(400), false);
        assert_eq!(info.reuse_count, 2);
        assert_eq!(info.lifetime(), 300);
    }

    #[test]
    fn reset_clears_reuse_state() {
        let mut info = ReuseInfo::default();
        info.record_read(Timestamp::from_raw(5), true);
        info.record_read(Timestamp::from_raw(9), false);
        info.reset();
        assert_eq!(info, ReuseInfo::default());
    }
}
