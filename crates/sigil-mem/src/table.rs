//! The generic two-level shadow table.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use sigil_trace::Addr;

use crate::stats::MemoryStats;

/// Log2 of the number of shadow slots per second-level chunk.
const CHUNK_BITS: u32 = 12;
/// Number of shadow slots per second-level chunk (4096).
pub const CHUNK_SLOTS: usize = 1 << CHUNK_BITS;
const OFFSET_MASK: u64 = (CHUNK_SLOTS as u64) - 1;

/// Which chunk to evict when the memory limit is exceeded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Evict the least recently *allocated* chunk — the paper's "simple
    /// FIFO mechanism".
    #[default]
    Fifo,
    /// Evict the least recently *touched* chunk. Slightly closer to the
    /// paper's stated intent ("least recently touched by the program") at
    /// the cost of a scan per eviction; compared in the ablation bench.
    Lru,
}

#[derive(Debug)]
struct Chunk<T> {
    slots: Box<[T]>,
    last_touch: u64,
}

/// A sparse, lazily-populated map from guest byte addresses to shadow
/// slots of type `T`, implemented as a two-level table (paper §II-B).
///
/// The first level is keyed by the high address bits, the second level is
/// a dense chunk of [`CHUNK_SLOTS`] shadow slots covering a contiguous
/// address range. Chunks are created on first touch with `T::default()`
/// ("initialized to invalid").
///
/// With a chunk limit configured (see [`ShadowTable::with_chunk_limit`])
/// the table evicts whole chunks according to the [`EvictionPolicy`];
/// evicted shadow state silently reverts to invalid, exactly as in the
/// paper's memory-limit command-line option.
///
/// # Example
///
/// ```
/// use sigil_mem::ShadowTable;
///
/// let mut table: ShadowTable<u32> = ShadowTable::new();
/// assert_eq!(table.get(0xdead_beef), None);
/// *table.slot_mut(0xdead_beef) = 7;
/// assert_eq!(table.get(0xdead_beef), Some(&7));
/// ```
pub struct ShadowTable<T> {
    chunks: HashMap<u64, Chunk<T>>,
    alloc_order: VecDeque<u64>,
    chunk_limit: Option<usize>,
    policy: EvictionPolicy,
    touch_counter: u64,
    evicted_chunks: u64,
}

impl<T: Default + Clone> ShadowTable<T> {
    /// Creates an unbounded shadow table.
    pub fn new() -> Self {
        ShadowTable {
            chunks: HashMap::new(),
            alloc_order: VecDeque::new(),
            chunk_limit: None,
            policy: EvictionPolicy::Fifo,
            touch_counter: 0,
            evicted_chunks: 0,
        }
    }

    /// Creates a table that keeps at most `max_chunks` second-level chunks
    /// resident, evicting per `policy` beyond that.
    ///
    /// # Panics
    ///
    /// Panics if `max_chunks` is zero.
    pub fn with_chunk_limit(max_chunks: usize, policy: EvictionPolicy) -> Self {
        assert!(max_chunks > 0, "chunk limit must be at least 1");
        ShadowTable {
            chunk_limit: Some(max_chunks),
            policy,
            ..ShadowTable::new()
        }
    }

    fn split(addr: Addr) -> (u64, usize) {
        (addr >> CHUNK_BITS, (addr & OFFSET_MASK) as usize)
    }

    /// Returns the shadow slot for `addr` if its chunk is resident.
    pub fn get(&self, addr: Addr) -> Option<&T> {
        let (key, off) = Self::split(addr);
        self.chunks.get(&key).map(|c| &c.slots[off])
    }

    /// Returns a mutable reference to the shadow slot for `addr`,
    /// allocating (and possibly evicting) as needed.
    pub fn slot_mut(&mut self, addr: Addr) -> &mut T {
        let (key, off) = Self::split(addr);
        self.touch_counter += 1;
        if !self.chunks.contains_key(&key) {
            self.maybe_evict();
            self.chunks.insert(
                key,
                Chunk {
                    slots: vec![T::default(); CHUNK_SLOTS].into_boxed_slice(),
                    last_touch: self.touch_counter,
                },
            );
            self.alloc_order.push_back(key);
        }
        let chunk = self.chunks.get_mut(&key).expect("chunk just ensured");
        chunk.last_touch = self.touch_counter;
        &mut chunk.slots[off]
    }

    fn maybe_evict(&mut self) {
        let Some(limit) = self.chunk_limit else {
            return;
        };
        while self.chunks.len() >= limit {
            let victim = match self.policy {
                EvictionPolicy::Fifo => loop {
                    match self.alloc_order.pop_front() {
                        Some(key) if self.chunks.contains_key(&key) => break Some(key),
                        Some(_) => continue,
                        None => break None,
                    }
                },
                EvictionPolicy::Lru => self
                    .chunks
                    .iter()
                    .min_by_key(|(_, c)| c.last_touch)
                    .map(|(&k, _)| k),
            };
            match victim {
                Some(key) => {
                    self.chunks.remove(&key);
                    self.evicted_chunks += 1;
                }
                None => break,
            }
        }
    }

    /// Number of resident second-level chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Total chunks evicted by the limiter so far.
    pub fn evicted_chunks(&self) -> u64 {
        self.evicted_chunks
    }

    /// Approximate resident shadow-memory footprint and eviction counters.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            resident_chunks: self.chunks.len() as u64,
            resident_slots: (self.chunks.len() * CHUNK_SLOTS) as u64,
            resident_bytes: (self.chunks.len() * CHUNK_SLOTS * std::mem::size_of::<T>()) as u64,
            evicted_chunks: self.evicted_chunks,
        }
    }

    /// Iterates over every resident `(addr, slot)` pair, in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> {
        self.chunks.iter().flat_map(|(&key, chunk)| {
            chunk
                .slots
                .iter()
                .enumerate()
                .map(move |(off, slot)| ((key << CHUNK_BITS) | off as u64, slot))
        })
    }

    /// Removes all shadow state.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.alloc_order.clear();
    }
}

impl<T: Default + Clone> Default for ShadowTable<T> {
    fn default() -> Self {
        ShadowTable::new()
    }
}

impl<T> fmt::Debug for ShadowTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShadowTable")
            .field("chunks", &self.chunks.len())
            .field("chunk_limit", &self.chunk_limit)
            .field("policy", &self.policy)
            .field("evicted_chunks", &self.evicted_chunks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_addresses_read_as_none() {
        let table: ShadowTable<u8> = ShadowTable::new();
        assert_eq!(table.get(0), None);
        assert_eq!(table.get(u64::MAX), None);
        assert_eq!(table.chunk_count(), 0);
    }

    #[test]
    fn slot_mut_allocates_chunk_lazily() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(100) = 9;
        assert_eq!(table.chunk_count(), 1);
        assert_eq!(table.get(100), Some(&9));
        // Neighbouring address in the same chunk: default-initialized.
        assert_eq!(table.get(101), Some(&0));
        // Address in a different chunk: still absent.
        assert_eq!(table.get(100 + (CHUNK_SLOTS as u64) * 2), None);
    }

    #[test]
    fn distant_addresses_use_distinct_chunks() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(0) = 1;
        *table.slot_mut(1 << 40) = 2;
        assert_eq!(table.chunk_count(), 2);
        assert_eq!(table.get(0), Some(&1));
        assert_eq!(table.get(1 << 40), Some(&2));
    }

    #[test]
    fn fifo_limit_evicts_oldest_allocation() {
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Fifo);
        let a = 0;
        let b = CHUNK_SLOTS as u64;
        let c = 2 * CHUNK_SLOTS as u64;
        *table.slot_mut(a) = 1;
        *table.slot_mut(b) = 2;
        // Touch `a` again — FIFO ignores recency, so `a` is still evicted.
        *table.slot_mut(a) = 3;
        *table.slot_mut(c) = 4;
        assert_eq!(table.chunk_count(), 2);
        assert_eq!(table.get(a), None);
        assert_eq!(table.get(b), Some(&2));
        assert_eq!(table.get(c), Some(&4));
        assert_eq!(table.evicted_chunks(), 1);
    }

    #[test]
    fn lru_limit_evicts_least_recently_touched() {
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Lru);
        let a = 0;
        let b = CHUNK_SLOTS as u64;
        let c = 2 * CHUNK_SLOTS as u64;
        *table.slot_mut(a) = 1;
        *table.slot_mut(b) = 2;
        *table.slot_mut(a) = 3; // refresh `a`
        *table.slot_mut(c) = 4; // evicts `b`, not `a`
        assert_eq!(table.get(a), Some(&3));
        assert_eq!(table.get(b), None);
        assert_eq!(table.get(c), Some(&4));
    }

    #[test]
    fn evicted_state_reverts_to_default() {
        let mut table: ShadowTable<u32> = ShadowTable::with_chunk_limit(1, EvictionPolicy::Fifo);
        *table.slot_mut(0) = 42;
        *table.slot_mut(CHUNK_SLOTS as u64) = 7; // evicts chunk 0
        assert_eq!(*table.slot_mut(0), 0, "re-touch re-initializes to default");
    }

    #[test]
    fn stats_reflect_residency() {
        let mut table: ShadowTable<u64> = ShadowTable::new();
        *table.slot_mut(0) = 1;
        let stats = table.stats();
        assert_eq!(stats.resident_chunks, 1);
        assert_eq!(stats.resident_slots, CHUNK_SLOTS as u64);
        assert_eq!(stats.resident_bytes, (CHUNK_SLOTS * 8) as u64);
    }

    #[test]
    fn iter_visits_written_slots() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(5) = 9;
        let found: Vec<_> = table.iter().filter(|(_, &v)| v != 0).collect();
        assert_eq!(found, vec![(5, &9)]);
    }

    #[test]
    fn clear_empties_the_table() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(1) = 1;
        table.clear();
        assert_eq!(table.chunk_count(), 0);
        assert_eq!(table.get(1), None);
    }

    #[test]
    #[should_panic(expected = "chunk limit must be at least 1")]
    fn zero_limit_is_rejected() {
        let _: ShadowTable<u8> = ShadowTable::with_chunk_limit(0, EvictionPolicy::Fifo);
    }
}
