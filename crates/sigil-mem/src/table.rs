//! The generic two-level shadow table.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use sigil_trace::Addr;

use crate::stats::MemoryStats;

/// Log2 of the number of shadow slots per second-level chunk.
const CHUNK_BITS: u32 = 12;
/// Number of shadow slots per second-level chunk (4096).
pub const CHUNK_SLOTS: usize = 1 << CHUNK_BITS;
const OFFSET_MASK: u64 = (CHUNK_SLOTS as u64) - 1;

/// Sentinel slab index meaning "no chunk".
const NIL: usize = usize::MAX;

/// The first-level key of the chunk covering `addr` — the high address
/// bits above the [`CHUNK_SLOTS`] split.
///
/// Exposed so callers that partition the address space at chunk
/// granularity (the sharded profiler routes each chunk run to
/// `chunk_key(addr) % shards`) agree with the table's own split without
/// duplicating the bit layout.
#[inline]
pub fn chunk_key(addr: Addr) -> u64 {
    addr >> CHUNK_BITS
}

/// Splits the head of the range `addr..addr+len` at the table's chunk
/// boundary: returns the covering chunk's key and the number of slots
/// the range keeps inside that chunk (`min(len, slots left)`).
///
/// This is [`ShadowTable::run_mut`]'s address arithmetic without the
/// table: a dispatcher that has elided its residency oracle (unbounded
/// shadow memory never evicts) still splits accesses into the identical
/// per-chunk runs by iterating `chunk_run` and advancing `addr` by
/// `consumed`.
#[inline]
pub fn chunk_run(addr: Addr, len: usize) -> (u64, usize) {
    let off = (addr & OFFSET_MASK) as usize;
    (addr >> CHUNK_BITS, len.min(CHUNK_SLOTS - off))
}

/// Which chunk to evict when the memory limit is exceeded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EvictionPolicy {
    /// Evict the least recently *allocated* chunk — the paper's "simple
    /// FIFO mechanism".
    #[default]
    Fifo,
    /// Evict the least recently *touched* chunk. Slightly closer to the
    /// paper's stated intent ("least recently touched by the program");
    /// maintained as an intrusive doubly-linked recency list, so victim
    /// selection is O(1) rather than a scan. Compared in the ablation
    /// bench.
    Lru,
}

#[derive(Debug)]
struct Chunk<T> {
    key: u64,
    slots: Box<[T]>,
    /// Recency list neighbour toward the least-recently-touched end.
    lru_prev: usize,
    /// Recency list neighbour toward the most-recently-touched end.
    lru_next: usize,
}

/// A sparse, lazily-populated map from guest byte addresses to shadow
/// slots of type `T`, implemented as a two-level table (paper §II-B).
///
/// The first level is keyed by the high address bits, the second level is
/// a dense chunk of [`CHUNK_SLOTS`] shadow slots covering a contiguous
/// address range. Chunks are created on first touch with `T::default()`
/// ("initialized to invalid").
///
/// Chunks live in a slab (`Vec`) indexed through a `HashMap`, and the
/// table keeps a one-entry MRU cache of the last chunk touched:
/// consecutive accesses that land in the same 4 KiB chunk — the common
/// case for real access streams — skip the hash probe entirely. Hit and
/// probe counts are reported through [`ShadowTable::stats`].
///
/// With a chunk limit configured (see [`ShadowTable::with_chunk_limit`])
/// the table evicts whole chunks according to the [`EvictionPolicy`];
/// evicted shadow state silently reverts to invalid, exactly as in the
/// paper's memory-limit command-line option. Evicted slab entries are
/// recycled through a free list so a limited table stops allocating once
/// it reaches its limit.
///
/// # Example
///
/// ```
/// use sigil_mem::ShadowTable;
///
/// let mut table: ShadowTable<u32> = ShadowTable::new();
/// assert_eq!(table.get(0xdead_beef), None);
/// *table.slot_mut(0xdead_beef) = 7;
/// assert_eq!(table.get(0xdead_beef), Some(&7));
/// ```
pub struct ShadowTable<T> {
    slab: Vec<Chunk<T>>,
    free: Vec<usize>,
    index: HashMap<u64, usize>,
    alloc_order: VecDeque<u64>,
    chunk_limit: Option<usize>,
    policy: EvictionPolicy,
    /// Least-recently-touched resident chunk (eviction victim under LRU).
    lru_head: usize,
    /// Most-recently-touched resident chunk.
    lru_tail: usize,
    /// One-entry MRU cache: chunk key and slab index of the last touch.
    mru_key: u64,
    mru_slot: usize,
    accesses: u64,
    mru_hits: u64,
    evicted_chunks: u64,
    runs: u64,
    run_bytes: u64,
    /// When enabled, every eviction appends its chunk key here in victim
    /// order so an external table can mirror the residency decisions.
    log_evictions: bool,
    eviction_log: Vec<u64>,
}

impl<T: Default + Clone> ShadowTable<T> {
    /// Creates an unbounded shadow table.
    pub fn new() -> Self {
        ShadowTable {
            slab: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            alloc_order: VecDeque::new(),
            chunk_limit: None,
            policy: EvictionPolicy::Fifo,
            lru_head: NIL,
            lru_tail: NIL,
            mru_key: 0,
            mru_slot: NIL,
            accesses: 0,
            mru_hits: 0,
            evicted_chunks: 0,
            runs: 0,
            run_bytes: 0,
            log_evictions: false,
            eviction_log: Vec::new(),
        }
    }

    /// Creates a table that keeps at most `max_chunks` second-level chunks
    /// resident, evicting per `policy` beyond that.
    ///
    /// # Panics
    ///
    /// Panics if `max_chunks` is zero.
    pub fn with_chunk_limit(max_chunks: usize, policy: EvictionPolicy) -> Self {
        assert!(max_chunks > 0, "chunk limit must be at least 1");
        ShadowTable {
            chunk_limit: Some(max_chunks),
            policy,
            ..ShadowTable::new()
        }
    }

    fn split(addr: Addr) -> (u64, usize) {
        (addr >> CHUNK_BITS, (addr & OFFSET_MASK) as usize)
    }

    /// Returns the shadow slot for `addr` if its chunk is resident.
    pub fn get(&self, addr: Addr) -> Option<&T> {
        let (key, off) = Self::split(addr);
        if self.mru_slot != NIL && self.mru_key == key {
            return Some(&self.slab[self.mru_slot].slots[off]);
        }
        self.index.get(&key).map(|&idx| &self.slab[idx].slots[off])
    }

    /// Returns a mutable reference to the shadow slot for `addr`,
    /// allocating (and possibly evicting) as needed.
    #[inline]
    pub fn slot_mut(&mut self, addr: Addr) -> &mut T {
        let (key, off) = Self::split(addr);
        self.accesses += 1;
        // Fast path: same chunk as the previous access. The MRU chunk is
        // by construction the most recently touched, so it already sits
        // at the recency-list tail and needs no bookkeeping.
        if self.mru_slot != NIL && self.mru_key == key {
            self.mru_hits += 1;
            let idx = self.mru_slot;
            return &mut self.slab[idx].slots[off];
        }
        let idx = match self.index.get(&key) {
            Some(&idx) => {
                self.touch(idx);
                idx
            }
            None => self.insert_chunk(key),
        };
        self.mru_key = key;
        self.mru_slot = idx;
        &mut self.slab[idx].slots[off]
    }

    /// Returns the maximal run of consecutive shadow slots starting at
    /// `addr` within one chunk, capped at `len` slots, resolving the
    /// chunk **once**: one address split, one MRU-cache check or hash
    /// probe, one recency `touch`, and one counter bump for the whole
    /// run instead of one per slot.
    ///
    /// `consumed` (also the slice length) is `min(len, slots left in the
    /// chunk)`; a caller covering a multi-chunk range advances `addr` by
    /// `consumed` and calls again — or uses [`ShadowTable::runs_mut`],
    /// which does exactly that. Allocation and eviction behave as in
    /// [`ShadowTable::slot_mut`], and the access counters are updated so
    /// that a run of `n` slots is indistinguishable from `n` `slot_mut`
    /// calls (the first slot pays the probe on an MRU miss, the rest
    /// count as MRU hits). The run itself is additionally recorded in
    /// the `runs`/`run_bytes` batching counters.
    ///
    /// A `len` of zero returns an empty slice without touching the table.
    pub fn run_mut(&mut self, addr: Addr, len: usize) -> (&mut [T], usize) {
        if len == 0 {
            return (&mut [], 0);
        }
        let (key, off) = Self::split(addr);
        let n = len.min(CHUNK_SLOTS - off);
        self.accesses += n as u64;
        self.runs += 1;
        self.run_bytes += n as u64;
        let idx = if self.mru_slot != NIL && self.mru_key == key {
            self.mru_hits += n as u64;
            self.mru_slot
        } else {
            // The first slot pays the table probe; the remaining n-1
            // would have hit the MRU cache in a per-slot loop.
            self.mru_hits += n as u64 - 1;
            let idx = match self.index.get(&key) {
                Some(&idx) => {
                    self.touch(idx);
                    idx
                }
                None => self.insert_chunk(key),
            };
            self.mru_key = key;
            self.mru_slot = idx;
            idx
        };
        (&mut self.slab[idx].slots[off..off + n], n)
    }

    /// Iterates over the maximal per-chunk runs covering `len` slots
    /// starting at `addr` (a lending iterator: drive it with
    /// `while let Some((run_addr, slots)) = runs.next_run()`).
    ///
    /// Each yielded slice is obtained through [`ShadowTable::run_mut`],
    /// so chunk resolution, recency, and eviction happen once per run;
    /// an access that straddles a chunk boundary yields one run per
    /// chunk, and eviction triggered by a later run can reclaim the
    /// chunk of an earlier one, exactly as in a per-slot loop.
    pub fn runs_mut(&mut self, addr: Addr, len: usize) -> RunsMut<'_, T> {
        RunsMut {
            table: self,
            addr,
            remaining: len,
        }
    }

    /// Moves a resident chunk to the most-recently-touched end.
    fn touch(&mut self, idx: usize) {
        if self.lru_tail == idx {
            return;
        }
        self.unlink(idx);
        self.link_tail(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].lru_prev, self.slab[idx].lru_next);
        if prev != NIL {
            self.slab[prev].lru_next = next;
        } else {
            self.lru_head = next;
        }
        if next != NIL {
            self.slab[next].lru_prev = prev;
        } else {
            self.lru_tail = prev;
        }
    }

    fn link_tail(&mut self, idx: usize) {
        self.slab[idx].lru_prev = self.lru_tail;
        self.slab[idx].lru_next = NIL;
        if self.lru_tail != NIL {
            self.slab[self.lru_tail].lru_next = idx;
        } else {
            self.lru_head = idx;
        }
        self.lru_tail = idx;
    }

    /// Allocates (or recycles) a chunk for `key` and links it as most
    /// recently touched. Returns its slab index.
    fn insert_chunk(&mut self, key: u64) -> usize {
        self.maybe_evict();
        let idx = match self.free.pop() {
            Some(idx) => {
                let chunk = &mut self.slab[idx];
                chunk.key = key;
                chunk.slots.fill(T::default());
                idx
            }
            None => {
                self.slab.push(Chunk {
                    key,
                    slots: vec![T::default(); CHUNK_SLOTS].into_boxed_slice(),
                    lru_prev: NIL,
                    lru_next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.index.insert(key, idx);
        self.link_tail(idx);
        // FIFO is the only policy that consumes allocation order; skip the
        // queue otherwise so unbounded/LRU tables don't grow it forever.
        if self.chunk_limit.is_some() && self.policy == EvictionPolicy::Fifo {
            self.alloc_order.push_back(key);
        }
        idx
    }

    fn maybe_evict(&mut self) {
        let Some(limit) = self.chunk_limit else {
            return;
        };
        while self.index.len() >= limit {
            let victim = match self.policy {
                EvictionPolicy::Fifo => loop {
                    match self.alloc_order.pop_front() {
                        Some(key) if self.index.contains_key(&key) => break Some(key),
                        Some(_) => continue,
                        None => break None,
                    }
                },
                // O(1): the least recently touched chunk is the list head.
                EvictionPolicy::Lru => (self.lru_head != NIL).then(|| self.slab[self.lru_head].key),
            };
            match victim {
                Some(key) => self.evict(key),
                None => break,
            }
        }
    }

    fn evict(&mut self, key: u64) {
        let idx = self
            .index
            .remove(&key)
            .expect("eviction victim must be resident");
        self.unlink(idx);
        self.free.push(idx);
        if self.mru_slot == idx {
            self.mru_slot = NIL;
        }
        self.evicted_chunks += 1;
        if self.log_evictions {
            self.eviction_log.push(key);
        }
    }

    /// Starts recording evicted chunk keys (in victim order) into the
    /// eviction log, readable via [`ShadowTable::evictions`].
    ///
    /// The sharded profiler runs a residency oracle on its dispatch
    /// thread and replays the logged victims into the per-shard tables
    /// through [`ShadowTable::evict_key`], so every shard sees exactly
    /// the serial eviction sequence for its chunks.
    pub fn enable_eviction_log(&mut self) {
        self.log_evictions = true;
    }

    /// The chunk keys evicted since the last [`ShadowTable::clear_evictions`],
    /// in eviction order. Empty unless [`ShadowTable::enable_eviction_log`]
    /// was called.
    pub fn evictions(&self) -> &[u64] {
        &self.eviction_log
    }

    /// Forgets the logged evictions (the log stays enabled).
    pub fn clear_evictions(&mut self) {
        self.eviction_log.clear();
    }

    /// Evicts the chunk with first-level key `key` (see [`chunk_key`]) if
    /// it is resident, exactly as the limiter would: the shadow state
    /// reverts to invalid, the slab entry is recycled, and the eviction
    /// counter advances. Returns whether a chunk was evicted.
    ///
    /// This is the mirroring half of the eviction log: an unbounded
    /// per-shard table driven only by `evict_key` reproduces the
    /// residency (and therefore per-byte state) of a limited table.
    pub fn evict_key(&mut self, key: u64) -> bool {
        if self.index.contains_key(&key) {
            self.evict(key);
            true
        } else {
            false
        }
    }

    /// Number of resident second-level chunks.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// Total chunks evicted by the limiter so far.
    pub fn evicted_chunks(&self) -> u64 {
        self.evicted_chunks
    }

    /// Total `slot_mut` accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses served by the one-entry MRU chunk cache.
    pub fn mru_hits(&self) -> u64 {
        self.mru_hits
    }

    /// Ranged accesses served so far (`run_mut` calls with `len > 0`).
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total slots covered by ranged accesses. `run_bytes / runs` is the
    /// observed batching factor of the range API.
    pub fn run_bytes(&self) -> u64 {
        self.run_bytes
    }

    /// Approximate resident shadow-memory footprint, eviction counters,
    /// and hot-path hit/probe/run counters.
    ///
    /// `resident_*` count **live** chunks only: entries reachable through
    /// the first-level index. Slab entries parked on the free list after
    /// an eviction hold allocated-but-dead memory and are deliberately
    /// excluded, so residency drops when the limiter evicts and goes to
    /// zero after [`ShadowTable::clear`].
    pub fn stats(&self) -> MemoryStats {
        debug_assert_eq!(
            self.index.len(),
            self.slab.len() - self.free.len(),
            "every slab entry is either indexed (live) or free-listed"
        );
        MemoryStats {
            resident_chunks: self.index.len() as u64,
            resident_slots: (self.index.len() * CHUNK_SLOTS) as u64,
            resident_bytes: (self.index.len() * CHUNK_SLOTS * std::mem::size_of::<T>()) as u64,
            evicted_chunks: self.evicted_chunks,
            accesses: self.accesses,
            mru_hits: self.mru_hits,
            table_probes: self.accesses - self.mru_hits,
            runs: self.runs,
            run_bytes: self.run_bytes,
        }
    }

    /// Iterates over every resident `(addr, slot)` pair, in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> {
        self.index.iter().flat_map(|(&key, &idx)| {
            self.slab[idx]
                .slots
                .iter()
                .enumerate()
                .map(move |(off, slot)| ((key << CHUNK_BITS) | off as u64, slot))
        })
    }

    /// Removes all shadow state and resets every counter and cache, as if
    /// the table had just been constructed with the same limit and policy
    /// (the eviction log is emptied but stays enabled if it was).
    pub fn clear(&mut self) {
        self.slab.clear();
        self.free.clear();
        self.index.clear();
        self.alloc_order.clear();
        self.lru_head = NIL;
        self.lru_tail = NIL;
        self.mru_key = 0;
        self.mru_slot = NIL;
        self.accesses = 0;
        self.mru_hits = 0;
        self.evicted_chunks = 0;
        self.runs = 0;
        self.run_bytes = 0;
        self.eviction_log.clear();
    }
}

/// Lending iterator over the maximal per-chunk runs of a slot range; see
/// [`ShadowTable::runs_mut`].
///
/// Not a `std::iter::Iterator` — each yielded slice borrows the table, so
/// it must be dropped before the next call:
///
/// ```
/// use sigil_mem::ShadowTable;
///
/// let mut table: ShadowTable<u8> = ShadowTable::new();
/// let mut runs = table.runs_mut(4090, 12); // straddles the 4096 split
/// let mut seen = Vec::new();
/// while let Some((addr, slots)) = runs.next_run() {
///     seen.push((addr, slots.len()));
///     slots.fill(7);
/// }
/// assert_eq!(seen, vec![(4090, 6), (4096, 6)]);
/// assert_eq!(table.get(4095), Some(&7));
/// ```
pub struct RunsMut<'a, T> {
    table: &'a mut ShadowTable<T>,
    addr: Addr,
    remaining: usize,
}

impl<T: Default + Clone> RunsMut<'_, T> {
    /// Yields the next `(start_address, slots)` run, or `None` when the
    /// range is exhausted.
    pub fn next_run(&mut self) -> Option<(Addr, &mut [T])> {
        if self.remaining == 0 {
            return None;
        }
        let start = self.addr;
        let (slots, consumed) = self.table.run_mut(start, self.remaining);
        self.addr = start.wrapping_add(consumed as u64);
        self.remaining -= consumed;
        Some((start, slots))
    }
}

impl<T: Default + Clone> Default for ShadowTable<T> {
    fn default() -> Self {
        ShadowTable::new()
    }
}

impl<T> fmt::Debug for ShadowTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShadowTable")
            .field("chunks", &self.index.len())
            .field("chunk_limit", &self.chunk_limit)
            .field("policy", &self.policy)
            .field("accesses", &self.accesses)
            .field("mru_hits", &self.mru_hits)
            .field("evicted_chunks", &self.evicted_chunks)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_addresses_read_as_none() {
        let table: ShadowTable<u8> = ShadowTable::new();
        assert_eq!(table.get(0), None);
        assert_eq!(table.get(u64::MAX), None);
        assert_eq!(table.chunk_count(), 0);
    }

    #[test]
    fn slot_mut_allocates_chunk_lazily() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(100) = 9;
        assert_eq!(table.chunk_count(), 1);
        assert_eq!(table.get(100), Some(&9));
        // Neighbouring address in the same chunk: default-initialized.
        assert_eq!(table.get(101), Some(&0));
        // Address in a different chunk: still absent.
        assert_eq!(table.get(100 + (CHUNK_SLOTS as u64) * 2), None);
    }

    #[test]
    fn distant_addresses_use_distinct_chunks() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(0) = 1;
        *table.slot_mut(1 << 40) = 2;
        assert_eq!(table.chunk_count(), 2);
        assert_eq!(table.get(0), Some(&1));
        assert_eq!(table.get(1 << 40), Some(&2));
    }

    #[test]
    fn fifo_limit_evicts_oldest_allocation() {
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Fifo);
        let a = 0;
        let b = CHUNK_SLOTS as u64;
        let c = 2 * CHUNK_SLOTS as u64;
        *table.slot_mut(a) = 1;
        *table.slot_mut(b) = 2;
        // Touch `a` again — FIFO ignores recency, so `a` is still evicted.
        *table.slot_mut(a) = 3;
        *table.slot_mut(c) = 4;
        assert_eq!(table.chunk_count(), 2);
        assert_eq!(table.get(a), None);
        assert_eq!(table.get(b), Some(&2));
        assert_eq!(table.get(c), Some(&4));
        assert_eq!(table.evicted_chunks(), 1);
    }

    #[test]
    fn lru_limit_evicts_least_recently_touched() {
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Lru);
        let a = 0;
        let b = CHUNK_SLOTS as u64;
        let c = 2 * CHUNK_SLOTS as u64;
        *table.slot_mut(a) = 1;
        *table.slot_mut(b) = 2;
        *table.slot_mut(a) = 3; // refresh `a`
        *table.slot_mut(c) = 4; // evicts `b`, not `a`
        assert_eq!(table.get(a), Some(&3));
        assert_eq!(table.get(b), None);
        assert_eq!(table.get(c), Some(&4));
    }

    #[test]
    fn lru_recency_chain_survives_many_interleavings() {
        // Exercise unlink/link_tail on head, middle, and tail positions.
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(3, EvictionPolicy::Lru);
        let addr = |i: u64| i * CHUNK_SLOTS as u64;
        *table.slot_mut(addr(0)) = 1;
        *table.slot_mut(addr(1)) = 2;
        *table.slot_mut(addr(2)) = 3;
        *table.slot_mut(addr(1)) = 4; // touch middle
        *table.slot_mut(addr(0)) = 5; // touch (old) head
        *table.slot_mut(addr(3)) = 6; // evicts 2, the least recent
        assert_eq!(table.get(addr(2)), None);
        assert_eq!(table.get(addr(0)), Some(&5));
        assert_eq!(table.get(addr(1)), Some(&4));
        assert_eq!(table.get(addr(3)), Some(&6));
        *table.slot_mut(addr(4)) = 7; // evicts 1 (untouched since its refresh)
        assert_eq!(table.get(addr(1)), None);
    }

    #[test]
    fn evicted_state_reverts_to_default() {
        let mut table: ShadowTable<u32> = ShadowTable::with_chunk_limit(1, EvictionPolicy::Fifo);
        *table.slot_mut(0) = 42;
        *table.slot_mut(CHUNK_SLOTS as u64) = 7; // evicts chunk 0
        assert_eq!(*table.slot_mut(0), 0, "re-touch re-initializes to default");
    }

    #[test]
    fn eviction_invalidates_the_mru_cache() {
        // With limit 1 every new chunk evicts the one the MRU cache points
        // at; stale cache entries would resurrect dead state.
        let mut table: ShadowTable<u32> = ShadowTable::with_chunk_limit(1, EvictionPolicy::Lru);
        *table.slot_mut(0) = 42;
        *table.slot_mut(CHUNK_SLOTS as u64) = 7;
        assert_eq!(table.get(0), None, "evicted chunk must not be readable");
        assert_eq!(table.get(CHUNK_SLOTS as u64), Some(&7));
    }

    #[test]
    fn mru_cache_counts_hits_and_probes() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(0) = 1; // miss (allocates)
        *table.slot_mut(1) = 2; // hit: same chunk
        *table.slot_mut(2) = 3; // hit
        *table.slot_mut(CHUNK_SLOTS as u64) = 4; // miss: new chunk
        *table.slot_mut(0) = 5; // miss: back to chunk 0
        let stats = table.stats();
        assert_eq!(stats.accesses, 5);
        assert_eq!(stats.mru_hits, 2);
        assert_eq!(stats.table_probes, 3);
        assert_eq!(table.accesses(), 5);
        assert_eq!(table.mru_hits(), 2);
    }

    #[test]
    fn stats_reflect_residency() {
        let mut table: ShadowTable<u64> = ShadowTable::new();
        *table.slot_mut(0) = 1;
        let stats = table.stats();
        assert_eq!(stats.resident_chunks, 1);
        assert_eq!(stats.resident_slots, CHUNK_SLOTS as u64);
        assert_eq!(stats.resident_bytes, (CHUNK_SLOTS * 8) as u64);
    }

    #[test]
    fn iter_visits_written_slots() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(5) = 9;
        let found: Vec<_> = table.iter().filter(|(_, &v)| v != 0).collect();
        assert_eq!(found, vec![(5, &9)]);
    }

    #[test]
    fn clear_empties_the_table() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(1) = 1;
        table.clear();
        assert_eq!(table.chunk_count(), 0);
        assert_eq!(table.get(1), None);
    }

    #[test]
    fn clear_resets_counters_caches_and_eviction_state() {
        // Regression: clear() used to leave the touch counter, eviction
        // counter, and (now) the MRU cache behind, so a cleared table
        // reported phantom evictions and could serve stale slots.
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(1, EvictionPolicy::Fifo);
        *table.slot_mut(0) = 1;
        *table.slot_mut(CHUNK_SLOTS as u64) = 2; // forces one eviction
        *table.slot_mut(CHUNK_SLOTS as u64 + 1) = 3; // MRU hit
        assert!(table.evicted_chunks() > 0);
        table.clear();
        assert_eq!(table.chunk_count(), 0);
        assert_eq!(table.evicted_chunks(), 0, "eviction counter must reset");
        assert_eq!(table.accesses(), 0, "access counter must reset");
        assert_eq!(table.mru_hits(), 0, "hit counter must reset");
        assert_eq!(
            table.get(CHUNK_SLOTS as u64),
            None,
            "MRU cache must not leak"
        );
        assert_eq!(table.stats(), MemoryStats::default());
        // The cleared table must behave exactly like a fresh one.
        *table.slot_mut(0) = 9;
        assert_eq!(table.get(0), Some(&9));
        assert_eq!(table.evicted_chunks(), 0);
    }

    #[test]
    fn limited_table_recycles_slab_entries() {
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Fifo);
        for i in 0..64u64 {
            *table.slot_mut(i * CHUNK_SLOTS as u64) = i as u8;
        }
        assert_eq!(table.chunk_count(), 2);
        assert_eq!(table.evicted_chunks(), 62);
        // The slab never grows past limit + the one in-flight insertion.
        assert!(table.slab.len() <= 3, "slab len {}", table.slab.len());
    }

    #[test]
    #[should_panic(expected = "chunk limit must be at least 1")]
    fn zero_limit_is_rejected() {
        let _: ShadowTable<u8> = ShadowTable::with_chunk_limit(0, EvictionPolicy::Fifo);
    }

    #[test]
    fn run_mut_stops_at_the_chunk_boundary() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        let start = CHUNK_SLOTS as u64 - 3;
        let (slots, consumed) = table.run_mut(start, 8);
        assert_eq!(consumed, 3, "run is capped at the chunk end");
        slots.fill(1);
        let (slots, consumed) = table.run_mut(start + 3, 5);
        assert_eq!(consumed, 5, "remainder fits the next chunk");
        slots.fill(2);
        assert_eq!(table.get(start), Some(&1));
        assert_eq!(table.get(CHUNK_SLOTS as u64), Some(&2));
        assert_eq!(table.chunk_count(), 2);
    }

    #[test]
    fn run_mut_counters_match_a_slot_mut_loop() {
        // The same access pattern through both APIs must report identical
        // accesses/mru_hits/table_probes; only runs/run_bytes differ.
        let pattern: &[(u64, usize)] = &[(0, 8), (8, 8), (4090, 12), (1 << 20, 4), (4, 8)];
        let mut by_slot: ShadowTable<u8> = ShadowTable::new();
        let mut by_run: ShadowTable<u8> = ShadowTable::new();
        for &(addr, len) in pattern {
            for a in addr..addr + len as u64 {
                *by_slot.slot_mut(a) = 1;
            }
            let mut runs = by_run.runs_mut(addr, len);
            while let Some((_, slots)) = runs.next_run() {
                slots.fill(1);
            }
        }
        let (a, b) = (by_slot.stats(), by_run.stats());
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.mru_hits, b.mru_hits);
        assert_eq!(a.table_probes, b.table_probes);
        assert_eq!(a.resident_chunks, b.resident_chunks);
        assert_eq!(a.runs, 0, "slot_mut records no runs");
        assert_eq!(b.runs, 6, "one run per chunk touched per access");
        assert_eq!(b.run_bytes, b.accesses);
    }

    #[test]
    fn zero_length_run_is_inert() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        let (slots, consumed) = table.run_mut(123, 0);
        assert!(slots.is_empty());
        assert_eq!(consumed, 0);
        assert_eq!(table.chunk_count(), 0, "no chunk allocated");
        assert_eq!(table.stats(), MemoryStats::default());
        assert!(table.runs_mut(123, 0).next_run().is_none());
    }

    #[test]
    fn run_eviction_can_reclaim_an_earlier_run_of_the_same_access() {
        // limit 1 and a chunk-straddling range: the second run's insert
        // evicts the first run's chunk, exactly like a per-slot loop.
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(1, EvictionPolicy::Lru);
        let start = CHUNK_SLOTS as u64 - 2;
        let mut runs = table.runs_mut(start, 4);
        while let Some((_, slots)) = runs.next_run() {
            slots.fill(9);
        }
        assert_eq!(table.evicted_chunks(), 1);
        assert_eq!(table.get(start), None, "first chunk was the victim");
        assert_eq!(table.get(CHUNK_SLOTS as u64), Some(&9));
    }

    #[test]
    fn eviction_log_records_victims_in_order() {
        let mut table: ShadowTable<u8> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Fifo);
        table.enable_eviction_log();
        let addr = |i: u64| i * CHUNK_SLOTS as u64;
        for i in 0..5u64 {
            *table.slot_mut(addr(i)) = 1;
        }
        // FIFO with limit 2: inserting chunks 2, 3, 4 evicts 0, 1, 2.
        assert_eq!(table.evictions(), &[0, 1, 2]);
        table.clear_evictions();
        assert!(table.evictions().is_empty());
        *table.slot_mut(addr(9)) = 1;
        assert_eq!(table.evictions(), &[3], "log keeps recording after drain");
        // Without enable_eviction_log nothing is recorded.
        let mut silent: ShadowTable<u8> = ShadowTable::with_chunk_limit(1, EvictionPolicy::Lru);
        *silent.slot_mut(addr(0)) = 1;
        *silent.slot_mut(addr(1)) = 1;
        assert!(silent.evictions().is_empty());
        assert_eq!(silent.evicted_chunks(), 1);
    }

    #[test]
    fn evict_key_mirrors_the_limiter() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(5) = 9;
        *table.slot_mut(CHUNK_SLOTS as u64 + 1) = 8;
        assert!(table.evict_key(chunk_key(5)));
        assert_eq!(table.get(5), None, "state reverts to invalid");
        assert_eq!(table.get(CHUNK_SLOTS as u64 + 1), Some(&8));
        assert_eq!(table.evicted_chunks(), 1);
        assert_eq!(table.chunk_count(), 1);
        assert!(!table.evict_key(chunk_key(5)), "already gone");
        // The recycled slab entry re-initializes to default on re-touch.
        assert_eq!(*table.slot_mut(5), 0);
    }

    #[test]
    fn evict_key_invalidates_the_mru_cache() {
        let mut table: ShadowTable<u8> = ShadowTable::new();
        *table.slot_mut(7) = 3; // chunk 0 is now the MRU entry
        assert!(table.evict_key(0));
        assert_eq!(table.get(7), None, "stale MRU entry must not resurrect");
    }

    #[test]
    fn chunk_key_matches_the_table_split() {
        assert_eq!(chunk_key(0), 0);
        assert_eq!(chunk_key(CHUNK_SLOTS as u64 - 1), 0);
        assert_eq!(chunk_key(CHUNK_SLOTS as u64), 1);
        assert_eq!(chunk_key(u64::MAX), u64::MAX >> CHUNK_BITS);
    }

    #[test]
    fn chunk_run_matches_run_mut_splitting() {
        // The oracle-free split must agree with the table's own run
        // boundaries on every shape: interior, boundary-straddling, and
        // boundary-starting ranges.
        let mut table: ShadowTable<u8> = ShadowTable::new();
        for &(addr, len) in &[
            (0u64, 8usize),
            (4090, 12),
            (4096, 5),
            (CHUNK_SLOTS as u64 - 1, 1),
            (1 << 40, CHUNK_SLOTS + 7),
        ] {
            let (mut a, mut remaining) = (addr, len);
            while remaining > 0 {
                let (key, consumed) = chunk_run(a, remaining);
                let (_, table_consumed) = table.run_mut(a, remaining);
                assert_eq!(consumed, table_consumed, "addr {a:#x} len {remaining}");
                assert_eq!(key, chunk_key(a));
                a = a.wrapping_add(consumed as u64);
                remaining -= consumed;
            }
        }
        assert_eq!(chunk_run(123, 0), (0, 0), "zero-length range is inert");
    }

    #[test]
    fn mirrored_table_reproduces_limited_residency() {
        // An unbounded table fed the same runs plus the logged evictions
        // holds exactly the limited table's live chunks and values.
        let mut limited: ShadowTable<u8> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Lru);
        limited.enable_eviction_log();
        let mut mirror: ShadowTable<u8> = ShadowTable::new();
        let pattern: &[(u64, usize)] = &[(0, 8), (4090, 12), (1 << 20, 4), (4, 8), (8192, 2)];
        for &(addr, len) in pattern {
            let mut runs = limited.runs_mut(addr, len);
            while let Some((run_addr, slots)) = runs.next_run() {
                slots.fill((run_addr & 0xff) as u8);
            }
            for i in 0..limited.evictions().len() {
                let key = limited.evictions()[i];
                assert!(mirror.evict_key(key), "victim resident in the mirror");
            }
            limited.clear_evictions();
            let mut runs = mirror.runs_mut(addr, len);
            while let Some((run_addr, slots)) = runs.next_run() {
                slots.fill((run_addr & 0xff) as u8);
            }
        }
        assert_eq!(limited.chunk_count(), mirror.chunk_count());
        for (addr, slot) in limited.iter() {
            assert_eq!(mirror.get(addr), Some(slot), "addr {addr:#x}");
        }
    }

    #[test]
    fn resident_stats_track_live_chunks_through_eviction_and_clear() {
        // Pins the residency accounting: `resident_*` must follow the
        // index (live chunks), not the slab, which retains free-listed
        // capacity after evictions; the slab/free/index audit in stats()
        // must hold at every step.
        let slot = std::mem::size_of::<u32>();
        let mut table: ShadowTable<u32> = ShadowTable::with_chunk_limit(2, EvictionPolicy::Fifo);
        for i in 0..5u64 {
            *table.slot_mut(i * CHUNK_SLOTS as u64) = 1;
            let stats = table.stats();
            let live = table.chunk_count() as u64;
            assert_eq!(stats.resident_chunks, live);
            assert_eq!(stats.resident_slots, live * CHUNK_SLOTS as u64);
            assert_eq!(stats.resident_bytes, live * (CHUNK_SLOTS * slot) as u64);
        }
        let stats = table.stats();
        assert_eq!(stats.resident_chunks, 2, "limit bounds live chunks");
        assert_eq!(stats.evicted_chunks, 3);
        assert_eq!(stats.resident_slots, 2 * CHUNK_SLOTS as u64);
        assert_eq!(stats.resident_bytes, (2 * CHUNK_SLOTS * slot) as u64);
        table.clear();
        let stats = table.stats();
        assert_eq!(stats.resident_chunks, 0);
        assert_eq!(stats.resident_slots, 0);
        assert_eq!(stats.resident_bytes, 0);
    }
}
