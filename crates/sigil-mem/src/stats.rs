//! Shadow-memory footprint accounting (drives Figure 6).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A snapshot of the shadow memory footprint and hot-path counters.
///
/// The paper's Figure 6 plots Sigil's memory usage per workload and input
/// size; this is the measured quantity in our reproduction. The access
/// counters additionally expose how the shadow hot path behaved: every
/// `slot_mut` is an access, served either by the one-entry MRU chunk
/// cache (`mru_hits`) or by a first-level hash probe (`table_probes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Second-level chunks currently resident.
    pub resident_chunks: u64,
    /// Shadow slots currently resident (chunks × slots per chunk).
    pub resident_slots: u64,
    /// Approximate resident bytes (slots × slot size).
    pub resident_bytes: u64,
    /// Chunks evicted by the FIFO/LRU limiter so far.
    pub evicted_chunks: u64,
    /// Total shadow slot accesses (`slot_mut` calls).
    pub accesses: u64,
    /// Accesses served by the one-entry MRU chunk cache.
    pub mru_hits: u64,
    /// Accesses that fell through to the first-level hash probe.
    pub table_probes: u64,
    /// Ranged accesses (`run_mut` calls): each resolves its chunk once
    /// for a whole run of slots.
    pub runs: u64,
    /// Slots covered by ranged accesses; `run_bytes / runs` is the
    /// observed batching factor of the range API.
    pub run_bytes: u64,
}

impl MemoryStats {
    /// Resident footprint in mebibytes.
    pub fn resident_mib(&self) -> f64 {
        self.resident_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Fraction of accesses served by the MRU chunk cache, in `[0, 1]`.
    /// Zero when no accesses were recorded.
    pub fn mru_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.mru_hits as f64 / self.accesses as f64
        }
    }

    /// Average slots per ranged access — how much per-slot bookkeeping
    /// the range API amortized. Zero when no runs were recorded.
    pub fn bytes_per_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.run_bytes as f64 / self.runs as f64
        }
    }

    /// Publishes the snapshot into the global [`sigil_obs`] metrics
    /// registry under `<prefix>.*` names (e.g. `shadow.accesses`,
    /// `shadow.mru_hits`, `shadow.table_probes`, `shadow.evicted_chunks`).
    ///
    /// The hot-path counters are maintained locally by the shadow table
    /// for speed; this is the one-shot export at end of run. A no-op
    /// (one atomic load) while observability is disabled.
    pub fn export_metrics(&self, prefix: &str) {
        if !sigil_obs::is_enabled() {
            return;
        }
        use sigil_obs::metrics::{set_counter, set_gauge};
        set_counter(&format!("{prefix}.accesses"), self.accesses);
        set_counter(&format!("{prefix}.mru_hits"), self.mru_hits);
        set_counter(&format!("{prefix}.table_probes"), self.table_probes);
        set_counter(&format!("{prefix}.evicted_chunks"), self.evicted_chunks);
        set_counter(&format!("{prefix}.resident_chunks"), self.resident_chunks);
        set_counter(&format!("{prefix}.resident_bytes"), self.resident_bytes);
        set_counter(&format!("{prefix}.runs"), self.runs);
        set_counter(&format!("{prefix}.run_bytes"), self.run_bytes);
        set_gauge(&format!("{prefix}.mru_hit_rate"), self.mru_hit_rate());
        set_gauge(&format!("{prefix}.bytes_per_run"), self.bytes_per_run());
        set_gauge(&format!("{prefix}.resident_mib"), self.resident_mib());
    }

    /// Component-wise sum of two snapshots (e.g. byte table + line table).
    #[must_use]
    pub fn combined(self, other: MemoryStats) -> MemoryStats {
        MemoryStats {
            resident_chunks: self.resident_chunks + other.resident_chunks,
            resident_slots: self.resident_slots + other.resident_slots,
            resident_bytes: self.resident_bytes + other.resident_bytes,
            evicted_chunks: self.evicted_chunks + other.evicted_chunks,
            accesses: self.accesses + other.accesses,
            mru_hits: self.mru_hits + other.mru_hits,
            table_probes: self.table_probes + other.table_probes,
            runs: self.runs + other.runs,
            run_bytes: self.run_bytes + other.run_bytes,
        }
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} MiB resident ({} chunks, {} evicted, {:.1}% MRU hits)",
            self.resident_mib(),
            self.resident_chunks,
            self.evicted_chunks,
            self.mru_hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_conversion() {
        let stats = MemoryStats {
            resident_bytes: 2 * 1024 * 1024,
            ..MemoryStats::default()
        };
        assert!((stats.resident_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn combined_adds_componentwise() {
        let a = MemoryStats {
            resident_chunks: 1,
            resident_slots: 10,
            resident_bytes: 100,
            evicted_chunks: 2,
            accesses: 50,
            mru_hits: 40,
            table_probes: 10,
            runs: 5,
            run_bytes: 50,
        };
        let b = MemoryStats {
            resident_chunks: 3,
            resident_slots: 30,
            resident_bytes: 300,
            evicted_chunks: 4,
            accesses: 8,
            mru_hits: 2,
            table_probes: 6,
            runs: 1,
            run_bytes: 8,
        };
        let c = a.combined(b);
        assert_eq!(c.resident_chunks, 4);
        assert_eq!(c.resident_slots, 40);
        assert_eq!(c.resident_bytes, 400);
        assert_eq!(c.evicted_chunks, 6);
        assert_eq!(c.accesses, 58);
        assert_eq!(c.mru_hits, 42);
        assert_eq!(c.table_probes, 16);
        assert_eq!(c.runs, 6);
        assert_eq!(c.run_bytes, 58);
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(MemoryStats::default().mru_hit_rate(), 0.0);
        let stats = MemoryStats {
            accesses: 8,
            mru_hits: 6,
            table_probes: 2,
            ..MemoryStats::default()
        };
        assert!((stats.mru_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn export_metrics_publishes_counters_when_enabled() {
        let stats = MemoryStats {
            resident_chunks: 1,
            resident_slots: 4096,
            resident_bytes: 4096,
            evicted_chunks: 2,
            accesses: 10,
            mru_hits: 7,
            table_probes: 3,
            runs: 4,
            run_bytes: 10,
        };
        // Disabled: nothing registered under this prefix.
        sigil_obs::set_enabled(false);
        stats.export_metrics("test_shadow_off");
        assert!(!sigil_obs::metrics::snapshot()
            .keys()
            .any(|k| k.starts_with("test_shadow_off")));
        // Enabled: every counter appears with its exact value.
        sigil_obs::set_enabled(true);
        stats.export_metrics("test_shadow");
        sigil_obs::set_enabled(false);
        let snap = sigil_obs::metrics::snapshot();
        use sigil_obs::metrics::MetricValue;
        assert_eq!(snap["test_shadow.accesses"], MetricValue::Counter(10));
        assert_eq!(snap["test_shadow.mru_hits"], MetricValue::Counter(7));
        assert_eq!(snap["test_shadow.table_probes"], MetricValue::Counter(3));
        assert_eq!(snap["test_shadow.evicted_chunks"], MetricValue::Counter(2));
        assert_eq!(snap["test_shadow.runs"], MetricValue::Counter(4));
        assert_eq!(snap["test_shadow.run_bytes"], MetricValue::Counter(10));
        assert_eq!(snap["test_shadow.mru_hit_rate"], MetricValue::Gauge(0.7));
        assert_eq!(snap["test_shadow.bytes_per_run"], MetricValue::Gauge(2.5));
    }

    #[test]
    fn display_mentions_residency() {
        let stats = MemoryStats::default();
        assert!(stats.to_string().contains("resident"));
    }
}
