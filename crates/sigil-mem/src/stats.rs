//! Shadow-memory footprint accounting (drives Figure 6).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A snapshot of the shadow memory footprint.
///
/// The paper's Figure 6 plots Sigil's memory usage per workload and input
/// size; this is the measured quantity in our reproduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Second-level chunks currently resident.
    pub resident_chunks: u64,
    /// Shadow slots currently resident (chunks × slots per chunk).
    pub resident_slots: u64,
    /// Approximate resident bytes (slots × slot size).
    pub resident_bytes: u64,
    /// Chunks evicted by the FIFO/LRU limiter so far.
    pub evicted_chunks: u64,
}

impl MemoryStats {
    /// Resident footprint in mebibytes.
    pub fn resident_mib(&self) -> f64 {
        self.resident_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Component-wise sum of two snapshots (e.g. byte table + line table).
    #[must_use]
    pub fn combined(self, other: MemoryStats) -> MemoryStats {
        MemoryStats {
            resident_chunks: self.resident_chunks + other.resident_chunks,
            resident_slots: self.resident_slots + other.resident_slots,
            resident_bytes: self.resident_bytes + other.resident_bytes,
            evicted_chunks: self.evicted_chunks + other.evicted_chunks,
        }
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} MiB resident ({} chunks, {} evicted)",
            self.resident_mib(),
            self.resident_chunks,
            self.evicted_chunks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_conversion() {
        let stats = MemoryStats {
            resident_bytes: 2 * 1024 * 1024,
            ..MemoryStats::default()
        };
        assert!((stats.resident_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn combined_adds_componentwise() {
        let a = MemoryStats {
            resident_chunks: 1,
            resident_slots: 10,
            resident_bytes: 100,
            evicted_chunks: 2,
        };
        let b = MemoryStats {
            resident_chunks: 3,
            resident_slots: 30,
            resident_bytes: 300,
            evicted_chunks: 4,
        };
        let c = a.combined(b);
        assert_eq!(c.resident_chunks, 4);
        assert_eq!(c.resident_slots, 40);
        assert_eq!(c.resident_bytes, 400);
        assert_eq!(c.evicted_chunks, 6);
    }

    #[test]
    fn display_mentions_residency() {
        let stats = MemoryStats::default();
        assert!(stats.to_string().contains("resident"));
    }
}
