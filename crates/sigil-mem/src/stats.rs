//! Shadow-memory footprint accounting (drives Figure 6).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A snapshot of the shadow memory footprint and hot-path counters.
///
/// The paper's Figure 6 plots Sigil's memory usage per workload and input
/// size; this is the measured quantity in our reproduction. The access
/// counters additionally expose how the shadow hot path behaved: every
/// `slot_mut` is an access, served either by the one-entry MRU chunk
/// cache (`mru_hits`) or by a first-level hash probe (`table_probes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Second-level chunks currently resident.
    pub resident_chunks: u64,
    /// Shadow slots currently resident (chunks × slots per chunk).
    pub resident_slots: u64,
    /// Approximate resident bytes (slots × slot size).
    pub resident_bytes: u64,
    /// Chunks evicted by the FIFO/LRU limiter so far.
    pub evicted_chunks: u64,
    /// Total shadow slot accesses (`slot_mut` calls).
    pub accesses: u64,
    /// Accesses served by the one-entry MRU chunk cache.
    pub mru_hits: u64,
    /// Accesses that fell through to the first-level hash probe.
    pub table_probes: u64,
}

impl MemoryStats {
    /// Resident footprint in mebibytes.
    pub fn resident_mib(&self) -> f64 {
        self.resident_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Fraction of accesses served by the MRU chunk cache, in `[0, 1]`.
    /// Zero when no accesses were recorded.
    pub fn mru_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.mru_hits as f64 / self.accesses as f64
        }
    }

    /// Component-wise sum of two snapshots (e.g. byte table + line table).
    #[must_use]
    pub fn combined(self, other: MemoryStats) -> MemoryStats {
        MemoryStats {
            resident_chunks: self.resident_chunks + other.resident_chunks,
            resident_slots: self.resident_slots + other.resident_slots,
            resident_bytes: self.resident_bytes + other.resident_bytes,
            evicted_chunks: self.evicted_chunks + other.evicted_chunks,
            accesses: self.accesses + other.accesses,
            mru_hits: self.mru_hits + other.mru_hits,
            table_probes: self.table_probes + other.table_probes,
        }
    }
}

impl fmt::Display for MemoryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} MiB resident ({} chunks, {} evicted, {:.1}% MRU hits)",
            self.resident_mib(),
            self.resident_chunks,
            self.evicted_chunks,
            self.mru_hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_conversion() {
        let stats = MemoryStats {
            resident_bytes: 2 * 1024 * 1024,
            ..MemoryStats::default()
        };
        assert!((stats.resident_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn combined_adds_componentwise() {
        let a = MemoryStats {
            resident_chunks: 1,
            resident_slots: 10,
            resident_bytes: 100,
            evicted_chunks: 2,
            accesses: 50,
            mru_hits: 40,
            table_probes: 10,
        };
        let b = MemoryStats {
            resident_chunks: 3,
            resident_slots: 30,
            resident_bytes: 300,
            evicted_chunks: 4,
            accesses: 8,
            mru_hits: 2,
            table_probes: 6,
        };
        let c = a.combined(b);
        assert_eq!(c.resident_chunks, 4);
        assert_eq!(c.resident_slots, 40);
        assert_eq!(c.resident_bytes, 400);
        assert_eq!(c.evicted_chunks, 6);
        assert_eq!(c.accesses, 58);
        assert_eq!(c.mru_hits, 42);
        assert_eq!(c.table_probes, 16);
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(MemoryStats::default().mru_hit_rate(), 0.0);
        let stats = MemoryStats {
            accesses: 8,
            mru_hits: 6,
            table_probes: 2,
            ..MemoryStats::default()
        };
        assert!((stats.mru_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_residency() {
        let stats = MemoryStats::default();
        assert!(stats.to_string().contains("resident"));
    }
}
