//! Shadow memory for `sigil-rs`.
//!
//! The Sigil methodology "uses a shadow memory implementation to keep track
//! of the producers and consumers of every data byte in the program"
//! (IISWC'13, §II-B), derived from Nethercote & Seward's *How to shadow
//! every byte of memory used by a program* (VEE 2007):
//!
//! * a **two-level table**, "similar to an operating system page-table,
//!   where each level is indexed by a portion of the data byte-address";
//! * second-level chunks of shadow objects are **created lazily** when the
//!   corresponding address-space region is first touched, and initialized
//!   to *invalid*;
//! * an optional **FIFO limiter** frees "shadow bytes of addresses that
//!   have been least recently touched" when a memory budget is exceeded
//!   (the paper needs this only for `dedup`, with negligible accuracy
//!   loss);
//! * a **cache-line granularity** mode shadows "every line in memory
//!   rather than every byte" (§IV-B3).
//!
//! [`ShadowTable`] is the generic two-level table; [`ShadowObject`] is the
//! concrete per-byte record from the paper's Table I (baseline fields plus
//! the reuse-mode extension [`ReuseInfo`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod line;
pub mod object;
pub mod stats;
pub mod table;

pub use line::{LineShadow, LineStats};
pub use object::{Owner, ReuseInfo, ShadowObject};
pub use stats::MemoryStats;
pub use table::{chunk_key, chunk_run, EvictionPolicy, RunsMut, ShadowTable, CHUNK_SLOTS};
