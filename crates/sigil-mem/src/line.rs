//! Cache-line-granularity shadowing (paper §IV-B3, Figure 12).

use serde::{Deserialize, Serialize};
use sigil_trace::{Addr, MemAccess, Timestamp};

use crate::stats::MemoryStats;
use crate::table::ShadowTable;

/// Per-line reuse record.
///
/// In line mode the paper prints "re-use counts and lifetime for every
/// block touched by the program, instead of aggregating costs by
/// function".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineStats {
    /// Total accesses (reads + writes) that touched the line.
    pub accesses: u64,
    /// Timestamp of the first access.
    pub first_access: Timestamp,
    /// Timestamp of the most recent access.
    pub last_access: Timestamp,
}

impl LineStats {
    /// Re-use count: accesses beyond the first.
    pub const fn reuse_count(&self) -> u64 {
        self.accesses.saturating_sub(1)
    }

    /// Re-use lifetime: retired-op span between first and last access.
    pub const fn lifetime(&self) -> u64 {
        self.last_access.delta(self.first_access)
    }
}

/// Shadow state at cache-line granularity.
///
/// "Sigil can also capture line-level re-use when configured with the
/// cache line size. In this mode, Sigil shadows every line in memory
/// rather than every byte."
///
/// # Example
///
/// ```
/// use sigil_mem::LineShadow;
/// use sigil_trace::{MemAccess, Timestamp};
///
/// let mut lines = LineShadow::new(64);
/// lines.record_access(MemAccess::new(0, 4), Timestamp::from_raw(0));
/// lines.record_access(MemAccess::new(60, 8), Timestamp::from_raw(10)); // spans 2 lines
/// assert_eq!(lines.touched_lines(), 2);
/// ```
#[derive(Debug)]
pub struct LineShadow {
    table: ShadowTable<LineStats>,
    line_shift: u32,
}

impl LineShadow {
    /// Creates a line shadow for `line_size`-byte cache lines.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two in `[8, 4096]`.
    pub fn new(line_size: u32) -> Self {
        assert!(
            line_size.is_power_of_two() && (8..=4096).contains(&line_size),
            "line size must be a power of two between 8 and 4096, got {line_size}"
        );
        LineShadow {
            table: ShadowTable::new(),
            line_shift: line_size.trailing_zeros(),
        }
    }

    /// Configured line size in bytes.
    pub fn line_size(&self) -> u32 {
        1 << self.line_shift
    }

    /// Line index containing byte address `addr`.
    pub fn line_of(&self, addr: Addr) -> u64 {
        addr >> self.line_shift
    }

    /// Records one access; every line the byte range overlaps is touched
    /// once.
    pub fn record_access(&mut self, access: MemAccess, now: Timestamp) {
        let first_line = self.line_of(access.addr);
        let last_line = self.line_of(access.end().saturating_sub(1));
        for line in first_line..=last_line {
            let stats = self.table.slot_mut(line);
            if stats.accesses == 0 {
                stats.first_access = now;
            }
            stats.accesses += 1;
            stats.last_access = now;
        }
    }

    /// Number of distinct lines touched so far.
    pub fn touched_lines(&self) -> u64 {
        self.table.iter().filter(|(_, s)| s.accesses > 0).count() as u64
    }

    /// Iterates over `(line_index, stats)` of touched lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &LineStats)> {
        self.table.iter().filter(|(_, s)| s.accesses > 0)
    }

    /// Stats for one line, if touched.
    pub fn line_stats(&self, line: u64) -> Option<&LineStats> {
        self.table.get(line).filter(|s| s.accesses > 0)
    }

    /// Shadow footprint of the line table.
    pub fn memory_stats(&self) -> MemoryStats {
        self.table.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_within_one_line_touches_one_line() {
        let mut ls = LineShadow::new(64);
        ls.record_access(MemAccess::new(10, 4), Timestamp::from_raw(1));
        assert_eq!(ls.touched_lines(), 1);
        let stats = ls.line_stats(0).expect("line 0 touched");
        assert_eq!(stats.accesses, 1);
        assert_eq!(stats.reuse_count(), 0);
    }

    #[test]
    fn straddling_access_touches_both_lines() {
        let mut ls = LineShadow::new(64);
        ls.record_access(MemAccess::new(62, 4), Timestamp::from_raw(0));
        assert_eq!(ls.touched_lines(), 2);
        assert!(ls.line_stats(0).is_some());
        assert!(ls.line_stats(1).is_some());
    }

    #[test]
    fn reuse_count_and_lifetime_accumulate() {
        let mut ls = LineShadow::new(64);
        ls.record_access(MemAccess::new(0, 8), Timestamp::from_raw(100));
        ls.record_access(MemAccess::new(8, 8), Timestamp::from_raw(150));
        ls.record_access(MemAccess::new(16, 8), Timestamp::from_raw(400));
        let stats = ls.line_stats(0).expect("touched");
        assert_eq!(stats.accesses, 3);
        assert_eq!(stats.reuse_count(), 2);
        assert_eq!(stats.lifetime(), 300);
    }

    #[test]
    fn line_of_uses_configured_size() {
        let ls = LineShadow::new(128);
        assert_eq!(ls.line_size(), 128);
        assert_eq!(ls.line_of(127), 0);
        assert_eq!(ls.line_of(128), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_rejected() {
        let _ = LineShadow::new(48);
    }

    #[test]
    fn iter_skips_untouched_lines() {
        let mut ls = LineShadow::new(64);
        ls.record_access(MemAccess::new(0, 1), Timestamp::ZERO);
        // Chunk allocation creates many default slots; only touched ones
        // must be reported.
        assert_eq!(ls.iter().count(), 1);
    }
}
