//! `sigil` — command-line driver.
//!
//! ```text
//! sigil profile <benchmark> [--size S] [--reuse] [--lines N] [--events] [--limit N] [--json]
//! sigil partition <benchmark> [--size S]        # accelerator candidates (Tables II/III)
//! sigil reuse <benchmark> [--size S]            # reuse breakdown + top functions
//! sigil critpath <benchmark> [--size S]         # critical path & parallelism limit
//! sigil critpath --from-events <file>           # streaming summary off an event file
//! sigil phases <benchmark> [--bucket-ops N]     # phase-sliced communication profile
//! sigil phases --from-events <file> [--json]    # same, streamed off an event file
//! sigil events dump <benchmark> -o <file>       # record the event file (.evb = binary)
//! sigil events pack <in.txt> -o <out.evb>       # text -> chunk-indexed binary
//! sigil events unpack <in.evb> [-o <out.txt>]   # binary -> text, one chunk at a time
//! sigil events stat <in.evb> [--verify]         # trailer-index stats (no record decode)
//! sigil schedule <benchmark> [--cores N]        # map dependency chains onto cores
//! sigil calltree <benchmark> [--size S]         # callgrind-style context tree
//! sigil dot <benchmark> [--size S]              # control data-flow graph (Graphviz)
//! sigil run <file.svm> [--reuse] [--lines N]    # assemble + profile a guest program
//! sigil trace <benchmark> -o <file.sgtr>        # record a platform-independent trace
//! sigil replay <file.sgtr> [--reuse] [...]      # profile from a recorded trace
//! sigil sweep <all|b1,b2,..> [--jobs N] [--json] # profile many workloads, optionally in parallel
//! sigil scaling <all|b1,b2,..> [--json] [-o F]  # communication-vs-input-size curves (a·N^b fits)
//! sigil diff [random] [--seeds N] [--seed-base N] [--limit N] [--shards N] [--threads N]
//!                                               # differential oracle conformance on random programs
//! sigil diff golden [--golden-dir D] [--shards N] [--connect A]
//!                                               # check the golden corpus against oracle + production
//! sigil diff bless [--golden-dir D]             # regenerate the golden corpus (also: --bless)
//! sigil diff serve [--seeds N] [--shards N]     # online == batch conformance over a real socket
//! sigil serve [--listen <addr|path>] [--credits N] [--idle-timeout-ms N]
//!                                               # concurrent trace-ingestion daemon
//! sigil client <benchmark|file.evb|shutdown> --connect <addr> [--check]
//!                                               # replay a workload or event file into a server
//! sigil list                                    # available benchmarks
//! ```
//!
//! Every command additionally accepts the observability flags
//! `--log-level <off|warn|info|debug>`, `--trace-out <file>` (Chrome
//! trace-event JSON of the run's phase spans), `--metrics-out <file>`
//! (metrics snapshot JSON), and `--metrics-stream <file>` with
//! `--metrics-interval-ms <n>` (live JSONL delta snapshots appended by a
//! background thread while the command runs); any output flag switches
//! `sigil-obs` collection on for the process. `-h`/`--help` and
//! `-V`/`--version` short-circuit before any command runs.

use std::process::ExitCode;

use sigil_analysis::critical_path::{CommModel, CriticalPath};
use sigil_analysis::dot::to_dot;
use sigil_analysis::partition::{
    rank_functions_prepared, trim_calltree_prepared, PartitionConfig, PreparedCdfg,
};
use sigil_analysis::reuse_analysis;
use sigil_analysis::schedule::schedule;
use sigil_analysis::streaming::{
    critical_path_from_bin, phase_profile_from_bin, CriticalPathFold, PathSummary, PhaseFold,
};
use sigil_analysis::Cdfg;
use sigil_core::events_bin::{BinReader, BinTotals, BinWriter, ChunkStream, DEFAULT_CHUNK_RECORDS};
use sigil_core::{report, EventFile, PhaseProfile, Profile, SigilConfig, SigilProfiler};
use sigil_obs::log::Level;
use sigil_obs::{obs_debug, obs_info};
use sigil_trace::observer::RecordingObserver;
use sigil_trace::Engine;
use sigil_workloads::{Benchmark, InputSize};

fn usage() -> &'static str {
    "usage: sigil <profile|partition|reuse|critpath|phases|schedule|calltree|dot|run|trace|replay|sweep|scaling|diff|events|serve|client|list> [target] [options]\n\
     events:  sigil events <dump|pack|unpack|stat> <target> [-o <file>] [--chunk-records <n>] [--verify]\n\
     phases:  sigil phases <benchmark|--from-events <file>> [--bucket-ops <n>] [--json|--table]\n\
     scaling: sigil scaling <all|b1,b2,..> [--json] [-o <file>]   fit bytes ~ a*N^b per function\n\
     serve:   sigil serve [--listen <addr|path>] [--credits <n>] [--idle-timeout-ms <n>]\n\
     client:  sigil client <benchmark|file.evb|shutdown> --connect <addr|path> [--check]\n\
     options: --size <simsmall|simmedium|simlarge> (alias: --scale) --reuse --lines <bytes> --events\n\
              --limit <chunks> --cores <n> --jobs <n> --shards <n> -o <file> --json --table\n\
              --seeds <n> --seed-base <n> --threads <n> --golden-dir <dir> --bless --unbounded\n\
              --from-events <file> --chunk-records <n> --verify\n\
              --listen <addr|path> --connect <addr|path> --credits <n> --idle-timeout-ms <n> --check\n\
              --bucket-ops <n> (alias: --bucket-us) phase bucket width in retired ops\n\
              --log-level <off|warn|info|debug> --trace-out <file> --metrics-out <file>\n\
              --metrics-stream <file> --metrics-interval-ms <n>\n\
              -h | --help    print this help\n\
              -V | --version print the version"
}

#[derive(Debug, Clone)]
struct Options {
    /// Benchmark name or file path, depending on the command.
    target: String,
    size: InputSize,
    reuse: bool,
    lines: Option<u32>,
    events: bool,
    limit: Option<usize>,
    cores: usize,
    jobs: usize,
    /// Shadow-memory shard count (parallel intra-workload replay).
    /// `None` keeps the serial profiler; `sigil diff` reads `None` as
    /// "sweep the full shard axis".
    shards: Option<usize>,
    output: Option<String>,
    json: bool,
    /// Log verbosity for the `obs_*` macros (stderr).
    log_level: Level,
    /// Write a Chrome trace-event JSON file of the run's spans here.
    trace_out: Option<String>,
    /// Write a metrics snapshot JSON file here.
    metrics_out: Option<String>,
    /// Append live JSONL metric delta snapshots to this file while the
    /// command runs.
    metrics_stream: Option<String>,
    /// Interval between streamed snapshots, in milliseconds.
    metrics_interval_ms: u64,
    /// Phase bucket width in retired ops (`sigil phases`, or any
    /// profiling command to add `phases` to its JSON output).
    bucket_ops: Option<u64>,
    /// Force the human-readable table renderer (the default; the
    /// counterpart of `--json`).
    table: bool,
    /// Random-program seed count for `sigil diff`.
    seeds: u64,
    /// First seed for `sigil diff`.
    seed_base: u64,
    /// Golden-corpus directory for `sigil diff golden|bless`.
    golden_dir: String,
    /// Regenerate the golden corpus instead of checking it.
    bless: bool,
    /// Run analyses off an event file instead of profiling a benchmark.
    from_events: Option<String>,
    /// Records per chunk when writing binary event files.
    chunk_records: Option<usize>,
    /// Fully scan binary event files and cross-check the trailer index.
    verify: bool,
    /// Listen address for `sigil serve` (a path containing `/` means a
    /// Unix-domain socket).
    listen: String,
    /// Server address for `sigil client` / `sigil diff golden|serve`.
    connect: Option<String>,
    /// Per-session credit window for `sigil serve`.
    credits: u32,
    /// Idle-session timeout for `sigil serve`, in milliseconds.
    idle_timeout_ms: u64,
    /// `sigil client --check`: also profile locally and require the
    /// server's result to be byte-identical.
    check: bool,
    /// `sigil diff --unbounded`: restrict the differential matrix to
    /// the no-limit axis (oracle-elided + pinned legacy dispatch).
    unbounded: bool,
    /// Guest threads for `sigil diff` random-program generation.
    threads: u32,
}

impl Options {
    fn bench(&self) -> Result<Benchmark, String> {
        self.target.parse().map_err(|e| format!("{e}"))
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let target = args
        .first()
        .ok_or("missing benchmark or file name")?
        .clone();
    let mut opts = Options {
        target,
        size: InputSize::SimSmall,
        reuse: false,
        lines: None,
        events: false,
        limit: None,
        cores: 4,
        jobs: 1,
        shards: None,
        output: None,
        json: false,
        log_level: Level::Info,
        trace_out: None,
        metrics_out: None,
        metrics_stream: None,
        metrics_interval_ms: 200,
        bucket_ops: None,
        table: false,
        seeds: 500,
        seed_base: 0,
        golden_dir: "tests/golden".to_owned(),
        bless: false,
        from_events: None,
        chunk_records: None,
        verify: false,
        listen: "127.0.0.1:7077".to_owned(),
        connect: None,
        credits: 8,
        idle_timeout_ms: 30_000,
        check: false,
        unbounded: false,
        threads: 1,
    };
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--size" | "--scale" => {
                let value = it.next().ok_or("--size needs a value")?;
                opts.size = match value.as_str() {
                    "simsmall" => InputSize::SimSmall,
                    "simmedium" => InputSize::SimMedium,
                    "simlarge" => InputSize::SimLarge,
                    other => return Err(format!("unknown size `{other}`")),
                };
            }
            "--reuse" => opts.reuse = true,
            "--events" => opts.events = true,
            "--json" => opts.json = true,
            "--lines" => {
                let value = it.next().ok_or("--lines needs a value")?;
                opts.lines = Some(value.parse().map_err(|_| "bad --lines value")?);
            }
            "--limit" => {
                let value = it.next().ok_or("--limit needs a value")?;
                opts.limit = Some(value.parse().map_err(|_| "bad --limit value")?);
            }
            "--cores" => {
                let value = it.next().ok_or("--cores needs a value")?;
                opts.cores = value.parse().map_err(|_| "bad --cores value")?;
                if opts.cores == 0 {
                    return Err("--cores must be at least 1".to_owned());
                }
            }
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = value.parse().map_err(|_| "bad --jobs value")?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--shards" => {
                let value = it.next().ok_or("--shards needs a value")?;
                let shards: usize = value.parse().map_err(|_| "bad --shards value")?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
                opts.shards = Some(shards);
            }
            "-o" | "--output" => {
                let value = it.next().ok_or("-o needs a file name")?;
                opts.output = Some(value.clone());
            }
            "--log-level" => {
                let value = it.next().ok_or("--log-level needs a value")?;
                opts.log_level = value
                    .parse()
                    .map_err(|_| format!("unknown log level `{value}` (off|warn|info|debug)"))?;
            }
            "--trace-out" => {
                let value = it.next().ok_or("--trace-out needs a file name")?;
                opts.trace_out = Some(value.clone());
            }
            "--metrics-out" => {
                let value = it.next().ok_or("--metrics-out needs a file name")?;
                opts.metrics_out = Some(value.clone());
            }
            "--metrics-stream" => {
                let value = it.next().ok_or("--metrics-stream needs a file name")?;
                opts.metrics_stream = Some(value.clone());
            }
            "--metrics-interval-ms" => {
                let value = it.next().ok_or("--metrics-interval-ms needs a value")?;
                opts.metrics_interval_ms = value
                    .parse()
                    .map_err(|_| "bad --metrics-interval-ms value")?;
                if opts.metrics_interval_ms == 0 {
                    return Err("--metrics-interval-ms must be at least 1".to_owned());
                }
            }
            // `--bucket-us` is accepted as an alias: on the platform-
            // independent event clock, a "microsecond" is a retired op.
            "--bucket-ops" | "--bucket-us" => {
                let value = it.next().ok_or("--bucket-ops needs a value")?;
                let n: u64 = value.parse().map_err(|_| "bad --bucket-ops value")?;
                if n == 0 {
                    return Err("--bucket-ops must be at least 1".to_owned());
                }
                opts.bucket_ops = Some(n);
            }
            "--table" => opts.table = true,
            "--seeds" => {
                let value = it.next().ok_or("--seeds needs a value")?;
                opts.seeds = value.parse().map_err(|_| "bad --seeds value")?;
                if opts.seeds == 0 {
                    return Err("--seeds must be at least 1".to_owned());
                }
            }
            "--seed-base" => {
                let value = it.next().ok_or("--seed-base needs a value")?;
                opts.seed_base = value.parse().map_err(|_| "bad --seed-base value")?;
            }
            "--threads" => {
                let value = it.next().ok_or("--threads needs a value")?;
                opts.threads = value.parse().map_err(|_| "bad --threads value")?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--golden-dir" => {
                let value = it.next().ok_or("--golden-dir needs a directory")?;
                opts.golden_dir = value.clone();
            }
            "--bless" => opts.bless = true,
            "--from-events" => {
                let value = it.next().ok_or("--from-events needs a file name")?;
                opts.from_events = Some(value.clone());
            }
            "--chunk-records" => {
                let value = it.next().ok_or("--chunk-records needs a value")?;
                let n: usize = value.parse().map_err(|_| "bad --chunk-records value")?;
                if n == 0 {
                    return Err("--chunk-records must be at least 1".to_owned());
                }
                opts.chunk_records = Some(n);
            }
            "--verify" => opts.verify = true,
            "--unbounded" => opts.unbounded = true,
            "--listen" => {
                let value = it
                    .next()
                    .ok_or("--listen needs an address or socket path")?;
                opts.listen = value.clone();
            }
            "--connect" => {
                let value = it
                    .next()
                    .ok_or("--connect needs an address or socket path")?;
                opts.connect = Some(value.clone());
            }
            "--credits" => {
                let value = it.next().ok_or("--credits needs a value")?;
                opts.credits = value.parse().map_err(|_| "bad --credits value")?;
                if opts.credits == 0 {
                    return Err("--credits must be at least 1".to_owned());
                }
            }
            "--idle-timeout-ms" => {
                let value = it.next().ok_or("--idle-timeout-ms needs a value")?;
                opts.idle_timeout_ms = value.parse().map_err(|_| "bad --idle-timeout-ms value")?;
                if opts.idle_timeout_ms == 0 {
                    return Err("--idle-timeout-ms must be at least 1".to_owned());
                }
            }
            "--check" => opts.check = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn sigil_config(opts: &Options) -> SigilConfig {
    let mut config = SigilConfig::default();
    if opts.reuse {
        config = config.with_reuse_mode();
    }
    if let Some(lines) = opts.lines {
        config = config.with_line_mode(lines);
    }
    if opts.events {
        config = config.with_events();
    }
    if let Some(limit) = opts.limit {
        config = config.with_shadow_limit(limit);
    }
    if let Some(shards) = opts.shards {
        config = config.with_shards(shards);
    }
    if let Some(bucket_ops) = opts.bucket_ops {
        config = config.with_phases(bucket_ops);
    }
    config
}

fn collect(opts: &Options) -> Result<Profile, String> {
    let bench = opts.bench()?;
    let _profile_span = sigil_obs::span_with(|| format!("profile:{}", opts.target));
    obs_debug!("profiling {} at {}", opts.target, opts.size);
    let mut engine = Engine::new(SigilProfiler::new(sigil_config(opts)));
    {
        let _trace_span = sigil_obs::span("trace");
        bench.run(opts.size, &mut engine);
    }
    let (profiler, symbols) = engine.finish_with_symbols();
    Ok(profiler.into_profile(symbols))
}

/// Writes the Chrome trace and/or metrics snapshot after a successful
/// command, when the corresponding output flags were given.
fn write_observability(opts: &Options) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        sigil_obs::write_chrome_trace(path)
            .map_err(|e| format!("cannot write trace `{path}`: {e}"))?;
        obs_info!(
            "wrote chrome trace ({} spans) to {path}",
            sigil_obs::span::count()
        );
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, sigil_obs::metrics::snapshot_json())
            .map_err(|e| format!("cannot write metrics `{path}`: {e}"))?;
        obs_info!("wrote metrics snapshot to {path}");
    }
    Ok(())
}

fn cmd_profile(opts: &Options) -> Result<(), String> {
    let profile = collect(opts)?;
    if opts.json {
        let json = serde_json::to_string_pretty(&profile).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        println!("# {} ({})", opts.target, opts.size);
        print!("{}", report::full_report(&profile));
    }
    Ok(())
}

fn cmd_partition(opts: &Options) -> Result<(), String> {
    let profile = collect(opts)?;
    let config = PartitionConfig::default();
    // Trim and rank share one CDFG + inclusive-table build.
    let prepared = PreparedCdfg::from_profile(&profile);
    let trimmed = trim_calltree_prepared(&prepared, &profile, &config);
    println!(
        "# {} ({}): trimmed calltree, coverage {:.1}%",
        opts.target,
        opts.size,
        trimmed.coverage * 100.0
    );
    println!(
        "{:>10} {:>12} {:>9} {:>12} {:>12}  candidate",
        "S(be)", "t_sw(cyc)", "cover%", "in(uniq B)", "out(uniq B)"
    );
    for leaf in &trimmed.leaves {
        println!(
            "{:>10.3} {:>12} {:>8.1}% {:>12} {:>12}  {}",
            leaf.breakeven,
            leaf.inclusive_cycles,
            leaf.coverage * 100.0,
            leaf.comm_in_unique,
            leaf.comm_out_unique,
            leaf.name
        );
    }
    println!("\n# all functions ranked by breakeven (best and worst 5)");
    let ranked = rank_functions_prepared(&prepared, &profile, &config);
    for row in ranked.iter().take(5) {
        println!("  best  {:<32} {:.3}", row.name, row.breakeven);
    }
    for row in ranked.iter().rev().take(5).rev() {
        println!("  worst {:<32} {:.3}", row.name, row.breakeven);
    }
    Ok(())
}

fn cmd_reuse(opts: &Options) -> Result<(), String> {
    let profile = collect(&Options {
        reuse: true,
        lines: opts.lines.or(Some(64)),
        events: false,
        json: false,
        ..opts.clone()
    })?;
    println!("# {} ({}): data reuse", opts.target, opts.size);
    if let Some(pct) = reuse_analysis::reuse_breakdown_percent(&profile) {
        println!(
            "byte records:  0 reuses {:.1}% | 1-9 {:.1}% | >9 {:.1}%",
            pct[0], pct[1], pct[2]
        );
    }
    if let Some(pct) = reuse_analysis::line_breakdown_percent(&profile) {
        println!(
            "lines:  <10 {:.1}% | <100 {:.1}% | <1k {:.1}% | <10k {:.1}% | >10k {:.1}%",
            pct[0], pct[1], pct[2], pct[3], pct[4]
        );
    }
    if let Some(rows) = reuse_analysis::function_reuse_rows(&profile) {
        println!(
            "\n{:>12} {:>12} {:>14}  function",
            "reused B", "total B", "avg lifetime"
        );
        for row in rows.iter().take(15) {
            println!(
                "{:>12} {:>12} {:>14.0}  {}",
                row.reused_bytes, row.total_bytes, row.avg_lifetime, row.label
            );
        }
    }
    Ok(())
}

fn events_profile(opts: &Options) -> Result<Profile, String> {
    collect(&Options {
        events: true,
        reuse: false,
        lines: None,
        json: false,
        ..opts.clone()
    })
}

/// Streaming critical-path summary straight off an event file: binary
/// files fold one chunk at a time (memory bounded by one chunk plus the
/// per-call state); text files are parsed and folded in memory.
fn critpath_from_events(path: &str) -> Result<PathSummary, String> {
    if path.ends_with(".evb") {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
        critical_path_from_bin(std::io::BufReader::new(file), &CommModel::free())
            .map_err(|e| e.to_string())
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let events =
            EventFile::from_text(&text).map_err(|(line, msg)| format!("{path}:{line}: {msg}"))?;
        let mut fold = CriticalPathFold::new();
        fold.extend(events.records());
        fold.finish().map_err(|e| e.to_string())
    }
}

fn cmd_critpath(opts: &Options) -> Result<(), String> {
    if let Some(path) = &opts.from_events {
        let summary = critpath_from_events(path)?;
        println!("# {path}: critical path (streaming)");
        println!("serial length  : {} ops", summary.serial_ops);
        println!("critical path  : {} ops", summary.length_ops);
        println!("max parallelism: {:.2}x", summary.max_parallelism());
        return Ok(());
    }
    let profile = events_profile(opts)?;
    let cp = CriticalPath::from_profile(&profile).map_err(|e| e.to_string())?;
    println!("# {} ({}): critical path", opts.target, opts.size);
    println!("serial length  : {} ops", cp.serial_ops);
    println!("critical path  : {} ops", cp.length_ops);
    println!("max parallelism: {:.2}x", cp.max_parallelism());
    println!(
        "path functions (entry -> leaf): {}",
        cp.function_names(&profile).join(" -> ")
    );
    Ok(())
}

/// Default phase bucket width in retired ops when `--bucket-ops` is not
/// given.
const DEFAULT_BUCKET_OPS: u64 = 1000;

/// Streaming phase profile straight off an event file: binary files fold
/// one chunk at a time; text files are parsed and folded in memory.
fn phases_from_events(path: &str, bucket_ops: u64) -> Result<PhaseProfile, String> {
    if path.ends_with(".evb") {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
        phase_profile_from_bin(std::io::BufReader::new(file), bucket_ops).map_err(|e| e.to_string())
    } else {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let events =
            EventFile::from_text(&text).map_err(|(line, msg)| format!("{path}:{line}: {msg}"))?;
        let mut fold = PhaseFold::new(bucket_ops);
        fold.extend(events.records());
        Ok(fold.finish())
    }
}

fn cmd_phases(opts: &Options) -> Result<(), String> {
    let bucket_ops = opts.bucket_ops.unwrap_or(DEFAULT_BUCKET_OPS);
    let (label, phases) = if let Some(path) = &opts.from_events {
        (
            format!("{path} (streaming)"),
            phases_from_events(path, bucket_ops)?,
        )
    } else {
        let profile = collect(&Options {
            bucket_ops: Some(bucket_ops),
            ..opts.clone()
        })?;
        let phases = profile.phases.expect("phase collection enabled");
        (format!("{} ({})", opts.target, opts.size), phases)
    };
    if opts.json {
        let json = serde_json::to_string_pretty(&phases).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    println!("# {label}: phase-sliced communication, bucket = {bucket_ops} ops");
    println!(
        "phases: {} | communicating context pairs: {}",
        phases.num_buckets(),
        phases.pairs.len()
    );
    println!(
        "{:>8} {:>14} {:>8} {:>8} {:>10} {:>12}",
        "phase", "ops window", "from", "to", "calls", "xfer bytes"
    );
    // Pairs are sorted by (from, to); re-key rows by phase so the table
    // reads as a timeline.
    let mut rows: Vec<(u64, u32, u32, u64, u64)> = Vec::new();
    for pair in &phases.pairs {
        for bucket in &pair.buckets {
            rows.push((
                bucket.index,
                pair.from.0,
                pair.to.0,
                bucket.calls,
                bucket.xfer_bytes,
            ));
        }
    }
    rows.sort_unstable();
    for (index, from, to, calls, bytes) in rows {
        let window = format!("{}..{}", index * bucket_ops, (index + 1) * bucket_ops);
        println!("{index:>8} {window:>14} {from:>8} {to:>8} {calls:>10} {bytes:>12}");
    }
    Ok(())
}

fn cmd_schedule(opts: &Options) -> Result<(), String> {
    let profile = events_profile(opts)?;
    let sched = schedule(&profile, opts.cores).map_err(|e| e.to_string())?;
    println!(
        "# {} ({}): list schedule on {} cores",
        opts.target, opts.size, sched.cores
    );
    println!("work      : {} ops", sched.serial_ops);
    println!("makespan  : {} ops", sched.makespan);
    println!("speedup   : {:.2}x", sched.speedup());
    println!("utilization: {:.1}%", sched.utilization() * 100.0);
    for (core, load) in sched.per_core_load().iter().enumerate() {
        println!(
            "  core {core}: {load} busy ops ({:.1}%)",
            100.0 * *load as f64 / sched.makespan.max(1) as f64
        );
    }
    Ok(())
}

fn cmd_calltree(opts: &Options) -> Result<(), String> {
    let profile = collect(opts)?;
    print!(
        "{}",
        sigil_callgrind::output::context_tree(&profile.callgrind)
    );
    Ok(())
}

fn cmd_dot(opts: &Options) -> Result<(), String> {
    let profile = collect(opts)?;
    print!("{}", to_dot(&Cdfg::from_profile(&profile)));
    Ok(())
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let source = std::fs::read_to_string(&opts.target)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.target))?;
    let program = sigil_vm::assemble(&source).map_err(|e| e.to_string())?;
    let mut engine = Engine::new(SigilProfiler::new(sigil_config(opts)));
    let result = sigil_vm::Interpreter::new(&program)
        .run(&mut engine)
        .map_err(|e| e.to_string())?;
    println!("guest returned: {result:?}\n");
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);
    print!("{}", report::full_report(&profile));
    Ok(())
}

fn cmd_sweep(opts: &Options) -> Result<(), String> {
    let benches =
        sigil_workloads::Benchmark::parse_selection(&opts.target).map_err(|e| e.to_string())?;
    let names: Vec<(String, String)> = benches
        .iter()
        .map(|b| (b.name().to_string(), opts.size.to_string()))
        .collect();
    let config = sigil_config(opts);
    // Each sharded profiler spins up `shards` worker threads of its own,
    // so cap the job count to keep jobs × shards within the machine.
    let jobs = sigil_core::clamp_jobs(opts.jobs, config.shards);
    let entries = sigil_core::sweep::sweep(jobs, &names, |name| {
        let bench: Benchmark = name.parse().expect("sweep names come from parse_selection");
        let mut engine = Engine::new(SigilProfiler::new(config));
        bench.run(opts.size, &mut engine);
        let (profiler, symbols) = engine.finish_with_symbols();
        profiler.into_profile(symbols)
    });
    if opts.json {
        let json = serde_json::to_string_pretty(&entries).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    println!(
        "# sweep of {} workload(s) at {} with --jobs {jobs}",
        entries.len(),
        opts.size,
    );
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>9} {:>7} {:>8}  workload",
        "wall(ms)", "ops", "edges", "accesses", "mru%", "b/run", "evict"
    );
    for entry in &entries {
        println!(
            "{:>14.2} {:>10} {:>12} {:>12} {:>8.1}% {:>7.1} {:>8}  {}",
            entry.wall_ms,
            entry.profile.callgrind.total_ops,
            entry.profile.edges.len(),
            entry.memory.accesses,
            entry.memory.mru_hit_rate() * 100.0,
            entry.memory.bytes_per_run(),
            entry.memory.evicted_chunks,
            entry.name
        );
    }
    let total_ms: f64 = entries.iter().map(|e| e.wall_ms).sum();
    println!("# sum of per-workload wall times: {total_ms:.2} ms");
    if sigil_obs::is_enabled() {
        print_sweep_telemetry(config.shards);
    }
    Ok(())
}

/// Appends the observability-derived sweep summary lines: wall-time
/// percentiles estimated from the `sweep.wall_ms` histogram, and — for
/// sharded sweeps — aggregate shard-worker utilization from the
/// busy/idle counters.
fn print_sweep_telemetry(shards: usize) {
    use sigil_obs::metrics::{percentile_from_buckets, MetricValue};
    let snapshot = sigil_obs::metrics::snapshot();
    if let Some(MetricValue::Histogram {
        bounds,
        counts,
        total,
        ..
    }) = snapshot.get("sweep.wall_ms")
    {
        if *total > 0 {
            let p = |q: f64| percentile_from_buckets(bounds, counts, q).unwrap_or(0.0);
            println!(
                "# wall_ms percentiles (histogram estimate): p50 {:.1} | p95 {:.1} | p99 {:.1}",
                p(50.0),
                p(95.0),
                p(99.0)
            );
        }
    }
    if shards > 1 {
        let counter = |name: &str| match snapshot.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        };
        let busy = counter("shadow.shards.busy_ns");
        let idle = counter("shadow.shards.idle_ns");
        if busy + idle > 0 {
            println!(
                "# shard utilization: {:.1}% busy ({:.2} ms busy / {:.2} ms idle, {shards} shards/job)",
                100.0 * busy as f64 / (busy + idle) as f64,
                busy as f64 / 1e6,
                idle as f64 / 1e6
            );
        }
        let dispatch_busy = counter("dispatch.busy_ns");
        let accesses = counter("dispatch.accesses");
        let records = counter("dispatch.records");
        if accesses > 0 {
            println!(
                "# dispatch: {:.0} ns/access busy ({:.0} ns/access resolving), {:.3} records/access",
                dispatch_busy as f64 / accesses as f64,
                counter("dispatch.resolve_ns") as f64 / accesses as f64,
                records as f64 / accesses as f64
            );
        }
    }
}

/// Profiles each selected workload at every input size and fits
/// per-function communication-vs-input-size power laws (`a·N^b`); the
/// paper's stability argument (§IV) is that these exponents are
/// properties of the algorithm, so they should hold as inputs grow.
fn cmd_scaling(opts: &Options) -> Result<(), String> {
    use sigil_analysis::scaling::{scaling_report, ScalingReport};
    let benches = Benchmark::parse_selection(&opts.target).map_err(|e| e.to_string())?;
    let factors: Vec<u64> = InputSize::ALL.iter().map(|s| s.factor()).collect();
    let reports: Vec<ScalingReport> = benches
        .iter()
        .map(|bench| {
            let profiles: Vec<Profile> = InputSize::ALL
                .iter()
                .map(|&size| {
                    let mut engine = Engine::new(SigilProfiler::new(sigil_config(opts)));
                    bench.run(size, &mut engine);
                    let (profiler, symbols) = engine.finish_with_symbols();
                    profiler.into_profile(symbols)
                })
                .collect();
            scaling_report(bench.name(), &factors, &profiles)
        })
        .collect();
    // JSON goes to `-o <file>` when given, stdout with `--json`; the
    // human-readable table renders unless `--json` asked for JSON only.
    if opts.json || opts.output.is_some() {
        let json = serde_json::to_string_pretty(&reports).map_err(|e| e.to_string())?;
        if let Some(path) = &opts.output {
            std::fs::write(path, json + "\n").map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!(
                "wrote scaling curves for {} workload(s) to {path}",
                reports.len()
            );
        } else {
            println!("{json}");
        }
        if opts.json {
            return Ok(());
        }
    }
    let fmt_fit = |fit: &Option<sigil_analysis::scaling::PowerFit>| match fit {
        Some(f) => format!("N^{:.2} (r2 {:.3})", f.exponent, f.r_squared),
        None => "-".to_owned(),
    };
    for report in &reports {
        println!(
            "# {} scaling over factors {:?} (unique bytes per function)",
            report.workload, report.factors
        );
        println!(
            "{:>12} {:>12} {:>12} {:>18} {:>18}  function",
            "input@max", "inter@max", "read@max", "input fit", "inter fit"
        );
        let last = report.factors.len() - 1;
        for f in report.functions.iter().take(12) {
            println!(
                "{:>12} {:>12} {:>12} {:>18} {:>18}  {}",
                f.input_unique_bytes[last],
                f.inter_thread_unique_bytes[last],
                f.bytes_read[last],
                fmt_fit(&f.input_fit),
                fmt_fit(&f.inter_thread_fit),
                f.name
            );
        }
        println!(
            "# totals: inter-thread {:?} [{}], bytes read {:?} [{}]",
            report.total_inter_thread_bytes,
            fmt_fit(&report.total_inter_thread_fit),
            report.total_bytes_read,
            fmt_fit(&report.total_read_fit)
        );
    }
    Ok(())
}

fn cmd_trace(opts: &Options) -> Result<(), String> {
    let bench = opts.bench()?;
    let output = opts.output.as_deref().ok_or("trace needs -o <file>")?;
    let mut engine = Engine::new(RecordingObserver::new());
    bench.run(opts.size, &mut engine);
    let (recorder, symbols) = engine.finish_with_symbols();
    let events = recorder.into_events();
    let file =
        std::fs::File::create(output).map_err(|e| format!("cannot create `{output}`: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    sigil_trace::io::write_trace(&mut writer, &symbols, &events).map_err(|e| e.to_string())?;
    println!("wrote {} events to {output}", events.len());
    Ok(())
}

fn cmd_replay(opts: &Options) -> Result<(), String> {
    let file = std::fs::File::open(&opts.target)
        .map_err(|e| format!("cannot open `{}`: {e}", opts.target))?;
    let mut reader = std::io::BufReader::new(file);
    let (symbols, events) = sigil_trace::io::read_trace(&mut reader).map_err(|e| e.to_string())?;
    let mut profiler = SigilProfiler::new(sigil_config(opts));
    sigil_trace::io::replay(&events, &mut profiler);
    let profile = profiler.into_profile(symbols);
    println!("# replayed {} events from {}", events.len(), opts.target);
    print!("{}", report::full_report(&profile));
    Ok(())
}

/// Streams `events` into a chunk-indexed binary file at `path`.
fn write_events_binary(
    events: &EventFile,
    path: &str,
    chunk_records: usize,
) -> Result<BinTotals, String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?;
    let mut writer = BinWriter::with_chunk_records(std::io::BufWriter::new(file), chunk_records)
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    writer
        .push_file(events)
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    let (totals, _) = writer
        .finish()
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    Ok(totals)
}

/// `sigil events dump <benchmark> -o <file>`: record the event file and
/// write it out — chunk-indexed binary for `.evb` targets, text otherwise
/// (stdout when no `-o`).
fn cmd_events_dump(opts: &Options) -> Result<(), String> {
    let profile = events_profile(opts)?;
    let events = profile
        .events
        .as_ref()
        .expect("events_profile enables recording");
    match opts.output.as_deref() {
        Some(path) if path.ends_with(".evb") => {
            let chunk = opts.chunk_records.unwrap_or(DEFAULT_CHUNK_RECORDS);
            let totals = write_events_binary(events, path, chunk)?;
            println!(
                "wrote {} records ({} chunks) to {path}",
                totals.records, totals.chunks
            );
        }
        Some(path) => {
            std::fs::write(path, events.to_text())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {} records to {path}", events.len());
        }
        None => print!("{}", events.to_text()),
    }
    Ok(())
}

/// `sigil events pack <in.txt> -o <out.evb>`: text → binary.
fn cmd_events_pack(opts: &Options) -> Result<(), String> {
    let out = opts.output.as_deref().ok_or("pack needs -o <file.evb>")?;
    let text = std::fs::read_to_string(&opts.target)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.target))?;
    let events = EventFile::from_text(&text)
        .map_err(|(line, msg)| format!("{}:{line}: {msg}", opts.target))?;
    let chunk = opts.chunk_records.unwrap_or(DEFAULT_CHUNK_RECORDS);
    let totals = write_events_binary(&events, out, chunk)?;
    let bin_len = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    let ratio = text.len() as f64 / bin_len.max(1) as f64;
    println!(
        "packed {} records ({} chunks): {} -> {bin_len} bytes ({ratio:.2}x smaller)",
        totals.records,
        totals.chunks,
        text.len()
    );
    Ok(())
}

/// `sigil events unpack <in.evb> [-o <out.txt>]`: binary → text, decoding
/// one chunk at a time so memory stays bounded by one chunk.
fn cmd_events_unpack(opts: &Options) -> Result<(), String> {
    use std::io::Write as _;
    let file = std::fs::File::open(&opts.target)
        .map_err(|e| format!("cannot open `{}`: {e}", opts.target))?;
    let mut stream = ChunkStream::new(std::io::BufReader::new(file))
        .map_err(|e| format!("{}: {e}", opts.target))?;
    let mut sink: Box<dyn std::io::Write> = match opts.output.as_deref() {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create `{path}`: {e}"))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    while let Some(records) = stream
        .next_chunk()
        .map_err(|e| format!("{}: {e}", opts.target))?
    {
        let text = EventFile::from_records(records.to_vec()).to_text();
        sink.write_all(text.as_bytes())
            .map_err(|e| format!("cannot write output: {e}"))?;
    }
    sink.flush()
        .map_err(|e| format!("cannot write output: {e}"))?;
    if let Some(path) = opts.output.as_deref() {
        let totals = stream.totals();
        println!(
            "unpacked {} records ({} chunks) to {path}",
            totals.records, totals.chunks
        );
    }
    Ok(())
}

/// `sigil events stat <in.evb> [--verify]`: answer from the trailer index
/// alone; `--verify` additionally decodes every chunk and cross-checks.
fn cmd_events_stat(opts: &Options) -> Result<(), String> {
    let data =
        std::fs::read(&opts.target).map_err(|e| format!("cannot read `{}`: {e}", opts.target))?;
    let reader = BinReader::parse(&data).map_err(|e| format!("{}: {e}", opts.target))?;
    let totals = reader.totals();
    println!("# {} ({} bytes)", opts.target, data.len());
    println!("chunk target   : {} records", reader.chunk_target());
    println!("chunks         : {}", totals.chunks);
    println!("records        : {}", totals.records);
    println!("call records   : {}", totals.call_records);
    println!("compute ops    : {}", totals.compute_ops);
    println!("transfer bytes : {}", totals.transfer_bytes);
    if totals.records > 0 {
        println!(
            "bytes/record   : {:.2}",
            data.len() as f64 / totals.records as f64
        );
    }
    if opts.verify {
        reader
            .verify()
            .map_err(|e| format!("{}: {e}", opts.target))?;
        println!("verified       : full scan matches the trailer index");
    }
    Ok(())
}

fn cmd_diff(opts: &Options) -> Result<(), String> {
    if opts.bless || opts.target == "bless" {
        return cmd_diff_bless(opts);
    }
    match opts.target.as_str() {
        "random" => cmd_diff_random(opts),
        "golden" => cmd_diff_golden(opts),
        "serve" => cmd_diff_serve(opts),
        other => Err(format!(
            "unknown diff target `{other}` (expected random, golden, serve, or bless)"
        )),
    }
}

/// Replays seeded random programs through the production profiler and the
/// oracle under the full config matrix (crossed with the shard axis, or
/// with `--shards N` pinned; `--unbounded` restricts to the no-limit
/// axis, whose sharded entries cover both the oracle-elided and the
/// pinned legacy dispatch paths); any divergence is shrunk to a
/// minimized repro and reported as an error.
fn cmd_diff_random(opts: &Options) -> Result<(), String> {
    use sigil_oracle::harness;
    let limit = opts.limit;
    let end = opts.seed_base + opts.seeds;
    let mut configs_checked = 0usize;
    for seed in opts.seed_base..end {
        let failures =
            harness::diff_seed_mt(seed, opts.threads, limit, opts.shards, opts.unbounded);
        configs_checked +=
            harness::differential_configs_filtered(seed, limit, opts.shards, opts.unbounded).len();
        if let Some(failure) = failures.first() {
            let program = sigil_vm::GenProgram::generate_mt(seed, opts.threads);
            let minimized = harness::shrink(&program, failure.config, None);
            return Err(format!(
                "seed {seed} ({} guest thread(s)) diverged under config `{}` ({} field(s))\n\n{}",
                opts.threads,
                failure.label,
                failure.divergences.len(),
                harness::render_repro(&minimized, failure.config, None)
            ));
        }
        let done = seed - opts.seed_base + 1;
        if done.is_multiple_of(100) {
            println!("# {done}/{} seeds conformant", opts.seeds);
        }
    }
    println!(
        "{} seeds x {} guest thread(s) ({} seed/config replays): zero divergences",
        opts.seeds, opts.threads, configs_checked
    );
    Ok(())
}

fn golden_path(dir: &str, bench: Benchmark) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("{bench}.json"))
}

/// Checks every committed golden profile against a fresh oracle replay of
/// its workload, and checks that the production profiler still conforms.
/// With `--shards N` the production side replays through the sharded
/// profiler, pinning the fan-out/merge path to the same golden corpus.
fn cmd_diff_golden(opts: &Options) -> Result<(), String> {
    use sigil_oracle::harness;
    let config = harness::golden_config();
    let production_config = config.with_shards(opts.shards.unwrap_or(1));
    for bench in Benchmark::ALL {
        let path = golden_path(&opts.golden_dir, bench);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "cannot read `{}`: {e} (run `sigil diff bless`?)",
                path.display()
            )
        })?;
        let golden: sigil_oracle::OracleReport = serde_json::from_str(&text)
            .map_err(|e| format!("bad golden `{}`: {e}", path.display()))?;
        let bundle = harness::record_benchmark(bench, opts.size);
        let oracle = harness::oracle_report(&bundle, config, None);
        let drift = sigil_oracle::diff_reports(&golden, &oracle);
        if !drift.is_empty() {
            let mut message = format!(
                "golden profile for `{bench}` drifted from the oracle ({} field(s)):\n",
                drift.len()
            );
            for d in drift.iter().take(16) {
                message.push_str(&format!("  {d}\n"));
            }
            message.push_str("re-bless only if the change is intentional: sigil diff bless");
            return Err(message);
        }
        // With `--connect`, the production side replays through a live
        // `sigil-serve` daemon instead of in-process — and the online
        // profile must additionally be byte-identical to the batch one.
        let production = match opts.connect.as_deref() {
            None => harness::production_report(&bundle, production_config),
            Some(address) => {
                use sigil_oracle::serve_axis;
                let batch = serve_axis::batch_outcome(&bundle, production_config);
                let online = serve_axis::online_outcome(
                    address,
                    &format!("golden-{bench}"),
                    &bundle,
                    production_config,
                    opts.chunk_records.unwrap_or(DEFAULT_CHUNK_RECORDS),
                )
                .map_err(|e| format!("`{bench}` via {address}: {e}"))?;
                let profile = online
                    .profile
                    .ok_or_else(|| format!("`{bench}` via {address}: no profile returned"))?;
                let online_json = serde_json::to_string(&profile).map_err(|e| e.to_string())?;
                let batch_json =
                    serde_json::to_string(&batch.profile).map_err(|e| e.to_string())?;
                if online_json != batch_json {
                    return Err(format!(
                        "`{bench}` via {address}: online profile is not byte-identical to batch \
                         ({} vs {} JSON bytes)",
                        online_json.len(),
                        batch_json.len()
                    ));
                }
                sigil_oracle::project_profile(&profile)
            }
        };
        let conformance = sigil_oracle::diff_reports(&production, &oracle);
        if !conformance.is_empty() {
            let mut message = format!(
                "production profiler (shards={}) diverged from the oracle on `{bench}` ({} field(s)):\n",
                production_config.shards,
                conformance.len()
            );
            for d in conformance.iter().take(16) {
                message.push_str(&format!("  {d}\n"));
            }
            return Err(message);
        }
        println!(
            "# {bench}: golden == oracle == production ({} events, shards={})",
            bundle.events.len(),
            production_config.shards
        );
    }
    println!(
        "golden corpus conformant ({} workloads, shards={})",
        Benchmark::ALL.len(),
        production_config.shards
    );
    Ok(())
}

/// Regenerates the golden corpus from the oracle.
fn cmd_diff_bless(opts: &Options) -> Result<(), String> {
    use sigil_oracle::harness;
    let config = harness::golden_config();
    std::fs::create_dir_all(&opts.golden_dir)
        .map_err(|e| format!("cannot create `{}`: {e}", opts.golden_dir))?;
    for bench in Benchmark::ALL {
        let bundle = harness::record_benchmark(bench, opts.size);
        let oracle = harness::oracle_report(&bundle, config, None);
        let conformance =
            sigil_oracle::diff_reports(&harness::production_report(&bundle, config), &oracle);
        if !conformance.is_empty() {
            return Err(format!(
                "refusing to bless `{bench}`: production diverges from the oracle ({} field(s), first: {})",
                conformance.len(),
                conformance[0]
            ));
        }
        let path = golden_path(&opts.golden_dir, bench);
        let json = serde_json::to_string_pretty(&oracle).map_err(|e| e.to_string())?;
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        println!("# blessed {}", path.display());
    }
    println!(
        "blessed {} golden profiles into {}",
        Benchmark::ALL.len(),
        opts.golden_dir
    );
    Ok(())
}

/// `sigil serve`: run the concurrent trace-ingestion daemon until a
/// SHUTDOWN frame arrives (`sigil client shutdown --connect <addr>`).
fn cmd_serve(opts: &Options) -> Result<(), String> {
    use sigil_serve::{Listen, ServeConfig, Server};
    let config = ServeConfig {
        credits: opts.credits,
        idle_timeout: std::time::Duration::from_millis(opts.idle_timeout_ms),
    };
    let server = Server::bind(Listen::parse(&opts.listen), config)
        .map_err(|e| format!("cannot listen on `{}`: {e}", opts.listen))?;
    let address = server.address();
    println!(
        "serving on {address} (credits {}, idle timeout {} ms)",
        opts.credits, opts.idle_timeout_ms
    );
    println!("stop with: sigil client shutdown --connect {address}");
    server.wait();
    println!("server stopped");
    Ok(())
}

/// `sigil client <benchmark|file.evb|shutdown> --connect <addr>`:
/// replay a workload (trace session) or a binary event file (events
/// session) into a running server; `--check` additionally profiles
/// locally and requires the server's profile to be byte-identical.
fn cmd_client(opts: &Options) -> Result<(), String> {
    use sigil_core::events_bin::encode_chunk_payload;
    use sigil_serve::{shutdown_server, Client, SessionSpec};
    let address = opts
        .connect
        .as_deref()
        .ok_or("client needs --connect <addr|path>")?;
    if opts.target == "shutdown" {
        let summary = shutdown_server(address).map_err(|e| e.to_string())?;
        println!(
            "server shut down (drained: {}, sessions served: {})",
            summary.drained, summary.opened
        );
        return Ok(());
    }
    if opts.target.ends_with(".evb") {
        let file = std::fs::File::open(&opts.target)
            .map_err(|e| format!("cannot open `{}`: {e}", opts.target))?;
        let mut stream = ChunkStream::new(std::io::BufReader::new(file))
            .map_err(|e| format!("{}: {e}", opts.target))?;
        let bucket_ops = opts.bucket_ops.unwrap_or(DEFAULT_BUCKET_OPS);
        let spec = SessionSpec::events(opts.target.clone(), Some(bucket_ops));
        let mut client = Client::connect(address, &spec).map_err(|e| e.to_string())?;
        while let Some(records) = stream
            .next_chunk()
            .map_err(|e| format!("{}: {e}", opts.target))?
        {
            client
                .send_chunk(encode_chunk_payload(records), records.len() as u32)
                .map_err(|e| e.to_string())?;
        }
        let result = client.finish().map_err(|e| e.to_string())?;
        println!(
            "# {} streamed to {address}: {} records",
            opts.target, result.records
        );
        if let Some(cp) = &result.critpath {
            println!(
                "critical path  : {} ops (max parallelism {:.2}x)",
                cp.length_ops,
                cp.max_parallelism()
            );
        }
        println!(
            "cdfg           : {} contexts, {} edges | compute {} ops | transfers {} bytes",
            result.cdfg_contexts.unwrap_or(0),
            result.cdfg_edges.unwrap_or(0),
            result.compute_ops.unwrap_or(0),
            result.transfer_bytes.unwrap_or(0)
        );
        return Ok(());
    }
    let bench = opts.bench()?;
    let mut engine = Engine::new(RecordingObserver::new());
    bench.run(opts.size, &mut engine);
    let (recorder, symbols) = engine.finish_with_symbols();
    let events = recorder.into_events();
    let config = sigil_config(opts);
    let mut client = Client::connect(address, &SessionSpec::trace(opts.target.clone(), config))
        .map_err(|e| e.to_string())?;
    if let Some(chunk) = opts.chunk_records {
        client.set_chunk_records(chunk);
    }
    client
        .stream_trace(&symbols, &events)
        .map_err(|e| e.to_string())?;
    let waits = client.credit_waits();
    let result = client.finish().map_err(|e| e.to_string())?;
    let profile = result
        .profile
        .ok_or("server returned no profile for a trace session")?;
    println!(
        "# {} ({}) streamed to {address}: {} events, {} credit wait(s)",
        opts.target, opts.size, result.records, waits
    );
    if opts.check {
        let mut profiler = SigilProfiler::new(config);
        sigil_trace::io::replay(&events, &mut profiler);
        let batch = profiler.into_profile(symbols);
        let online_json = serde_json::to_string(&profile).map_err(|e| e.to_string())?;
        let batch_json = serde_json::to_string(&batch).map_err(|e| e.to_string())?;
        if online_json != batch_json {
            return Err(format!(
                "online profile diverges from local batch profile ({} vs {} JSON bytes)",
                online_json.len(),
                batch_json.len()
            ));
        }
        println!("check: online profile byte-identical to local batch profile");
    }
    if opts.json {
        let json = serde_json::to_string_pretty(&profile).map_err(|e| e.to_string())?;
        println!("{json}");
    } else {
        print!("{}", report::full_report(&profile));
    }
    Ok(())
}

/// Wire-chunking axis for `sigil diff serve`: conformance must not
/// depend on where chunk boundaries fall, so seeds rotate through
/// tiny, small, and default chunk sizes.
const SERVE_CHUNK_AXIS: [usize; 4] = [3, 64, 1024, DEFAULT_CHUNK_RECORDS];

/// `sigil diff serve`: replay seeded random programs both through the
/// in-process batch pipeline and through a real socket into a
/// `sigil-serve` daemon (an in-process one unless `--connect` points at
/// an external server); every Profile, phase profile, and critical path
/// must be byte-identical. Divergences are ddmin-shrunk online.
fn cmd_diff_serve(opts: &Options) -> Result<(), String> {
    use sigil_oracle::{harness, serve_axis};
    let local_server = match &opts.connect {
        Some(_) => None,
        None => Some(
            sigil_serve::Server::bind(
                sigil_serve::Listen::parse("127.0.0.1:0"),
                sigil_serve::ServeConfig::default(),
            )
            .map_err(|e| format!("cannot start in-process server: {e}"))?,
        ),
    };
    let address = match &opts.connect {
        Some(addr) => addr.clone(),
        None => local_server.as_ref().expect("bound above").address(),
    };
    let mut config = serve_axis::serve_config();
    if let Some(shards) = opts.shards {
        config = config.with_shards(shards);
    }
    let end = opts.seed_base + opts.seeds;
    for seed in opts.seed_base..end {
        let program = sigil_vm::GenProgram::generate(seed);
        let bundle = harness::record_program(&program);
        let chunk_records = SERVE_CHUNK_AXIS[(seed % 4) as usize];
        let divergences = serve_axis::diff_online(
            &address,
            &format!("diff-serve-{seed}"),
            &bundle,
            config,
            chunk_records,
        )
        .map_err(|e| format!("seed {seed}: {e}"))?;
        if !divergences.is_empty() {
            let minimized = serve_axis::shrink_online(&address, &program, config);
            let mut message = format!(
                "seed {seed} (chunk_records={chunk_records}, shards={}): online diverged from batch ({} field(s)):\n",
                config.shards,
                divergences.len()
            );
            for d in divergences.iter().take(8) {
                message.push_str(&format!("  {d}\n"));
            }
            message.push_str(&format!(
                "minimized repro: {} instructions (from {})",
                minimized.inst_count(),
                program.inst_count()
            ));
            return Err(message);
        }
        let done = seed - opts.seed_base + 1;
        if done.is_multiple_of(100) {
            println!("# {done}/{} seeds online == batch", opts.seeds);
        }
    }
    if let Some(server) = local_server {
        sigil_serve::shutdown_server(&address).map_err(|e| e.to_string())?;
        server.wait();
    }
    println!(
        "{} seeds replayed over {}: online == batch, byte-identical",
        opts.seeds,
        if opts.connect.is_some() {
            "an external socket"
        } else {
            "a local socket"
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help")
        || args.first().map(String::as_str) == Some("help")
    {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "-V" || a == "--version")
        || args.first().map(String::as_str) == Some("version")
    {
        println!("sigil {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let Some(command) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    if command == "list" {
        for bench in Benchmark::ALL {
            println!("{bench}");
        }
        return ExitCode::SUCCESS;
    }
    // `sigil diff` and `sigil diff --seeds N ...` imply the `random` target.
    if command == "diff" && args.get(1).is_none_or(|a| a.starts_with('-')) {
        args.insert(1, "random".to_owned());
    }
    // `sigil serve` takes no target; insert a dummy so options parse.
    if command == "serve" && args.get(1).is_none_or(|a| a.starts_with('-')) {
        args.insert(1, "daemon".to_owned());
    }
    // `sigil critpath --from-events <file>` and `sigil phases
    // --from-events <file>` need no benchmark target.
    if (command == "critpath" || command == "phases")
        && args.get(1).is_some_and(|a| a.starts_with('-'))
    {
        args.insert(1, "random".to_owned());
    }
    // `sigil events <dump|pack|unpack|stat> <target> ...` folds its
    // subcommand into the command name so `<target>` parses as usual.
    let command = if command == "events" {
        let Some(sub) = args.get(1).cloned() else {
            eprintln!("error: `events` needs a subcommand: dump, pack, unpack or stat");
            return ExitCode::FAILURE;
        };
        if !matches!(sub.as_str(), "dump" | "pack" | "unpack" | "stat") {
            eprintln!("error: unknown events subcommand `{sub}`\n{}", usage());
            return ExitCode::FAILURE;
        }
        args.remove(1);
        format!("events-{sub}")
    } else {
        command
    };
    let result = parse_options(&args[1..]).and_then(|opts| {
        sigil_obs::log::set_level(opts.log_level);
        if opts.trace_out.is_some() || opts.metrics_out.is_some() || opts.metrics_stream.is_some() {
            sigil_obs::set_enabled(true);
        }
        // Live metrics stream: a background thread appends JSONL delta
        // snapshots while the command runs; stopped (with a final line)
        // whether the command succeeds or fails.
        let streamer = match &opts.metrics_stream {
            Some(path) => Some(
                sigil_obs::MetricsStreamer::start(
                    path,
                    std::time::Duration::from_millis(opts.metrics_interval_ms),
                )
                .map_err(|e| format!("cannot start metrics stream `{path}`: {e}"))?,
            ),
            None => None,
        };
        let outcome = match command.as_str() {
            "profile" => cmd_profile(&opts),
            "partition" => cmd_partition(&opts),
            "reuse" => cmd_reuse(&opts),
            "critpath" => cmd_critpath(&opts),
            "phases" => cmd_phases(&opts),
            "schedule" => cmd_schedule(&opts),
            "calltree" => cmd_calltree(&opts),
            "dot" => cmd_dot(&opts),
            "run" => cmd_run(&opts),
            "trace" => cmd_trace(&opts),
            "replay" => cmd_replay(&opts),
            "sweep" => cmd_sweep(&opts),
            "scaling" => cmd_scaling(&opts),
            "diff" => cmd_diff(&opts),
            "serve" => cmd_serve(&opts),
            "client" => cmd_client(&opts),
            "events-dump" => cmd_events_dump(&opts),
            "events-pack" => cmd_events_pack(&opts),
            "events-unpack" => cmd_events_unpack(&opts),
            "events-stat" => cmd_events_stat(&opts),
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        };
        let stream_outcome = match streamer {
            Some(streamer) => streamer
                .stop()
                .map_err(|e| format!("metrics stream failed: {e}")),
            None => Ok(()),
        };
        outcome
            .and(stream_outcome)
            .and_then(|()| write_observability(&opts))
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let opts = parse_options(&args(&["vips"])).expect("parses");
        assert_eq!(opts.target, "vips");
        assert_eq!(opts.size, InputSize::SimSmall);
        assert!(!opts.reuse && !opts.events && !opts.json);
        assert_eq!(opts.cores, 4);
        assert_eq!(opts.jobs, 1);
        assert!(opts.bench().is_ok());
    }

    #[test]
    fn parse_events_flags() {
        let opts = parse_options(&args(&[
            "events.txt",
            "--chunk-records",
            "128",
            "-o",
            "events.evb",
            "--verify",
        ]))
        .expect("parses");
        assert_eq!(opts.target, "events.txt");
        assert_eq!(opts.chunk_records, Some(128));
        assert_eq!(opts.output.as_deref(), Some("events.evb"));
        assert!(opts.verify);
        assert!(parse_options(&args(&["events.txt", "--chunk-records", "0"])).is_err());
    }

    #[test]
    fn parse_from_events_flag() {
        let opts = parse_options(&args(&["random", "--from-events", "ev.evb"])).expect("parses");
        assert_eq!(opts.from_events.as_deref(), Some("ev.evb"));
        assert!(parse_options(&args(&["random", "--from-events"])).is_err());
    }

    #[test]
    fn parse_jobs_flag() {
        let opts = parse_options(&args(&["all", "--jobs", "6"])).expect("parses");
        assert_eq!(opts.jobs, 6);
        assert!(parse_options(&args(&["all", "--jobs", "0"])).is_err());
        assert!(parse_options(&args(&["all", "--jobs", "x"])).is_err());
    }

    #[test]
    fn parse_shards_flag() {
        let opts = parse_options(&args(&["vips"])).expect("parses");
        assert_eq!(opts.shards, None);
        assert_eq!(sigil_config(&opts).shards, 1);

        let opts = parse_options(&args(&["vips", "--shards", "4"])).expect("parses");
        assert_eq!(opts.shards, Some(4));
        assert_eq!(sigil_config(&opts).shards, 4);

        assert!(parse_options(&args(&["vips", "--shards", "0"])).is_err());
        assert!(parse_options(&args(&["vips", "--shards", "x"])).is_err());
        assert!(parse_options(&args(&["vips", "--shards"])).is_err());
    }

    #[test]
    fn parse_all_flags() {
        let opts = parse_options(&args(&[
            "dedup",
            "--size",
            "simmedium",
            "--reuse",
            "--lines",
            "128",
            "--events",
            "--limit",
            "32",
            "--cores",
            "8",
            "-o",
            "out.sgtr",
            "--json",
        ]))
        .expect("parses");
        assert_eq!(opts.size, InputSize::SimMedium);
        assert!(opts.reuse && opts.events && opts.json);
        assert_eq!(opts.lines, Some(128));
        assert_eq!(opts.limit, Some(32));
        assert_eq!(opts.cores, 8);
        assert_eq!(opts.output.as_deref(), Some("out.sgtr"));
    }

    #[test]
    fn parse_observability_flags() {
        let opts = parse_options(&args(&[
            "vips",
            "--log-level",
            "debug",
            "--trace-out",
            "trace.json",
            "--metrics-out",
            "metrics.json",
        ]))
        .expect("parses");
        assert_eq!(opts.log_level, Level::Debug);
        assert_eq!(opts.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("metrics.json"));
    }

    #[test]
    fn parse_log_level_defaults_to_info_and_rejects_junk() {
        let opts = parse_options(&args(&["vips"])).expect("parses");
        assert_eq!(opts.log_level, Level::Info);
        let off = parse_options(&args(&["vips", "--log-level", "off"])).expect("parses");
        assert_eq!(off.log_level, Level::Off);
        assert!(parse_options(&args(&["vips", "--log-level", "loud"])).is_err());
        assert!(parse_options(&args(&["vips", "--log-level"])).is_err());
        assert!(parse_options(&args(&["vips", "--trace-out"])).is_err());
    }

    #[test]
    fn parse_phase_flags() {
        let opts = parse_options(&args(&["vips"])).expect("parses");
        assert_eq!(opts.bucket_ops, None);
        assert!(sigil_config(&opts).phase_bucket_ops.is_none());

        let opts = parse_options(&args(&["vips", "--bucket-ops", "250", "--table"])).expect("ok");
        assert_eq!(opts.bucket_ops, Some(250));
        assert!(opts.table);
        assert_eq!(sigil_config(&opts).phase_bucket_ops, Some(250));

        // `--bucket-us` is an alias for the same knob.
        let opts = parse_options(&args(&["vips", "--bucket-us", "64"])).expect("parses");
        assert_eq!(opts.bucket_ops, Some(64));

        assert!(parse_options(&args(&["vips", "--bucket-ops", "0"])).is_err());
        assert!(parse_options(&args(&["vips", "--bucket-ops", "x"])).is_err());
        assert!(parse_options(&args(&["vips", "--bucket-ops"])).is_err());
    }

    #[test]
    fn parse_metrics_stream_flags() {
        let opts = parse_options(&args(&["vips"])).expect("parses");
        assert_eq!(opts.metrics_stream, None);
        assert_eq!(opts.metrics_interval_ms, 200);

        let opts = parse_options(&args(&[
            "vips",
            "--metrics-stream",
            "live.jsonl",
            "--metrics-interval-ms",
            "50",
        ]))
        .expect("parses");
        assert_eq!(opts.metrics_stream.as_deref(), Some("live.jsonl"));
        assert_eq!(opts.metrics_interval_ms, 50);

        assert!(parse_options(&args(&["vips", "--metrics-stream"])).is_err());
        assert!(parse_options(&args(&["vips", "--metrics-interval-ms", "0"])).is_err());
        assert!(parse_options(&args(&["vips", "--metrics-interval-ms", "x"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_options(&args(&[])).is_err());
        assert!(parse_options(&args(&["vips", "--size", "huge"])).is_err());
        assert!(parse_options(&args(&["vips", "--bogus"])).is_err());
        assert!(parse_options(&args(&["vips", "--cores", "0"])).is_err());
        assert!(parse_options(&args(&["vips", "--lines"])).is_err());
    }

    #[test]
    fn parse_diff_flags() {
        let opts = parse_options(&args(&["random"])).expect("parses");
        assert_eq!(opts.seeds, 500);
        assert_eq!(opts.seed_base, 0);
        assert_eq!(opts.golden_dir, "tests/golden");
        assert!(!opts.bless);

        let opts = parse_options(&args(&[
            "random",
            "--seeds",
            "32",
            "--seed-base",
            "1000",
            "--golden-dir",
            "other/golden",
            "--bless",
        ]))
        .expect("parses");
        assert_eq!(opts.seeds, 32);
        assert_eq!(opts.seed_base, 1000);
        assert_eq!(opts.golden_dir, "other/golden");
        assert!(opts.bless);

        assert!(parse_options(&args(&["random", "--seeds", "0"])).is_err());
        assert!(parse_options(&args(&["random", "--seeds", "x"])).is_err());
        assert!(parse_options(&args(&["random", "--seed-base"])).is_err());
        assert!(parse_options(&args(&["random", "--golden-dir"])).is_err());
    }

    #[test]
    fn parse_thread_flags() {
        let opts = parse_options(&args(&["random"])).expect("parses");
        assert_eq!(opts.threads, 1);

        let opts = parse_options(&args(&["random", "--threads", "4"])).expect("parses");
        assert_eq!(opts.threads, 4);

        assert!(parse_options(&args(&["random", "--threads", "0"])).is_err());
        assert!(parse_options(&args(&["random", "--threads", "x"])).is_err());
        assert!(parse_options(&args(&["random", "--threads"])).is_err());
    }

    #[test]
    fn parse_scale_is_an_alias_for_size() {
        let opts = parse_options(&args(&["mtpipe", "--scale", "simlarge"])).expect("parses");
        assert_eq!(opts.size, InputSize::SimLarge);
        assert!(parse_options(&args(&["mtpipe", "--scale", "huge"])).is_err());
    }

    #[test]
    fn parse_serve_flags() {
        let opts = parse_options(&args(&["daemon"])).expect("parses");
        assert_eq!(opts.listen, "127.0.0.1:7077");
        assert_eq!(opts.credits, 8);
        assert_eq!(opts.idle_timeout_ms, 30_000);
        assert_eq!(opts.connect, None);
        assert!(!opts.check);

        let opts = parse_options(&args(&[
            "daemon",
            "--listen",
            "/tmp/sigil.sock",
            "--credits",
            "2",
            "--idle-timeout-ms",
            "500",
        ]))
        .expect("parses");
        assert_eq!(opts.listen, "/tmp/sigil.sock");
        assert_eq!(opts.credits, 2);
        assert_eq!(opts.idle_timeout_ms, 500);

        assert!(parse_options(&args(&["daemon", "--credits", "0"])).is_err());
        assert!(parse_options(&args(&["daemon", "--credits", "x"])).is_err());
        assert!(parse_options(&args(&["daemon", "--idle-timeout-ms", "0"])).is_err());
        assert!(parse_options(&args(&["daemon", "--listen"])).is_err());
    }

    #[test]
    fn parse_client_flags() {
        let opts = parse_options(&args(&[
            "vips",
            "--connect",
            "127.0.0.1:7077",
            "--check",
            "--chunk-records",
            "256",
        ]))
        .expect("parses");
        assert_eq!(opts.connect.as_deref(), Some("127.0.0.1:7077"));
        assert!(opts.check);
        assert_eq!(opts.chunk_records, Some(256));
        assert!(parse_options(&args(&["vips", "--connect"])).is_err());
    }

    #[test]
    fn unknown_benchmark_surfaces_in_bench_lookup() {
        let opts = parse_options(&args(&["not-a-benchmark"])).expect("parse is lazy");
        assert!(opts.bench().is_err());
    }
}
