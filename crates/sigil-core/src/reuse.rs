//! Reuse-mode aggregation: per-context reuse counts and lifetime
//! histograms (paper §IV-B, Figures 8–11).

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;

/// The paper's Figure 8 reuse-count buckets for data bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReuseBucket {
    /// Written once, read exactly once per consuming function call.
    Zero,
    /// Re-used 1–9 times.
    OneToNine,
    /// Re-used more than 9 times.
    MoreThanNine,
}

impl ReuseBucket {
    /// Buckets a reuse count.
    pub const fn of(reuse_count: u64) -> Self {
        match reuse_count {
            0 => ReuseBucket::Zero,
            1..=9 => ReuseBucket::OneToNine,
            _ => ReuseBucket::MoreThanNine,
        }
    }

    /// Label used in figure output.
    pub const fn label(self) -> &'static str {
        match self {
            ReuseBucket::Zero => "0",
            ReuseBucket::OneToNine => "1-9",
            ReuseBucket::MoreThanNine => ">9",
        }
    }
}

/// A histogram of reuse lifetimes with the paper's bin size of 1000
/// retired instructions (Figures 10 and 11).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeHistogram {
    /// The histogram bin width in retired ops.
    pub bin_size: u64,
    /// `bins[i]` counts records whose lifetime fell in
    /// `[i*bin_size, (i+1)*bin_size)`. Sparse representation:
    /// `(bin_index, count)` sorted by bin index.
    bins: Vec<(u64, u64)>,
}

impl LifetimeHistogram {
    /// The paper's bin size.
    pub const PAPER_BIN_SIZE: u64 = 1000;

    /// Creates an empty histogram with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_size` is zero.
    pub fn new(bin_size: u64) -> Self {
        assert!(bin_size > 0, "bin size must be positive");
        LifetimeHistogram {
            bin_size,
            bins: Vec::new(),
        }
    }

    /// Records `count` data bytes whose reuse lifetime was `lifetime`.
    pub fn record(&mut self, lifetime: u64, count: u64) {
        let bin = lifetime / self.bin_size;
        match self.bins.binary_search_by_key(&bin, |&(b, _)| b) {
            Ok(i) => self.bins[i].1 += count,
            Err(i) => self.bins.insert(i, (bin, count)),
        }
    }

    /// Iterates `(bin_start_lifetime, count)` in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins.iter().map(|&(b, c)| (b * self.bin_size, c))
    }

    /// Total records across all bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|&(_, c)| c).sum()
    }

    /// Number of non-empty bins.
    pub fn nonempty_bins(&self) -> usize {
        self.bins.len()
    }

    /// The largest bin-start lifetime with any records (tail length).
    pub fn max_lifetime_bin(&self) -> Option<u64> {
        self.bins.last().map(|&(b, _)| b * self.bin_size)
    }
}

/// Per-context reuse aggregates.
///
/// Each record corresponds to one (byte, consuming call) pair, flushed
/// when the byte is overwritten, read by a different call, or at the end
/// of the run — implementing the paper's definition: "re-use lifetime
/// \[is\] the time between the first and last read of a single data byte
/// within a function call".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextReuse {
    /// The context these aggregates belong to.
    pub ctx: ContextId,
    /// Records with zero reuse (single read).
    pub zero_reuse_bytes: u64,
    /// Records re-used 1–9 times.
    pub low_reuse_bytes: u64,
    /// Records re-used more than 9 times.
    pub high_reuse_bytes: u64,
    /// Sum of reuse counts over all records.
    pub total_reuse_count: u64,
    /// Sum of lifetimes over *reused* records (reuse count ≥ 1).
    pub reused_lifetime_sum: u64,
    /// Number of reused records.
    pub reused_bytes: u64,
    /// Lifetime histogram over reused records (paper bin size 1000).
    pub histogram: LifetimeHistogram,
}

impl ContextReuse {
    /// Creates empty aggregates for `ctx`.
    pub fn new(ctx: ContextId) -> Self {
        ContextReuse {
            ctx,
            zero_reuse_bytes: 0,
            low_reuse_bytes: 0,
            high_reuse_bytes: 0,
            total_reuse_count: 0,
            reused_lifetime_sum: 0,
            reused_bytes: 0,
            histogram: LifetimeHistogram::new(LifetimeHistogram::PAPER_BIN_SIZE),
        }
    }

    /// Folds in one flushed (byte, call) record.
    pub fn record(&mut self, reuse_count: u64, lifetime: u64) {
        match ReuseBucket::of(reuse_count) {
            ReuseBucket::Zero => self.zero_reuse_bytes += 1,
            ReuseBucket::OneToNine => self.low_reuse_bytes += 1,
            ReuseBucket::MoreThanNine => self.high_reuse_bytes += 1,
        }
        self.total_reuse_count += reuse_count;
        if reuse_count >= 1 {
            self.reused_bytes += 1;
            self.reused_lifetime_sum += lifetime;
            self.histogram.record(lifetime, 1);
        }
    }

    /// Folds `other`'s aggregates into `self`, component-wise.
    ///
    /// Merging is commutative and associative (sums plus a sparse
    /// histogram whose bins accumulate independently), so per-shard
    /// fragments can be folded in any order with an identical result —
    /// the property the shard-merge proptests pin.
    pub fn merge(&mut self, other: &ContextReuse) {
        debug_assert_eq!(self.ctx, other.ctx, "merging rows of different contexts");
        self.zero_reuse_bytes += other.zero_reuse_bytes;
        self.low_reuse_bytes += other.low_reuse_bytes;
        self.high_reuse_bytes += other.high_reuse_bytes;
        self.total_reuse_count += other.total_reuse_count;
        self.reused_lifetime_sum += other.reused_lifetime_sum;
        self.reused_bytes += other.reused_bytes;
        for (lifetime, count) in other.histogram.iter() {
            self.histogram.record(lifetime, count);
        }
    }

    /// Total records (data bytes, in the paper's Fig. 8 sense).
    pub fn total_bytes(&self) -> u64 {
        self.zero_reuse_bytes + self.low_reuse_bytes + self.high_reuse_bytes
    }

    /// Average lifetime of a reused byte (Figure 9's metric); 0 when no
    /// byte was reused.
    pub fn avg_reused_lifetime(&self) -> f64 {
        if self.reused_bytes == 0 {
            0.0
        } else {
            self.reused_lifetime_sum as f64 / self.reused_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_match_paper_ranges() {
        assert_eq!(ReuseBucket::of(0), ReuseBucket::Zero);
        assert_eq!(ReuseBucket::of(1), ReuseBucket::OneToNine);
        assert_eq!(ReuseBucket::of(9), ReuseBucket::OneToNine);
        assert_eq!(ReuseBucket::of(10), ReuseBucket::MoreThanNine);
    }

    #[test]
    fn histogram_bins_by_thousands() {
        let mut h = LifetimeHistogram::new(1000);
        h.record(0, 1);
        h.record(999, 2);
        h.record(1000, 3);
        h.record(5500, 4);
        let bins: Vec<_> = h.iter().collect();
        assert_eq!(bins, vec![(0, 3), (1000, 3), (5000, 4)]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.max_lifetime_bin(), Some(5000));
        assert_eq!(h.nonempty_bins(), 3);
    }

    #[test]
    fn context_reuse_aggregates_records() {
        let mut r = ContextReuse::new(ContextId(1));
        r.record(0, 0); // single read
        r.record(3, 500); // reused
        r.record(20, 12_000); // heavily reused
        assert_eq!(r.zero_reuse_bytes, 1);
        assert_eq!(r.low_reuse_bytes, 1);
        assert_eq!(r.high_reuse_bytes, 1);
        assert_eq!(r.total_bytes(), 3);
        assert_eq!(r.reused_bytes, 2);
        assert!((r.avg_reused_lifetime() - 6250.0).abs() < 1e-9);
        assert_eq!(r.histogram.total(), 2);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = ContextReuse::new(ContextId(2));
        a.record(0, 0);
        a.record(5, 1500);
        let mut b = ContextReuse::new(ContextId(2));
        b.record(12, 700);
        b.record(1, 1600);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_bytes(), 4);
        assert_eq!(ab.histogram.total(), 3);
    }

    #[test]
    fn avg_lifetime_zero_without_reuse() {
        let r = ContextReuse::new(ContextId(0));
        assert_eq!(r.avg_reused_lifetime(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin size must be positive")]
    fn zero_bin_size_rejected() {
        let _ = LifetimeHistogram::new(0);
    }
}
